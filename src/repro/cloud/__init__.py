"""Simulated hybrid cloud substrate.

EVOp ran on a private OpenStack cloud paired with AWS, glued together by
the jclouds cross-cloud library.  This package reproduces that stack as a
discrete-event simulation:

* :mod:`repro.cloud.openstack` — fixed-capacity private IaaS with quotas.
* :mod:`repro.cloud.aws` — elastic public IaaS with per-second billing.
* :mod:`repro.cloud.multicloud` — provider-neutral compute/blob facade
  (the jclouds role) so broker code never names a concrete provider.
* :mod:`repro.cloud.storage` — S3/Swift-like object store.
* :mod:`repro.cloud.images` / :mod:`repro.cloud.provisioning` — pre-baked
  machine images versus generic images configured by CMT recipes.
* :mod:`repro.cloud.faults` — crash/degrade/blackhole injection used by
  the failover benchmarks.
"""

from repro.cloud.billing import BillingMeter, PriceTable
from repro.cloud.errors import (
    CapacityError,
    CloudError,
    InstanceNotFound,
    InvalidStateError,
    QuotaExceededError,
    StorageUnavailable,
)
from repro.cloud.flavors import Flavor, SMALL, MEDIUM, LARGE
from repro.cloud.images import ImageKind, ImageStore, MachineImage
from repro.cloud.instance import Instance, InstanceState, Job
from repro.cloud.provider import CloudProvider
from repro.cloud.openstack import OpenStackCloud
from repro.cloud.aws import AwsCloud
from repro.cloud.storage import Blob, BlobStore, Container
from repro.cloud.faults import FaultInjector, InjectedFault
from repro.cloud.provisioning import ProvisioningRecipe, RecipeStep
from repro.cloud.multicloud import MultiCloud, NodeTemplate

__all__ = [
    "AwsCloud",
    "BillingMeter",
    "Blob",
    "BlobStore",
    "CapacityError",
    "CloudError",
    "CloudProvider",
    "Container",
    "FaultInjector",
    "Flavor",
    "ImageKind",
    "ImageStore",
    "InjectedFault",
    "Instance",
    "InstanceNotFound",
    "InstanceState",
    "InvalidStateError",
    "Job",
    "LARGE",
    "MachineImage",
    "MEDIUM",
    "MultiCloud",
    "NodeTemplate",
    "OpenStackCloud",
    "PriceTable",
    "ProvisioningRecipe",
    "QuotaExceededError",
    "RecipeStep",
    "SMALL",
    "StorageUnavailable",
]

"""S3/Swift-like object storage.

EVOp warehoused datasets and machine images in object stores on both
clouds.  This is a faithful-but-minimal blob store: containers, keyed
blobs with metadata and etags, list with prefix, and conditional get —
enough for the data warehouse, the Model Library's image payloads and
the workflow engine's stage caching.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.cloud.errors import BlobNotFound, ContainerNotFound, StorageUnavailable
from repro.sim import Simulator


@dataclass
class Blob:
    """A stored object: payload plus user metadata and an etag."""

    key: str
    payload: Any
    size_bytes: int
    etag: str
    created_at: float
    metadata: Dict[str, str] = field(default_factory=dict)


def _etag_of(payload: Any) -> str:
    return hashlib.sha256(repr(payload).encode()).hexdigest()[:16]


def _size_of(payload: Any, declared: Optional[int]) -> int:
    if declared is not None:
        return declared
    if isinstance(payload, (bytes, bytearray, str)):
        return len(payload)
    return len(repr(payload))


class Container:
    """A named bucket of blobs."""

    def __init__(self, name: str, sim: Simulator,
                 store: Optional["BlobStore"] = None):
        self.name = name
        self._sim = sim
        self._store = store
        self._blobs: Dict[str, Blob] = {}

    def _check_available(self, writing: bool = False) -> None:
        if self._store is not None:
            self._store._check_fault()

    def _maybe_tear(self, payload: Any) -> Any:
        """Apply a one-shot torn-write fault to string payloads."""
        if self._store is None or not self._store.consume_torn_write():
            return payload
        if isinstance(payload, str) and len(payload) > 1:
            return payload[: max(1, (2 * len(payload)) // 3)]
        return payload

    def put(self, key: str, payload: Any,
            metadata: Optional[Dict[str, str]] = None,
            size_bytes: Optional[int] = None) -> Blob:
        """Store (or overwrite) ``key``; returns the stored blob."""
        self._check_available(writing=True)
        payload = self._maybe_tear(payload)
        blob = Blob(
            key=key,
            payload=payload,
            size_bytes=_size_of(payload, size_bytes),
            etag=_etag_of(payload),
            created_at=self._sim.now,
            metadata=dict(metadata or {}),
        )
        self._blobs[key] = blob
        return blob

    def get(self, key: str) -> Blob:
        """Fetch ``key`` or raise :class:`BlobNotFound`."""
        self._check_available()
        try:
            return self._blobs[key]
        except KeyError:
            raise BlobNotFound(f"{self.name}/{key}") from None

    def get_if_none_match(self, key: str, etag: str) -> Optional[Blob]:
        """Conditional get: ``None`` when the caller's etag is current."""
        blob = self.get(key)
        if blob.etag == etag:
            return None
        return blob

    def exists(self, key: str) -> bool:
        """Whether ``key`` is stored."""
        return key in self._blobs

    def delete(self, key: str) -> None:
        """Remove ``key`` or raise :class:`BlobNotFound`."""
        self._check_available(writing=True)
        if key not in self._blobs:
            raise BlobNotFound(f"{self.name}/{key}")
        del self._blobs[key]

    def list(self, prefix: str = "") -> List[str]:
        """Keys with the given prefix, sorted."""
        self._check_available()
        return sorted(k for k in self._blobs if k.startswith(prefix))

    def total_bytes(self) -> int:
        """Sum of stored blob sizes."""
        return sum(b.size_bytes for b in self._blobs.values())

    def __len__(self) -> int:
        return len(self._blobs)


class BlobStore:
    """Top-level object store: a namespace of containers.

    Fault injection (see :class:`~repro.cloud.faults.FaultInjector`)
    can mark the whole store *unavailable* — every container operation
    raises :class:`StorageUnavailable` until healed — or arm a one-shot
    *torn write*: the next string ``put`` stores a truncated payload,
    the signature a write-ahead journal must detect and truncate.
    """

    def __init__(self, sim: Simulator, name: str = "store"):
        self._sim = sim
        self.name = name
        self._containers: Dict[str, Container] = {}
        self._fault: Optional[str] = None
        self._torn_writes_pending = 0

    # -- fault hooks (driven by the FaultInjector) ---------------------------

    def set_fault(self, kind: str) -> None:
        """Arm a fault: ``"unavailable"`` or ``"torn_write"``."""
        if kind == "unavailable":
            self._fault = kind
        elif kind == "torn_write":
            self._torn_writes_pending += 1
        else:
            raise ValueError(f"unknown storage fault kind {kind!r}")

    def clear_fault(self) -> None:
        """Heal the store (torn writes already armed stay armed)."""
        self._fault = None

    @property
    def faulted(self) -> bool:
        """Whether the store is currently refusing requests."""
        return self._fault == "unavailable"

    def _check_fault(self) -> None:
        if self._fault == "unavailable":
            raise StorageUnavailable(f"blob store {self.name!r} unavailable")

    def consume_torn_write(self) -> bool:
        """Whether the current ``put`` should tear (one-shot)."""
        if self._torn_writes_pending > 0:
            self._torn_writes_pending -= 1
            return True
        return False

    def create_container(self, name: str) -> Container:
        """Create (or return the existing) container ``name``."""
        if name not in self._containers:
            self._containers[name] = Container(name, self._sim, store=self)
        return self._containers[name]

    def container(self, name: str) -> Container:
        """Fetch an existing container or raise :class:`ContainerNotFound`."""
        try:
            return self._containers[name]
        except KeyError:
            raise ContainerNotFound(name) from None

    def containers(self) -> Iterable[str]:
        """Names of all containers, sorted."""
        return sorted(self._containers)

    def delete_container(self, name: str, force: bool = False) -> None:
        """Delete a container; refuses non-empty ones unless ``force``."""
        container = self.container(name)
        if len(container) and not force:
            raise ValueError(f"container {name!r} not empty")
        del self._containers[name]

"""S3/Swift-like object storage.

EVOp warehoused datasets and machine images in object stores on both
clouds.  This is a faithful-but-minimal blob store: containers, keyed
blobs with metadata and etags, list with prefix, and conditional get —
enough for the data warehouse, the Model Library's image payloads and
the workflow engine's stage caching.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.cloud.errors import BlobNotFound, ContainerNotFound
from repro.sim import Simulator


@dataclass
class Blob:
    """A stored object: payload plus user metadata and an etag."""

    key: str
    payload: Any
    size_bytes: int
    etag: str
    created_at: float
    metadata: Dict[str, str] = field(default_factory=dict)


def _etag_of(payload: Any) -> str:
    return hashlib.sha256(repr(payload).encode()).hexdigest()[:16]


def _size_of(payload: Any, declared: Optional[int]) -> int:
    if declared is not None:
        return declared
    if isinstance(payload, (bytes, bytearray, str)):
        return len(payload)
    return len(repr(payload))


class Container:
    """A named bucket of blobs."""

    def __init__(self, name: str, sim: Simulator):
        self.name = name
        self._sim = sim
        self._blobs: Dict[str, Blob] = {}

    def put(self, key: str, payload: Any,
            metadata: Optional[Dict[str, str]] = None,
            size_bytes: Optional[int] = None) -> Blob:
        """Store (or overwrite) ``key``; returns the stored blob."""
        blob = Blob(
            key=key,
            payload=payload,
            size_bytes=_size_of(payload, size_bytes),
            etag=_etag_of(payload),
            created_at=self._sim.now,
            metadata=dict(metadata or {}),
        )
        self._blobs[key] = blob
        return blob

    def get(self, key: str) -> Blob:
        """Fetch ``key`` or raise :class:`BlobNotFound`."""
        try:
            return self._blobs[key]
        except KeyError:
            raise BlobNotFound(f"{self.name}/{key}") from None

    def get_if_none_match(self, key: str, etag: str) -> Optional[Blob]:
        """Conditional get: ``None`` when the caller's etag is current."""
        blob = self.get(key)
        if blob.etag == etag:
            return None
        return blob

    def exists(self, key: str) -> bool:
        """Whether ``key`` is stored."""
        return key in self._blobs

    def delete(self, key: str) -> None:
        """Remove ``key`` or raise :class:`BlobNotFound`."""
        if key not in self._blobs:
            raise BlobNotFound(f"{self.name}/{key}")
        del self._blobs[key]

    def list(self, prefix: str = "") -> List[str]:
        """Keys with the given prefix, sorted."""
        return sorted(k for k in self._blobs if k.startswith(prefix))

    def total_bytes(self) -> int:
        """Sum of stored blob sizes."""
        return sum(b.size_bytes for b in self._blobs.values())

    def __len__(self) -> int:
        return len(self._blobs)


class BlobStore:
    """Top-level object store: a namespace of containers."""

    def __init__(self, sim: Simulator, name: str = "store"):
        self._sim = sim
        self.name = name
        self._containers: Dict[str, Container] = {}

    def create_container(self, name: str) -> Container:
        """Create (or return the existing) container ``name``."""
        if name not in self._containers:
            self._containers[name] = Container(name, self._sim)
        return self._containers[name]

    def container(self, name: str) -> Container:
        """Fetch an existing container or raise :class:`ContainerNotFound`."""
        try:
            return self._containers[name]
        except KeyError:
            raise ContainerNotFound(name) from None

    def containers(self) -> Iterable[str]:
        """Names of all containers, sorted."""
        return sorted(self._containers)

    def delete_container(self, name: str, force: bool = False) -> None:
        """Delete a container; refuses non-empty ones unless ``force``."""
        container = self.container(name)
        if len(container) and not force:
            raise ValueError(f"container {name!r} not empty")
        del self._containers[name]

"""Instance runtime: lifecycle, job execution, resource statistics.

An :class:`Instance` is the unit the Resource Broker hands to user
sessions and the Load Balancer watches.  It models:

* the usual IaaS lifecycle (``PENDING -> RUNNING -> TERMINATED`` with
  ``DEGRADED``/``FAILED`` fault branches),
* a multi-server FIFO execution engine (one server per vCPU) whose job
  service times honour flavor speed and image run-speed factors — queueing
  under load is what makes the LB's responsiveness heuristics meaningful,
* cumulative resource counters (CPU busy-time, disk I/O, network in/out)
  that the health monitor samples, including the two failure signatures
  the paper names: *sustained high CPU* and *zero outbound traffic while
  receiving inbound*.
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Set

from repro.cloud.errors import InvalidStateError
from repro.cloud.flavors import Flavor
from repro.cloud.images import MachineImage
from repro.obs.hub import obs_of
from repro.sim import Signal, Simulator

_job_ids = itertools.count()


class InstanceState(enum.Enum):
    """Lifecycle states of a simulated instance."""

    PENDING = "pending"
    RUNNING = "running"
    DEGRADED = "degraded"
    FAILED = "failed"
    TERMINATED = "terminated"


@dataclass
class JobOutcome:
    """Result of a job: either a value or the error that sank it."""

    job_id: str
    succeeded: bool
    value: Any = None
    error: Optional[str] = None
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def duration(self) -> float:
        """Wall-clock (simulated) execution time excluding queueing."""
        return self.finished_at - self.started_at


class Job:
    """A unit of compute submitted to an instance.

    ``cost`` is CPU-seconds on the reference core; the actual service time
    divides by the instance's effective speed.  ``compute`` runs when the
    job completes and produces the job's value (this is where a real
    TOPMODEL run happens — instantaneous in host time, charged in
    simulated time).  ``disk_read_mb``/``disk_write_mb`` feed the instance
    I/O counters.
    """

    __slots__ = ("job_id", "name", "cost", "compute", "disk_read_mb",
                 "disk_write_mb", "done", "trace", "span")

    def __init__(self, cost: float, compute: Optional[Callable[[], Any]] = None,
                 name: str = "job", disk_read_mb: float = 1.0,
                 disk_write_mb: float = 0.5):
        if cost < 0:
            raise ValueError("job cost must be non-negative")
        self.job_id = f"job-{next(_job_ids):06d}"
        self.name = name
        self.cost = cost
        self.compute = compute
        self.disk_read_mb = disk_read_mb
        self.disk_write_mb = disk_write_mb
        self.done: Optional[Signal] = None  # attached at submission
        self.trace = None   # optional SpanContext set by the submitter
        self.span = None    # the execution span, opened at submission


class Instance:
    """A simulated virtual machine.

    Instances are created by a :class:`~repro.cloud.provider.CloudProvider`
    (never directly by application code) in ``PENDING`` state; the provider
    transitions them to ``RUNNING`` once the boot delay elapses and fires
    :attr:`ready`.
    """

    def __init__(self, sim: Simulator, instance_id: str, provider_name: str,
                 image: MachineImage, flavor: Flavor):
        self._sim = sim
        self.instance_id = instance_id
        self.provider_name = provider_name
        self.image = image
        self.flavor = flavor
        self.address = f"{instance_id}.{provider_name}.evop"
        self.state = InstanceState.PENDING
        self.launched_at = sim.now
        self.ready: Signal = sim.signal(f"{instance_id}.ready")
        self.terminated: Signal = sim.signal(f"{instance_id}.terminated")

        # execution engine
        self._queue: Deque[Job] = deque()
        #: when set, submissions beyond this queue depth are rejected
        #: with a fast 'queue full' failure (server back-pressure); the
        #: Load Balancer configures this on the replicas it manages
        self.max_queue: Optional[int] = None
        self._busy_servers = 0
        self._degradation = 1.0       # service-speed multiplier (<1 when degraded)
        self._running_jobs: Dict[str, Any] = {}   # job_id -> timer EventHandle

        # cumulative resource counters (health monitor reads these)
        self.cpu_busy_seconds = 0.0
        self._busy_since: Dict[str, float] = {}   # job_id -> start time
        self.disk_read_mb = 0.0
        self.disk_write_mb = 0.0
        self.net_bytes_in = 0.0
        self.net_bytes_out = 0.0
        self.network_blackholed = False

        # what payload the guest carries (models installed post-boot on
        # incubators; streamlined bundles start with their bundled set)
        self.installed_models: Set[str] = set(image.bundled_models)
        self.jobs_completed = 0
        self.jobs_failed = 0

    # -- state predicates ----------------------------------------------------

    @property
    def is_serving(self) -> bool:
        """Whether the instance can accept and answer requests."""
        return self.state in (InstanceState.RUNNING, InstanceState.DEGRADED)

    @property
    def is_gone(self) -> bool:
        """Whether the instance is failed or terminated."""
        return self.state in (InstanceState.FAILED, InstanceState.TERMINATED)

    @property
    def effective_speed(self) -> float:
        """Per-server service speed (reference-core multiples)."""
        return (self.flavor.compute_speed * self.image.run_speed_factor
                * self._degradation)

    def cpu_utilization(self) -> float:
        """Instantaneous CPU utilisation in [0, 1].

        A degraded instance reports saturated CPU regardless of queue
        state — reproducing the 'sustained high CPU utilisation'
        signature the paper's LB watches for.
        """
        if self.state == InstanceState.DEGRADED:
            return 1.0
        if not self.is_serving:
            return 0.0
        return min(1.0, self._busy_servers / self.flavor.vcpus)

    def queue_length(self) -> int:
        """Jobs waiting (not yet executing)."""
        return len(self._queue)

    def load(self) -> float:
        """Busy servers plus queued jobs, per vCPU — the LB's load metric."""
        return (self._busy_servers + len(self._queue)) / self.flavor.vcpus

    # -- lifecycle (driven by the provider / fault injector) -----------------

    def _emit(self, kind: str, **fields) -> None:
        obs_of(self._sim).events.emit(
            kind, instance=self.instance_id, provider=self.provider_name,
            **fields)

    def _mark_running(self) -> None:
        if self.state != InstanceState.PENDING:
            return  # crashed or terminated while booting
        self.state = InstanceState.RUNNING
        self._emit("instance.running",
                   boot_seconds=self._sim.now - self.launched_at)
        self.ready.fire(self)

    def _mark_terminated(self) -> None:
        if self.is_gone:
            return
        previous = self.state
        self.state = InstanceState.TERMINATED
        self._emit("instance.terminated", previous=previous.value)
        self._abort_all_work("instance terminated")
        if previous == InstanceState.PENDING and not self.ready.fired:
            self.ready.fire(None)
        self.terminated.fire(self)

    def _mark_failed(self, cause: str) -> None:
        if self.is_gone:
            return
        previous = self.state
        self.state = InstanceState.FAILED
        self._emit("instance.failed", previous=previous.value, cause=cause)
        self._abort_all_work(cause)
        if previous == InstanceState.PENDING and not self.ready.fired:
            self.ready.fire(None)
        self.terminated.fire(self)

    def _degrade(self, speed_multiplier: float = 0.1) -> None:
        if not self.is_serving:
            raise InvalidStateError(
                f"cannot degrade {self.instance_id} in state {self.state}")
        self.state = InstanceState.DEGRADED
        self._emit("instance.degraded", speed_multiplier=speed_multiplier)
        self._reschedule_running_jobs(speed_multiplier)

    def _blackhole(self) -> None:
        if not self.is_serving:
            raise InvalidStateError(
                f"cannot blackhole {self.instance_id} in state {self.state}")
        self.network_blackholed = True
        self._emit("instance.blackholed")

    def _heal(self) -> None:
        """Undo degrade/blackhole faults (a crash is not healable)."""
        if not self.is_serving:
            raise InvalidStateError(
                f"cannot heal {self.instance_id} in state {self.state}")
        if self.network_blackholed:
            self.network_blackholed = False
            self._emit("instance.healed", fault="blackhole")
        if self.state == InstanceState.DEGRADED:
            self.state = InstanceState.RUNNING
            self._emit("instance.healed", fault="degrade")
            self._reschedule_running_jobs(1.0)

    def _reschedule_running_jobs(self, new_degradation: float) -> None:
        """Stretch in-flight job completions when the speed changes."""
        old_speed = self.effective_speed
        self._degradation = new_degradation
        new_speed = self.effective_speed
        if not self._running_jobs or old_speed == new_speed:
            return
        stretch = old_speed / new_speed
        for job_id, (handle, job, finish_fn) in list(self._running_jobs.items()):
            remaining = handle.when - self._sim.now
            handle.cancel()
            new_handle = self._sim.schedule(remaining * stretch, finish_fn)
            self._running_jobs[job_id] = (new_handle, job, finish_fn)

    def _abort_all_work(self, cause: str) -> None:
        for job_id, (handle, job, _finish) in list(self._running_jobs.items()):
            handle.cancel()
            self._account_cpu(job_id)
            self._fail_job(job, cause)
        self._running_jobs.clear()
        self._busy_servers = 0
        while self._queue:
            self._fail_job(self._queue.popleft(), cause)

    def _fail_job(self, job: Job, cause: str) -> None:
        self.jobs_failed += 1
        if job.span is not None and not job.span.finished:
            job.span.annotate("aborted", cause=cause)
            job.span.finish(error=cause)
        outcome = JobOutcome(job_id=job.job_id, succeeded=False, error=cause,
                             started_at=self._sim.now,
                             finished_at=self._sim.now)
        if job.done is not None and not job.done.fired:
            job.done.fire(outcome)

    # -- job execution --------------------------------------------------------

    def submit(self, job: Job) -> Signal:
        """Queue ``job``; returns a signal fired with its :class:`JobOutcome`.

        Submitting to a non-serving instance fails the job immediately
        (callers observe it through the outcome, mirroring a connection
        refused at a dead VM).
        """
        job.done = self._sim.signal(f"{job.job_id}.done")
        if job.trace is not None:
            job.span = obs_of(self._sim).tracer.start_span(
                f"job {job.name}", parent=job.trace, kind="job",
                attributes={"instance": self.instance_id,
                            "job_id": job.job_id, "cost": job.cost})
        if not self.is_serving:
            self._fail_job(job, f"instance {self.instance_id} not serving")
            return job.done
        if self.max_queue is not None and len(self._queue) >= self.max_queue:
            self._fail_job(job, "queue full")
            return job.done
        self._queue.append(job)
        self._dispatch()
        return job.done

    def install_model(self, model_name: str) -> None:
        """Record that a model was installed on this (incubator) instance."""
        self.installed_models.add(model_name)

    def _dispatch(self) -> None:
        while self._queue and self._busy_servers < self.flavor.vcpus:
            job = self._queue.popleft()
            self._start_job(job)

    def _start_job(self, job: Job) -> None:
        self._busy_servers += 1
        started = self._sim.now
        self._busy_since[job.job_id] = started
        duration = job.cost / self.effective_speed if job.cost > 0 else 0.0
        if job.span is not None:
            job.span.set_attribute("queue_wait", started - job.span.start)

        def finish() -> None:
            self._running_jobs.pop(job.job_id, None)
            self._busy_servers -= 1
            self._account_cpu(job.job_id)
            self.disk_read_mb += job.disk_read_mb
            self.disk_write_mb += job.disk_write_mb
            try:
                value = self._compute(job)
            except Exception as err:  # noqa: BLE001 - surfaced in outcome
                self._fail_job(job, f"job raised: {err}")
            else:
                self.jobs_completed += 1
                if job.span is not None and not job.span.finished:
                    job.span.finish()
                outcome = JobOutcome(job_id=job.job_id, succeeded=True,
                                     value=value, started_at=started,
                                     finished_at=self._sim.now)
                job.done.fire(outcome)
            self._dispatch()

        handle = self._sim.schedule(duration, finish)
        self._running_jobs[job.job_id] = (handle, job, finish)

    def _compute(self, job: Job) -> Any:
        """Run the job's compute, scoping its span for nested tracing.

        Activation lets host-instantaneous work done inside ``compute``
        (a local workflow engine, a model run) parent any spans it
        starts under this job's span without explicit plumbing.
        """
        if job.compute is None:
            return None
        if job.span is None:
            return job.compute()
        with obs_of(self._sim).tracer.activate(job.span):
            return job.compute()

    def _account_cpu(self, job_id: str) -> None:
        started = self._busy_since.pop(job_id, None)
        if started is not None:
            self.cpu_busy_seconds += self._sim.now - started

    # -- network accounting (called by the transport layer) -------------------

    def record_bytes_in(self, n: float) -> None:
        """Count inbound bytes delivered to this instance."""
        self.net_bytes_in += n

    def record_bytes_out(self, n: float) -> None:
        """Count outbound bytes, unless the NIC is blackholed."""
        if not self.network_blackholed:
            self.net_bytes_out += n

    # -- introspection ---------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Point-in-time resource statistics (the CloudWatch-ish view)."""
        return {
            "cpu_utilization": self.cpu_utilization(),
            "queue_length": float(self.queue_length()),
            "load": self.load(),
            "disk_read_mb": self.disk_read_mb,
            "disk_write_mb": self.disk_write_mb,
            "net_bytes_in": self.net_bytes_in,
            "net_bytes_out": self.net_bytes_out,
            "jobs_completed": float(self.jobs_completed),
            "jobs_failed": float(self.jobs_failed),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Instance {self.instance_id} {self.state.value} "
                f"{self.flavor.name} img={self.image.name}>")

"""Configuration-management-tool (CMT) style provisioning recipes.

Section VI of the paper contrasts two deployment paths: full pre-baked
images, and generic images configured post-boot with CMTs (Chef/Puppet)
"which allow the definition of an infrastructure of VMs as code".  A
:class:`ProvisioningRecipe` is that infrastructure-as-code object: an
ordered list of steps, each with a duration and an effect on the
instance (installing a model, raising the run-speed factor once tuned).

Recipes are applied as simulator processes so provisioning time is
visible to the deployment benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cloud.instance import Instance
from repro.sim import Process, Signal, Simulator


@dataclass(frozen=True)
class RecipeStep:
    """One provisioning action.

    ``installs_model`` names a model made runnable by the step;
    ``description`` is free text ("apt install r-base", "stage FUSE
    parameter sets", ...).
    """

    description: str
    duration_seconds: float
    installs_model: Optional[str] = None

    def __post_init__(self) -> None:
        if self.duration_seconds < 0:
            raise ValueError("step duration must be non-negative")


@dataclass
class ProvisioningRecipe:
    """An ordered, idempotent-by-convention list of steps."""

    name: str
    steps: List[RecipeStep] = field(default_factory=list)

    def add_step(self, description: str, duration_seconds: float,
                 installs_model: Optional[str] = None) -> "ProvisioningRecipe":
        """Append a step; returns self for chaining."""
        self.steps.append(RecipeStep(description, duration_seconds,
                                     installs_model))
        return self

    @property
    def total_duration(self) -> float:
        """Sum of all step durations."""
        return sum(step.duration_seconds for step in self.steps)

    @property
    def installed_models(self) -> Tuple[str, ...]:
        """Models this recipe makes runnable, in step order."""
        return tuple(step.installs_model for step in self.steps
                     if step.installs_model is not None)

    def apply(self, sim: Simulator, instance: Instance) -> Signal:
        """Run the recipe against a booted instance.

        Returns a signal fired with the list of executed step
        descriptions when provisioning completes, or with ``None`` if
        the instance dies mid-recipe.
        """
        done = sim.signal(f"provision.{self.name}.{instance.instance_id}")

        def runner():
            executed = []
            for step in self.steps:
                if not instance.is_serving:
                    done.fire(None)
                    return
                yield step.duration_seconds
                if not instance.is_serving:
                    done.fire(None)
                    return
                if step.installs_model is not None:
                    instance.install_model(step.installs_model)
                executed.append(step.description)
            done.fire(executed)

        sim.spawn(runner(), name=f"provision.{instance.instance_id}")
        return done

    def apply_process(self, sim: Simulator, instance: Instance) -> Process:
        """Like :meth:`apply` but returns the process for joining."""
        signal = self.apply(sim, instance)

        def waiter():
            result = yield signal
            return result

        return sim.spawn(waiter(), name=f"provision.wait.{instance.instance_id}")

"""Cost accounting across providers.

The paper's LB exists "to minimise costs and maintain instance
responsiveness": private instances are effectively sunk cost (power and
amortisation), public ones bill per second of runtime.  The meter records
instance start/stop events and prices them with a :class:`PriceTable`, so
benches can report the cost side of every scheduling policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cloud.instance import Instance
from repro.sim import Simulator


@dataclass(frozen=True)
class PriceTable:
    """Per-provider hourly prices by flavor name.

    ``minimum_billed_seconds`` models public-cloud minimum billing
    granularity (AWS bills per-second with a 60 s floor).
    """

    hourly_by_flavor: Dict[str, float]
    minimum_billed_seconds: float = 0.0

    def rate_per_second(self, flavor_name: str) -> float:
        """Price of one second of the named flavor."""
        try:
            return self.hourly_by_flavor[flavor_name] / 3600.0
        except KeyError:
            raise KeyError(f"no price for flavor {flavor_name!r}") from None

    def cost(self, flavor_name: str, seconds: float) -> float:
        """Cost of running ``flavor_name`` for ``seconds``."""
        billed = max(seconds, self.minimum_billed_seconds)
        return self.rate_per_second(flavor_name) * billed


@dataclass
class _UsageRecord:
    instance_id: str
    provider: str
    flavor_name: str
    started_at: float
    stopped_at: Optional[float] = None


@dataclass
class BillingMeter:
    """Accumulates usage records and prices them on demand."""

    sim: Simulator
    prices: Dict[str, PriceTable] = field(default_factory=dict)
    _records: List[_UsageRecord] = field(default_factory=list)
    _open: Dict[str, _UsageRecord] = field(default_factory=dict)

    def register_provider(self, provider_name: str, table: PriceTable) -> None:
        """Attach the price table used for ``provider_name``."""
        self.prices[provider_name] = table

    def instance_started(self, instance: Instance) -> None:
        """Begin accruing cost for ``instance`` from now."""
        record = _UsageRecord(
            instance_id=instance.instance_id,
            provider=instance.provider_name,
            flavor_name=instance.flavor.name,
            started_at=self.sim.now,
        )
        self._records.append(record)
        self._open[instance.instance_id] = record

    def instance_stopped(self, instance: Instance) -> None:
        """Stop accruing cost for ``instance``; idempotent."""
        record = self._open.pop(instance.instance_id, None)
        if record is not None:
            record.stopped_at = self.sim.now

    def _record_cost(self, record: _UsageRecord) -> float:
        stopped = record.stopped_at if record.stopped_at is not None else self.sim.now
        table = self.prices.get(record.provider)
        if table is None:
            return 0.0
        return table.cost(record.flavor_name, stopped - record.started_at)

    def cost_by_provider(self) -> Dict[str, float]:
        """Total accrued cost per provider (open records priced to now)."""
        totals: Dict[str, float] = {}
        for record in self._records:
            totals[record.provider] = (totals.get(record.provider, 0.0)
                                       + self._record_cost(record))
        return totals

    def total_cost(self) -> float:
        """Total accrued cost across every provider."""
        return sum(self.cost_by_provider().values())

    def instance_seconds_by_provider(self) -> Dict[str, float]:
        """Total instance-seconds per provider (open records counted to now)."""
        totals: Dict[str, float] = {}
        for record in self._records:
            stopped = (record.stopped_at if record.stopped_at is not None
                       else self.sim.now)
            totals[record.provider] = (totals.get(record.provider, 0.0)
                                       + (stopped - record.started_at))
        return totals

"""Instance flavors (hardware shapes).

Flavors are deliberately provider-neutral: the multicloud layer matches a
requested flavor against whatever each provider offers, which is how the
same launch request lands on OpenStack or AWS unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Flavor:
    """A hardware shape an instance can be launched with.

    ``compute_speed`` is a relative per-core speed multiplier (1.0 = the
    reference core the model run-cost estimates are calibrated against).
    """

    name: str
    vcpus: int
    ram_mb: int
    disk_gb: int
    compute_speed: float = 1.0

    def __post_init__(self) -> None:
        if self.vcpus <= 0:
            raise ValueError(f"flavor {self.name!r} needs at least one vCPU")
        if self.ram_mb <= 0 or self.disk_gb <= 0:
            raise ValueError(f"flavor {self.name!r} has non-positive memory/disk")
        if self.compute_speed <= 0:
            raise ValueError(f"flavor {self.name!r} has non-positive speed")

    def fits_within(self, other: "Flavor") -> bool:
        """Whether this flavor's resources fit inside ``other``'s."""
        return (self.vcpus <= other.vcpus
                and self.ram_mb <= other.ram_mb
                and self.disk_gb <= other.disk_gb)


#: Single-core shape for lightweight data services.
SMALL = Flavor("small", vcpus=1, ram_mb=2048, disk_gb=20)

#: Default shape for model-serving instances.
MEDIUM = Flavor("medium", vcpus=2, ram_mb=4096, disk_gb=40)

#: Shape for heavy ensemble / uncertainty-analysis workers.
LARGE = Flavor("large", vcpus=4, ram_mb=8192, disk_gb=80, compute_speed=1.2)

"""Private OpenStack-like cloud: fixed capacity, per-project quotas.

The EVOp private cloud ran on university hardware: a bounded hypervisor
pool.  Saturating it is the event that triggers cloudbursting in the Load
Balancer, so the capacity model matters more than anything else here.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cloud.billing import BillingMeter
from repro.cloud.errors import CapacityError, QuotaExceededError
from repro.cloud.flavors import Flavor
from repro.cloud.images import MachineImage
from repro.cloud.instance import Instance
from repro.cloud.provider import CloudProvider
from repro.sim import RandomStreams, Simulator


class OpenStackCloud(CloudProvider):
    """Fixed-capacity private IaaS.

    ``total_vcpus`` bounds the physical pool; ``project_quota_vcpus``
    optionally caps any single project below that (the grid-style quota
    the elasticity benches contrast against).  Boot is fast: images live
    on the local Glance store, no cross-WAN transfer.
    """

    def __init__(self, sim: Simulator, total_vcpus: int = 16,
                 name: str = "openstack",
                 project_quota_vcpus: Optional[int] = None,
                 base_boot_seconds: float = 25.0,
                 image_transfer_mbps: float = 800.0,
                 streams: Optional[RandomStreams] = None,
                 meter: Optional[BillingMeter] = None):
        super().__init__(sim, name, streams=streams, meter=meter)
        if total_vcpus <= 0:
            raise ValueError("total_vcpus must be positive")
        self.total_vcpus = total_vcpus
        self.project_quota_vcpus = project_quota_vcpus
        self.base_boot_seconds = base_boot_seconds
        self.image_transfer_mbps = image_transfer_mbps
        self._used_vcpus = 0
        self._project_vcpus: Dict[str, int] = {}
        self._instance_project: Dict[str, str] = {}

    # -- capacity accounting ----------------------------------------------------

    @property
    def used_vcpus(self) -> int:
        """vCPUs currently committed to live instances."""
        return self._used_vcpus

    @property
    def free_vcpus(self) -> int:
        """vCPUs still available in the physical pool."""
        return self.total_vcpus - self._used_vcpus

    def utilization(self) -> float:
        """Fraction of the physical pool in use."""
        return self._used_vcpus / self.total_vcpus

    def is_saturated(self, flavor: Optional[Flavor] = None) -> bool:
        """Whether the pool cannot host one more instance.

        With a ``flavor`` given, checks that specific shape; otherwise
        checks whether any capacity remains at all.
        """
        needed = flavor.vcpus if flavor is not None else 1
        return self.free_vcpus < needed

    def _check_admission(self, flavor: Flavor, project: str) -> None:
        if flavor.vcpus > self.free_vcpus:
            raise CapacityError(
                f"{self.name}: need {flavor.vcpus} vCPUs, "
                f"{self.free_vcpus} free of {self.total_vcpus}")
        if self.project_quota_vcpus is not None:
            used = self._project_vcpus.get(project, 0)
            if used + flavor.vcpus > self.project_quota_vcpus:
                raise QuotaExceededError(
                    f"{self.name}: project {project!r} quota "
                    f"{self.project_quota_vcpus} vCPUs exceeded")

    def launch(self, image: MachineImage, flavor: Flavor,
               project: str = "evop") -> Instance:
        instance = super().launch(image, flavor, project)
        self._used_vcpus += flavor.vcpus
        self._project_vcpus[project] = (self._project_vcpus.get(project, 0)
                                        + flavor.vcpus)
        self._instance_project[instance.instance_id] = project
        self.metrics.gauge("vcpus.used").set(self._used_vcpus)
        return instance

    def _release_capacity(self, instance: Instance) -> None:
        self._used_vcpus -= instance.flavor.vcpus
        project = self._instance_project.pop(instance.instance_id, None)
        if project is not None:
            self._project_vcpus[project] -= instance.flavor.vcpus
        self.metrics.gauge("vcpus.used").set(self._used_vcpus)

    # -- boot behaviour -----------------------------------------------------------

    def boot_time(self, image: MachineImage) -> float:
        """Local image store: base boot plus LAN-speed image copy."""
        transfer = image.size_gb * 8000.0 / self.image_transfer_mbps
        jitter = self.streams.get(f"{self.name}.boot").uniform(0.9, 1.1)
        return (self.base_boot_seconds + transfer) * jitter

    def _id_prefix(self) -> str:
        return "os"

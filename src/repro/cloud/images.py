"""Machine images and the image store.

The paper's Model Library stores two kinds of execution unit:

* **streamlined bundles** — pre-baked images "optimised to run a fine
  tuned set of models ... equipped with all required data".  Bigger to
  transfer/boot but fastest per model run.
* **incubators** — generic images onto which experimental models are
  installed after boot (optionally via a CMT recipe).  Quick to obtain,
  flexible, but slower per run ("some effect on execution performance").

:class:`MachineImage` captures those trade-offs as boot-cost and run-speed
parameters the instance runtime honours; :class:`ImageStore` is the
Glance/AMI-registry role.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cloud.errors import ImageNotFound


class ImageKind(enum.Enum):
    """What sort of execution unit an image is."""

    #: Pre-baked, model-and-data-complete bundle (fast runs, slow to bake).
    STREAMLINED = "streamlined"
    #: Generic base onto which models are installed post-boot.
    INCUBATOR = "incubator"
    #: Plain OS image with no modelling payload (portal/front-end hosts).
    GENERIC = "generic"


@dataclass(frozen=True)
class MachineImage:
    """An immutable machine image.

    ``size_gb`` drives boot-transfer time; ``run_speed_factor`` scales the
    service time of model jobs executed on instances booted from the image
    (streamlined bundles > 1.0, incubators < 1.0 until provisioned).
    ``bundled_models``/``bundled_datasets`` list what a streamlined bundle
    ships with, so the broker can route a model request to an image that
    already contains everything it needs.
    """

    image_id: str
    name: str
    kind: ImageKind
    size_gb: float = 4.0
    format: str = "qcow2"
    run_speed_factor: float = 1.0
    bundled_models: Tuple[str, ...] = ()
    bundled_datasets: Tuple[str, ...] = ()
    parent_id: Optional[str] = None
    generation: int = 1

    def __post_init__(self) -> None:
        if self.size_gb <= 0:
            raise ValueError(f"image {self.name!r} has non-positive size")
        if self.run_speed_factor <= 0:
            raise ValueError(f"image {self.name!r} has non-positive speed")

    def supports_model(self, model_name: str) -> bool:
        """Whether the image ships the named model ready to execute."""
        return model_name in self.bundled_models


@dataclass
class ImageStore:
    """Registry of machine images (the Glance / AMI-catalogue role).

    Supports the paper's image-update flow: ``rebake`` derives a new
    generation from an existing image (more data, adjusted model) without
    mutating the original, so instances already booted are unaffected.
    """

    _images: Dict[str, MachineImage] = field(default_factory=dict)
    _counter: itertools.count = field(default_factory=itertools.count)

    def register(self, image: MachineImage) -> MachineImage:
        """Add ``image`` to the store; ids must be unique."""
        if image.image_id in self._images:
            raise ValueError(f"duplicate image id {image.image_id!r}")
        self._images[image.image_id] = image
        return image

    def create(self, name: str, kind: ImageKind, **kwargs) -> MachineImage:
        """Create, register and return a new image with a fresh id."""
        image_id = f"img-{next(self._counter):04d}"
        image = MachineImage(image_id=image_id, name=name, kind=kind, **kwargs)
        return self.register(image)

    def get(self, image_id: str) -> MachineImage:
        """Look an image up by id."""
        try:
            return self._images[image_id]
        except KeyError:
            raise ImageNotFound(image_id) from None

    def list(self, kind: Optional[ImageKind] = None) -> List[MachineImage]:
        """All images, optionally filtered by kind, in insertion order."""
        images = list(self._images.values())
        if kind is not None:
            images = [img for img in images if img.kind == kind]
        return images

    def find_streamlined_for(self, model_name: str) -> Optional[MachineImage]:
        """Newest streamlined bundle that ships ``model_name``, if any."""
        candidates = [img for img in self.list(ImageKind.STREAMLINED)
                      if img.supports_model(model_name)]
        if not candidates:
            return None
        return max(candidates, key=lambda img: img.generation)

    def rebake(self, image_id: str, *, extra_models: Tuple[str, ...] = (),
               extra_datasets: Tuple[str, ...] = (),
               size_increase_gb: float = 0.0) -> MachineImage:
        """Derive a new generation of an image with additional payload."""
        base = self.get(image_id)
        new_id = f"img-{next(self._counter):04d}"
        derived = MachineImage(
            image_id=new_id,
            name=base.name,
            kind=base.kind,
            size_gb=base.size_gb + size_increase_gb,
            format=base.format,
            run_speed_factor=base.run_speed_factor,
            bundled_models=base.bundled_models + extra_models,
            bundled_datasets=base.bundled_datasets + extra_datasets,
            parent_id=base.image_id,
            generation=base.generation + 1,
        )
        return self.register(derived)

    def lineage(self, image_id: str) -> List[MachineImage]:
        """The chain of ancestors from ``image_id`` back to the root."""
        chain = [self.get(image_id)]
        while chain[-1].parent_id is not None:
            chain.append(self.get(chain[-1].parent_id))
        return chain

"""Exception hierarchy for the simulated cloud substrate."""

from __future__ import annotations


class CloudError(Exception):
    """Base class for all cloud-substrate errors."""


class CapacityError(CloudError):
    """The provider has no free physical capacity for the request.

    Raised by the private cloud when its fixed hypervisor pool is full —
    the condition that triggers cloudbursting in the load balancer.
    """


class QuotaExceededError(CloudError):
    """A per-project quota (not physical capacity) blocks the request.

    Distinct from :class:`CapacityError` because the paper contrasts IaaS
    elasticity with grid/cluster *usage quotas*; benches rely on telling
    the two apart.
    """


class InstanceNotFound(CloudError):
    """No instance with the requested id exists at this provider."""


class ImageNotFound(CloudError):
    """No machine image with the requested id exists in the image store."""


class InvalidStateError(CloudError):
    """The operation is not legal in the instance's current state."""


class BlobNotFound(CloudError):
    """The requested object does not exist in the blob store."""


class StorageUnavailable(CloudError):
    """The blob store is refusing requests (injected outage).

    Raised by every container operation while a ``storage_fault`` or
    provider ``outage`` is active; durable-execution callers treat it
    like a crash point — nothing written during the fault is trusted.
    """


class ContainerNotFound(CloudError):
    """The requested container does not exist in the blob store."""

"""Public AWS-like cloud: elastic capacity, per-second billing.

The public side of the hybrid pair.  Capacity is effectively unbounded
(an optional account limit mirrors EC2's default instance caps), boots
are slower and noisier than the LAN-local private cloud, and every
second is billed.
"""

from __future__ import annotations

from typing import Optional

from repro.cloud.billing import BillingMeter
from repro.cloud.errors import QuotaExceededError
from repro.cloud.flavors import Flavor
from repro.cloud.images import MachineImage
from repro.cloud.provider import CloudProvider
from repro.sim import RandomStreams, Simulator


class AwsCloud(CloudProvider):
    """Elastic public IaaS (the EC2 role).

    ``account_instance_limit`` is the only admission rule; ``None`` means
    unbounded.  Boot times include cross-WAN image staging and the
    heavier tail public clouds exhibit.
    """

    def __init__(self, sim: Simulator, name: str = "aws",
                 account_instance_limit: Optional[int] = None,
                 base_boot_seconds: float = 45.0,
                 image_transfer_mbps: float = 600.0,
                 streams: Optional[RandomStreams] = None,
                 meter: Optional[BillingMeter] = None):
        super().__init__(sim, name, streams=streams, meter=meter)
        self.account_instance_limit = account_instance_limit
        self.base_boot_seconds = base_boot_seconds
        self.image_transfer_mbps = image_transfer_mbps

    def _check_admission(self, flavor: Flavor, project: str) -> None:
        if (self.account_instance_limit is not None
                and self.active_count() >= self.account_instance_limit):
            raise QuotaExceededError(
                f"{self.name}: account limit of "
                f"{self.account_instance_limit} instances reached")

    def boot_time(self, image: MachineImage) -> float:
        """Cross-WAN staging plus a lognormal-ish long tail."""
        transfer = image.size_gb * 8000.0 / self.image_transfer_mbps
        rng = self.streams.get(f"{self.name}.boot")
        jitter = rng.uniform(0.9, 1.3)
        tail = rng.expovariate(1.0 / 5.0)  # occasional slow scheduler placement
        return (self.base_boot_seconds + transfer) * jitter + tail

    def _id_prefix(self) -> str:
        return "i"

"""Cross-cloud abstraction — the jclouds role.

Broker and portal code never names OpenStack or AWS: it asks the
:class:`MultiCloud` facade for a node matching a provider-neutral
:class:`NodeTemplate`.  Locations ("private", "public") are labels the
scheduling policies reason about; swapping a policy or adding a provider
requires no caller changes — the interoperability property Section VI
credits to jclouds, and which ``benchmarks/bench_policy_swap.py`` checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cloud.errors import CloudError, InstanceNotFound
from repro.cloud.flavors import Flavor
from repro.cloud.images import MachineImage
from repro.cloud.instance import Instance
from repro.cloud.provider import CloudProvider
from repro.cloud.storage import BlobStore


@dataclass(frozen=True)
class NodeTemplate:
    """Provider-neutral launch request.

    ``location`` restricts the launch to one registered location;
    ``None`` lets the facade try locations in registration order —
    registration order is therefore the default placement preference
    (EVOp registers "private" first to minimise cost).
    """

    image: MachineImage
    flavor: Flavor
    location: Optional[str] = None
    project: str = "evop"


#: The implicit region every pre-geo deployment lives in.
DEFAULT_REGION = "local"


class MultiCloud:
    """Uniform compute + blobstore API across registered providers.

    Locations optionally carry a *region*: a failure domain grouping
    several locations (one region usually registers a "private" and a
    "public" location).  Single-region deployments never mention
    regions and behave exactly as before; geo deployments register
    region-qualified locations and hand each regional control plane a
    :meth:`scoped` view that speaks plain local labels.
    """

    def __init__(self) -> None:
        self._computes: Dict[str, CloudProvider] = {}
        self._blobstores: Dict[str, BlobStore] = {}
        self._order: List[str] = []
        self._region_of: Dict[str, str] = {}
        self._breakers = None

    # -- registration ------------------------------------------------------------

    def attach_resilience(self, breakers) -> None:
        """Consult a shared BreakerRegistry when provisioning.

        With a registry attached, ``create_node`` skips locations whose
        ``launch@<location>`` breaker is open and feeds every admission
        outcome back into it — so a provider whose control plane keeps
        refusing is rested instead of hammered, deployment-wide.
        """
        self._breakers = breakers

    def register_compute(self, location: str, provider: CloudProvider,
                         region: str = DEFAULT_REGION) -> None:
        """Attach a compute provider under a location label."""
        if location in self._computes:
            raise ValueError(f"location {location!r} already registered")
        self._computes[location] = provider
        self._order.append(location)
        self._region_of[location] = region

    def register_blobstore(self, location: str, store: BlobStore,
                           region: str = DEFAULT_REGION) -> None:
        """Attach a blob store under a location label."""
        if location in self._blobstores:
            raise ValueError(f"location {location!r} already registered")
        self._blobstores[location] = store
        self._region_of.setdefault(location, region)

    def locations(self) -> List[str]:
        """Registered compute locations in preference order."""
        return list(self._order)

    def regions(self) -> List[str]:
        """Distinct regions in registration order."""
        seen: List[str] = []
        for location in self._order:
            region = self._region_of[location]
            if region not in seen:
                seen.append(region)
        return seen

    def region_of(self, location: str) -> str:
        """The region a location belongs to."""
        try:
            return self._region_of[location]
        except KeyError:
            raise CloudError(f"no location {location!r} registered") from None

    def scoped(self, region: str) -> "RegionScopedCloud":
        """A view of this estate restricted to one region.

        The view exposes the same node-management API but speaks the
        region's *local* labels (the part after ``<region>/``), so the
        scheduling policies — which reason about "private"/"public" —
        work unchanged inside any region.
        """
        locations = [loc for loc in self._order
                     if self._region_of[loc] == region]
        if not locations:
            raise CloudError(f"no locations registered in region {region!r}")
        return RegionScopedCloud(self, region, locations)

    def compute(self, location: str) -> CloudProvider:
        """The provider registered at ``location``."""
        try:
            return self._computes[location]
        except KeyError:
            raise CloudError(f"no compute at location {location!r}") from None

    def blobstore(self, location: str) -> BlobStore:
        """The blob store registered at ``location``."""
        try:
            return self._blobstores[location]
        except KeyError:
            raise CloudError(f"no blobstore at location {location!r}") from None

    # -- node management -----------------------------------------------------------

    def create_node(self, template: NodeTemplate) -> Instance:
        """Launch a node somewhere satisfying the template.

        With ``template.location`` set, only that location is tried.
        Otherwise locations are tried in registration order and the
        first admission success wins; if every provider refuses, the
        last error propagates.
        """
        locations = ([template.location] if template.location is not None
                     else self._order)
        if not locations:
            raise CloudError("no compute providers registered")
        last_error: Optional[CloudError] = None
        for location in locations:
            breaker = (self._breakers.get(f"launch@{location}")
                       if self._breakers is not None else None)
            if breaker is not None and not breaker.allow():
                last_error = CloudError(
                    f"circuit open for launches at {location!r}")
                continue
            provider = self.compute(location)
            try:
                instance = provider.launch(template.image, template.flavor,
                                           project=template.project)
            except CloudError as err:
                if breaker is not None:
                    breaker.record_failure()
                last_error = err
            else:
                if breaker is not None:
                    breaker.record_success()
                return instance
        assert last_error is not None
        raise last_error

    def destroy_node(self, instance: Instance) -> None:
        """Terminate a node wherever it lives."""
        self._provider_of(instance).terminate(instance.instance_id)

    def location_of(self, instance: Instance,
                    default: Optional[str] = None) -> str:
        """The location label of the provider hosting ``instance``.

        With ``default`` given it is returned instead of raising when
        no registered provider claims the instance — the public lookup
        the Load Balancer and admin console use (previously each had a
        private try/except wrapper).
        """
        for location, provider in self._computes.items():
            if provider.name == instance.provider_name:
                return location
        if default is not None:
            return default
        raise InstanceNotFound(instance.instance_id)

    def list_nodes(self, location: Optional[str] = None) -> List[Instance]:
        """Live (not-gone) nodes, optionally restricted to a location."""
        locations = [location] if location is not None else self._order
        nodes: List[Instance] = []
        for loc in locations:
            provider = self.compute(loc)
            nodes.extend(inst for inst in provider.instances()
                         if not inst.is_gone)
        return nodes

    def _provider_of(self, instance: Instance) -> CloudProvider:
        for provider in self._computes.values():
            if provider.name == instance.provider_name:
                return provider
        raise InstanceNotFound(instance.instance_id)


class RegionScopedCloud:
    """One region's slice of a :class:`MultiCloud`.

    Looks like a MultiCloud to the Load Balancer and router but only
    sees the region's locations, addressed by their local label: a
    global location ``"eu-west/private"`` is ``"private"`` through the
    ``eu-west`` view.  Launches, lookups and teardown all translate at
    the boundary, so per-region control planes stay region-blind.
    """

    def __init__(self, parent: MultiCloud, region: str,
                 locations: List[str]):
        self.parent = parent
        self.region = region
        self._globals = list(locations)           # global labels, in order
        prefix = f"{region}/"
        self._local_of = {glob: (glob[len(prefix):]
                                 if glob.startswith(prefix) else glob)
                          for glob in locations}
        self._global_of = {local: glob
                           for glob, local in self._local_of.items()}

    def qualify(self, local: str) -> str:
        """The global label of a local location."""
        try:
            return self._global_of[local]
        except KeyError:
            raise CloudError(f"no location {local!r} in region "
                             f"{self.region!r}") from None

    def locations(self) -> List[str]:
        """The region's locations (local labels) in preference order."""
        return [self._local_of[glob] for glob in self._globals]

    def compute(self, location: str) -> CloudProvider:
        """The provider at a local location."""
        return self.parent.compute(self.qualify(location))

    def blobstore(self, location: str) -> BlobStore:
        """The blob store at a local location."""
        return self.parent.blobstore(self.qualify(location))

    def create_node(self, template: NodeTemplate) -> Instance:
        """Launch inside this region (template uses local labels)."""
        if template.location is not None:
            template = NodeTemplate(template.image, template.flavor,
                                    location=self.qualify(template.location),
                                    project=template.project)
            return self.parent.create_node(template)
        last_error: Optional[CloudError] = None
        for local in self.locations():
            scoped = NodeTemplate(template.image, template.flavor,
                                  location=self.qualify(local),
                                  project=template.project)
            try:
                return self.parent.create_node(scoped)
            except CloudError as err:
                last_error = err
        assert last_error is not None
        raise last_error

    def destroy_node(self, instance: Instance) -> None:
        """Terminate a node (must live in this region)."""
        self.parent.destroy_node(instance)

    def location_of(self, instance: Instance,
                    default: Optional[str] = None) -> str:
        """The *local* label of the provider hosting ``instance``."""
        for glob in self._globals:
            if self.parent.compute(glob).name == instance.provider_name:
                return self._local_of[glob]
        if default is not None:
            return default
        raise InstanceNotFound(instance.instance_id)

    def list_nodes(self, location: Optional[str] = None) -> List[Instance]:
        """Live nodes in this region, optionally at one local location."""
        globals_ = ([self.qualify(location)] if location is not None
                    else self._globals)
        nodes: List[Instance] = []
        for glob in globals_:
            nodes.extend(self.parent.list_nodes(glob))
        return nodes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RegionScopedCloud {self.region} {self.locations()}>"

"""Cross-cloud abstraction — the jclouds role.

Broker and portal code never names OpenStack or AWS: it asks the
:class:`MultiCloud` facade for a node matching a provider-neutral
:class:`NodeTemplate`.  Locations ("private", "public") are labels the
scheduling policies reason about; swapping a policy or adding a provider
requires no caller changes — the interoperability property Section VI
credits to jclouds, and which ``benchmarks/bench_policy_swap.py`` checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cloud.errors import CloudError, InstanceNotFound
from repro.cloud.flavors import Flavor
from repro.cloud.images import MachineImage
from repro.cloud.instance import Instance
from repro.cloud.provider import CloudProvider
from repro.cloud.storage import BlobStore


@dataclass(frozen=True)
class NodeTemplate:
    """Provider-neutral launch request.

    ``location`` restricts the launch to one registered location;
    ``None`` lets the facade try locations in registration order —
    registration order is therefore the default placement preference
    (EVOp registers "private" first to minimise cost).
    """

    image: MachineImage
    flavor: Flavor
    location: Optional[str] = None
    project: str = "evop"


class MultiCloud:
    """Uniform compute + blobstore API across registered providers."""

    def __init__(self) -> None:
        self._computes: Dict[str, CloudProvider] = {}
        self._blobstores: Dict[str, BlobStore] = {}
        self._order: List[str] = []
        self._breakers = None

    # -- registration ------------------------------------------------------------

    def attach_resilience(self, breakers) -> None:
        """Consult a shared BreakerRegistry when provisioning.

        With a registry attached, ``create_node`` skips locations whose
        ``launch@<location>`` breaker is open and feeds every admission
        outcome back into it — so a provider whose control plane keeps
        refusing is rested instead of hammered, deployment-wide.
        """
        self._breakers = breakers

    def register_compute(self, location: str, provider: CloudProvider) -> None:
        """Attach a compute provider under a location label."""
        if location in self._computes:
            raise ValueError(f"location {location!r} already registered")
        self._computes[location] = provider
        self._order.append(location)

    def register_blobstore(self, location: str, store: BlobStore) -> None:
        """Attach a blob store under a location label."""
        self._blobstores[location] = store

    def locations(self) -> List[str]:
        """Registered compute locations in preference order."""
        return list(self._order)

    def compute(self, location: str) -> CloudProvider:
        """The provider registered at ``location``."""
        try:
            return self._computes[location]
        except KeyError:
            raise CloudError(f"no compute at location {location!r}") from None

    def blobstore(self, location: str) -> BlobStore:
        """The blob store registered at ``location``."""
        try:
            return self._blobstores[location]
        except KeyError:
            raise CloudError(f"no blobstore at location {location!r}") from None

    # -- node management -----------------------------------------------------------

    def create_node(self, template: NodeTemplate) -> Instance:
        """Launch a node somewhere satisfying the template.

        With ``template.location`` set, only that location is tried.
        Otherwise locations are tried in registration order and the
        first admission success wins; if every provider refuses, the
        last error propagates.
        """
        locations = ([template.location] if template.location is not None
                     else self._order)
        if not locations:
            raise CloudError("no compute providers registered")
        last_error: Optional[CloudError] = None
        for location in locations:
            breaker = (self._breakers.get(f"launch@{location}")
                       if self._breakers is not None else None)
            if breaker is not None and not breaker.allow():
                last_error = CloudError(
                    f"circuit open for launches at {location!r}")
                continue
            provider = self.compute(location)
            try:
                instance = provider.launch(template.image, template.flavor,
                                           project=template.project)
            except CloudError as err:
                if breaker is not None:
                    breaker.record_failure()
                last_error = err
            else:
                if breaker is not None:
                    breaker.record_success()
                return instance
        assert last_error is not None
        raise last_error

    def destroy_node(self, instance: Instance) -> None:
        """Terminate a node wherever it lives."""
        self._provider_of(instance).terminate(instance.instance_id)

    def location_of(self, instance: Instance,
                    default: Optional[str] = None) -> str:
        """The location label of the provider hosting ``instance``.

        With ``default`` given it is returned instead of raising when
        no registered provider claims the instance — the public lookup
        the Load Balancer and admin console use (previously each had a
        private try/except wrapper).
        """
        for location, provider in self._computes.items():
            if provider.name == instance.provider_name:
                return location
        if default is not None:
            return default
        raise InstanceNotFound(instance.instance_id)

    def list_nodes(self, location: Optional[str] = None) -> List[Instance]:
        """Live (not-gone) nodes, optionally restricted to a location."""
        locations = [location] if location is not None else self._order
        nodes: List[Instance] = []
        for loc in locations:
            provider = self.compute(loc)
            nodes.extend(inst for inst in provider.instances()
                         if not inst.is_gone)
        return nodes

    def _provider_of(self, instance: Instance) -> CloudProvider:
        for provider in self._computes.values():
            if provider.name == instance.provider_name:
                return provider
        raise InstanceNotFound(instance.instance_id)

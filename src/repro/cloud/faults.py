"""Fault injection for the failover and durability benchmarks.

The original fault kinds cover the signatures the paper's Load Balancer
detects:

* **crash** — the instance dies outright (state ``FAILED``); in-flight
  jobs fail, requests to it are refused.
* **degrade** — the instance keeps serving but its CPU pins at 100% and
  service slows drastically ("sustained high CPU utilisation").
* **blackhole** — the NIC stops transmitting while still receiving
  ("zero outbound network usage whilst receiving inbound traffic").

The durable-execution work adds infrastructure-level faults:

* **partition** — two addresses can no longer reach each other (requests
  between them time out); heals with :meth:`heal_partition`.
* **storage_fault** — a blob store goes unavailable or arms a one-shot
  torn write (see :class:`~repro.cloud.storage.BlobStore`).
* **outage** — a provider's blob store is unavailable for a fixed
  simulated duration, then heals itself.
* **heal** — undo a degrade/blackhole on an instance.

Every injection is recorded as a structured :class:`InjectedFault` in
:attr:`FaultInjector.injected` and emitted to the event log, so traces
show exactly where chaos struck.

Faults can be injected deterministically (``crash_at``) or as a Poisson
background process (``enable_random_crashes``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cloud.instance import Instance, InstanceState
from repro.cloud.provider import CloudProvider
from repro.cloud.storage import BlobStore
from repro.obs.hub import obs_of
from repro.sim import RandomStreams, Simulator


@dataclass(frozen=True)
class InjectedFault:
    """One recorded fault injection.

    Indexable like the old ``(time, kind, target)`` tuples so existing
    call sites keep working, but with named fields and a cause.
    """

    time: float
    kind: str
    target: str
    cause: str = ""

    def __getitem__(self, index: int):
        return (self.time, self.kind, self.target, self.cause)[index]

    def __iter__(self):
        return iter((self.time, self.kind, self.target, self.cause))


class FaultInjector:
    """Injects instance, network and storage faults.

    ``providers`` are the clouds whose instances can be crashed;
    ``network`` (optional) enables partitions; ``stores`` (optional,
    name → :class:`BlobStore`) enables storage faults and outages.
    """

    def __init__(self, sim: Simulator, providers: List[CloudProvider],
                 streams: Optional[RandomStreams] = None,
                 network: Optional[object] = None,
                 stores: Optional[Dict[str, BlobStore]] = None):
        self.sim = sim
        self.providers = list(providers)
        self.streams = streams or RandomStreams()
        self.network = network
        self.stores = dict(stores or {})
        self.injected: List[InjectedFault] = []

    def _provider_of(self, instance: Instance) -> CloudProvider:
        for provider in self.providers:
            if provider.name == instance.provider_name:
                return provider
        raise ValueError(f"no provider {instance.provider_name!r} registered")

    def _record(self, kind: str, target: str, cause: str = "") -> None:
        fault = InjectedFault(time=self.sim.now, kind=kind, target=target,
                              cause=cause)
        self.injected.append(fault)
        obs_of(self.sim).events.emit("fault.injected", fault=kind,
                                     target=target, cause=cause)

    # -- deterministic instance faults ---------------------------------------

    def crash(self, instance: Instance, cause: str = "hardware fault") -> None:
        """Kill ``instance`` now."""
        if instance.is_gone:
            return
        was_serving = instance.is_serving
        provider = self._provider_of(instance)
        instance._mark_failed(cause)
        provider._on_instance_gone(instance, was_serving)
        provider.metrics.counter("faults.crash").increment()
        self._record("crash", instance.instance_id, cause)

    def degrade(self, instance: Instance, speed_multiplier: float = 0.1) -> None:
        """Pin ``instance`` at 100% CPU with drastically slowed service."""
        instance._degrade(speed_multiplier)
        self._provider_of(instance).metrics.counter("faults.degrade").increment()
        self._record("degrade", instance.instance_id,
                     f"speed x{speed_multiplier}")

    def blackhole(self, instance: Instance) -> None:
        """Stop ``instance`` transmitting while it still receives."""
        instance._blackhole()
        self._provider_of(instance).metrics.counter("faults.blackhole").increment()
        self._record("blackhole", instance.instance_id)

    def heal(self, instance: Instance) -> None:
        """Undo a degrade/blackhole fault (a crash is permanent)."""
        instance._heal()
        self._record("heal", instance.instance_id)

    def crash_at(self, delay: float, instance: Instance,
                 cause: str = "scheduled fault") -> None:
        """Schedule a crash ``delay`` seconds from now."""
        self.sim.schedule(delay, self.crash, instance, cause)

    def degrade_at(self, delay: float, instance: Instance,
                   speed_multiplier: float = 0.1) -> None:
        """Schedule a degradation ``delay`` seconds from now."""
        self.sim.schedule(delay, self.degrade, instance, speed_multiplier)

    def blackhole_at(self, delay: float, instance: Instance) -> None:
        """Schedule a NIC blackhole ``delay`` seconds from now."""
        self.sim.schedule(delay, self.blackhole, instance)

    def heal_at(self, delay: float, instance: Instance) -> None:
        """Schedule a heal ``delay`` seconds from now."""
        self.sim.schedule(delay, self.heal, instance)

    # -- network faults ------------------------------------------------------

    def partition(self, a: str, b: str) -> None:
        """Cut the network between addresses ``a`` and ``b``.

        Requests between the two sides are silently dropped (the caller
        times out), in both directions, until :meth:`heal_partition`.
        """
        if self.network is None:
            raise ValueError("FaultInjector has no network to partition")
        self.network.partition(a, b)
        self._record("partition", f"{a}|{b}")

    def heal_partition(self, a: str, b: str) -> None:
        """Restore connectivity between ``a`` and ``b``."""
        if self.network is None:
            raise ValueError("FaultInjector has no network to heal")
        self.network.heal_partition(a, b)
        self._record("heal_partition", f"{a}|{b}")

    # -- storage faults ------------------------------------------------------

    def _store_of(self, provider: str) -> BlobStore:
        try:
            return self.stores[provider]
        except KeyError:
            raise ValueError(f"no blob store registered for provider "
                             f"{provider!r}") from None

    def storage_fault(self, provider: str, kind: str) -> None:
        """Inject a storage fault: ``"unavailable"`` or ``"torn_write"``."""
        self._store_of(provider).set_fault(kind)
        self._record("storage_fault", provider, kind)

    def heal_storage(self, provider: str) -> None:
        """Clear an ``unavailable`` fault on ``provider``'s store."""
        self._store_of(provider).clear_fault()
        self._record("heal_storage", provider)

    def outage(self, provider: str, duration: float) -> None:
        """Make ``provider``'s store unavailable for ``duration`` seconds."""
        store = self._store_of(provider)
        store.set_fault("unavailable")
        self._record("outage", provider, f"{duration:.0f}s")
        self.sim.schedule(duration, self.heal_storage, provider)

    # -- background fault process --------------------------------------------

    def enable_random_crashes(self, mean_interval_seconds: float,
                              horizon: float) -> None:
        """Crash a random serving instance at Poisson intervals until ``horizon``."""
        rng = self.streams.get("faults.random")

        def fault_process():
            while self.sim.now < horizon:
                yield rng.expovariate(1.0 / mean_interval_seconds)
                victims = [inst for provider in self.providers
                           for inst in provider.instances(InstanceState.RUNNING)]
                if victims:
                    self.crash(rng.choice(victims), cause="random background fault")

        self.sim.spawn(fault_process(), name="fault-injector")

"""Fault injection for the failover and durability benchmarks.

The original fault kinds cover the signatures the paper's Load Balancer
detects:

* **crash** — the instance dies outright (state ``FAILED``); in-flight
  jobs fail, requests to it are refused.
* **degrade** — the instance keeps serving but its CPU pins at 100% and
  service slows drastically ("sustained high CPU utilisation").
* **blackhole** — the NIC stops transmitting while still receiving
  ("zero outbound network usage whilst receiving inbound traffic").

The durable-execution work adds infrastructure-level faults:

* **partition** — two addresses can no longer reach each other (requests
  between them time out); heals with :meth:`heal_partition`.
* **storage_fault** — a blob store goes unavailable or arms a one-shot
  torn write (see :class:`~repro.cloud.storage.BlobStore`).
* **outage** — a provider's blob store is unavailable for a fixed
  simulated duration, then heals itself.
* **heal** — undo a degrade/blackhole on an instance.

The geo-distributed estate adds a region-scoped compound fault:

* **region_outage** — everything in one registered region fails at
  once: its instances crash, its blob stores go unavailable, its
  providers refuse launches, and the network partitions its addresses
  from every other region's.  :meth:`heal_region` undoes the network,
  storage and control-plane parts (crashed instances stay dead — the
  Load Balancer boots replacements once launches work again).

Every injection is recorded as a structured :class:`InjectedFault` in
:attr:`FaultInjector.injected` and emitted to the event log, so traces
show exactly where chaos struck.

Faults can be injected deterministically (``crash_at``) or as a Poisson
background process (``enable_random_crashes``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cloud.instance import Instance, InstanceState
from repro.cloud.provider import CloudProvider
from repro.cloud.storage import BlobStore
from repro.obs.hub import obs_of
from repro.sim import RandomStreams, Simulator


@dataclass(frozen=True)
class InjectedFault:
    """One recorded fault injection.

    Indexable like the old ``(time, kind, target)`` tuples so existing
    call sites keep working, but with named fields and a cause.
    """

    time: float
    kind: str
    target: str
    cause: str = ""

    def __getitem__(self, index: int):
        return (self.time, self.kind, self.target, self.cause)[index]

    def __iter__(self):
        return iter((self.time, self.kind, self.target, self.cause))


@dataclass
class _RegionBinding:
    """The components the injector treats as one failure domain."""

    region: str
    providers: List[CloudProvider]
    stores: List[BlobStore]
    #: address pairs partitioned by the active outage (for healing)
    partitions: List[Tuple[str, str]] = field(default_factory=list)
    down: bool = False


class FaultInjector:
    """Injects instance, network and storage faults.

    ``providers`` are the clouds whose instances can be crashed;
    ``network`` (optional) enables partitions; ``stores`` (optional,
    name → :class:`BlobStore`) enables storage faults and outages.
    """

    def __init__(self, sim: Simulator, providers: List[CloudProvider],
                 streams: Optional[RandomStreams] = None,
                 network: Optional[object] = None,
                 stores: Optional[Dict[str, BlobStore]] = None):
        self.sim = sim
        self.providers = list(providers)
        self.streams = streams or RandomStreams()
        self.network = network
        self.stores = dict(stores or {})
        self.injected: List[InjectedFault] = []
        self._regions: Dict[str, _RegionBinding] = {}

    def _provider_of(self, instance: Instance) -> CloudProvider:
        for provider in self.providers:
            if provider.name == instance.provider_name:
                return provider
        raise ValueError(f"no provider {instance.provider_name!r} registered")

    def _record(self, kind: str, target: str, cause: str = "") -> None:
        fault = InjectedFault(time=self.sim.now, kind=kind, target=target,
                              cause=cause)
        self.injected.append(fault)
        obs_of(self.sim).events.emit("fault.injected", fault=kind,
                                     target=target, cause=cause)

    # -- deterministic instance faults ---------------------------------------

    def crash(self, instance: Instance, cause: str = "hardware fault") -> None:
        """Kill ``instance`` now."""
        if instance.is_gone:
            return
        was_serving = instance.is_serving
        provider = self._provider_of(instance)
        instance._mark_failed(cause)
        provider._on_instance_gone(instance, was_serving)
        provider.metrics.counter("faults.crash").increment()
        self._record("crash", instance.instance_id, cause)

    def degrade(self, instance: Instance, speed_multiplier: float = 0.1) -> None:
        """Pin ``instance`` at 100% CPU with drastically slowed service."""
        instance._degrade(speed_multiplier)
        self._provider_of(instance).metrics.counter("faults.degrade").increment()
        self._record("degrade", instance.instance_id,
                     f"speed x{speed_multiplier}")

    def blackhole(self, instance: Instance) -> None:
        """Stop ``instance`` transmitting while it still receives."""
        instance._blackhole()
        self._provider_of(instance).metrics.counter("faults.blackhole").increment()
        self._record("blackhole", instance.instance_id)

    def heal(self, instance: Instance) -> None:
        """Undo a degrade/blackhole fault (a crash is permanent)."""
        instance._heal()
        self._record("heal", instance.instance_id)

    def crash_at(self, delay: float, instance: Instance,
                 cause: str = "scheduled fault") -> None:
        """Schedule a crash ``delay`` seconds from now."""
        self.sim.schedule(delay, self.crash, instance, cause)

    def degrade_at(self, delay: float, instance: Instance,
                   speed_multiplier: float = 0.1) -> None:
        """Schedule a degradation ``delay`` seconds from now."""
        self.sim.schedule(delay, self.degrade, instance, speed_multiplier)

    def blackhole_at(self, delay: float, instance: Instance) -> None:
        """Schedule a NIC blackhole ``delay`` seconds from now."""
        self.sim.schedule(delay, self.blackhole, instance)

    def heal_at(self, delay: float, instance: Instance) -> None:
        """Schedule a heal ``delay`` seconds from now."""
        self.sim.schedule(delay, self.heal, instance)

    # -- network faults ------------------------------------------------------

    def partition(self, a: str, b: str) -> None:
        """Cut the network between addresses ``a`` and ``b``.

        Requests between the two sides are silently dropped (the caller
        times out), in both directions, until :meth:`heal_partition`.
        """
        if self.network is None:
            raise ValueError("FaultInjector has no network to partition")
        self.network.partition(a, b)
        self._record("partition", f"{a}|{b}")

    def heal_partition(self, a: str, b: str) -> None:
        """Restore connectivity between ``a`` and ``b``."""
        if self.network is None:
            raise ValueError("FaultInjector has no network to heal")
        self.network.heal_partition(a, b)
        self._record("heal_partition", f"{a}|{b}")

    # -- storage faults ------------------------------------------------------

    def _store_of(self, provider: str) -> BlobStore:
        try:
            return self.stores[provider]
        except KeyError:
            raise ValueError(f"no blob store registered for provider "
                             f"{provider!r}") from None

    def storage_fault(self, provider: str, kind: str) -> None:
        """Inject a storage fault: ``"unavailable"`` or ``"torn_write"``."""
        self._store_of(provider).set_fault(kind)
        self._record("storage_fault", provider, kind)

    def heal_storage(self, provider: str) -> None:
        """Clear an ``unavailable`` fault on ``provider``'s store."""
        self._store_of(provider).clear_fault()
        self._record("heal_storage", provider)

    def outage(self, provider: str, duration: float) -> None:
        """Make ``provider``'s store unavailable for ``duration`` seconds."""
        store = self._store_of(provider)
        store.set_fault("unavailable")
        self._record("outage", provider, f"{duration:.0f}s")
        self.sim.schedule(duration, self.heal_storage, provider)

    # -- region-scoped faults ------------------------------------------------

    def register_region(self, region: str, providers: List[CloudProvider],
                        stores: Optional[List[BlobStore]] = None) -> None:
        """Declare a failure domain for :meth:`region_outage`.

        Providers/stores are merged into the injector's flat registries
        too, so per-instance and per-store faults keep working on them.
        """
        if region in self._regions:
            raise ValueError(f"region {region!r} already registered")
        binding = _RegionBinding(region=region, providers=list(providers),
                                 stores=list(stores or []))
        self._regions[region] = binding
        for provider in binding.providers:
            if provider not in self.providers:
                self.providers.append(provider)
        for store in binding.stores:
            self.stores.setdefault(store.name, store)

    def _region(self, region: str) -> _RegionBinding:
        try:
            return self._regions[region]
        except KeyError:
            raise ValueError(f"region {region!r} not registered "
                             f"(register_region first)") from None

    def region_outage(self, region: str,
                      duration: Optional[float] = None) -> None:
        """Take a whole region down: partition + storage + instances.

        With ``duration`` the region heals itself after that many
        simulated seconds; otherwise it stays down until
        :meth:`heal_region`.
        """
        binding = self._region(region)
        if binding.down:
            return
        binding.down = True
        inside = {p.name for p in binding.providers}
        # 1. the region's addresses stop reaching every other region
        if self.network is not None:
            local = [inst.address for p in binding.providers
                     for inst in p.instances() if not inst.is_gone]
            remote = [inst.address for p in self.providers
                      if p.name not in inside
                      for inst in p.instances() if not inst.is_gone]
            for a in local:
                for b in remote:
                    self.network.partition(a, b)
                    binding.partitions.append((a, b))
        # 2. its object storage goes unavailable
        for store in binding.stores:
            store.set_fault("unavailable")
        # 3. its control planes refuse launches
        for provider in binding.providers:
            provider.set_launch_fault(f"region {region} outage")
        # 4. its instances die
        for provider in binding.providers:
            for instance in list(provider.instances()):
                if not instance.is_gone:
                    self.crash(instance, cause=f"region {region} outage")
        self._record("region_outage", region,
                     "" if duration is None else f"{duration:.0f}s")
        if duration is not None:
            self.sim.schedule(duration, self.heal_region, region)

    def heal_region(self, region: str) -> None:
        """Restore a region's network, storage and control planes."""
        binding = self._region(region)
        if not binding.down:
            return
        binding.down = False
        if self.network is not None:
            for a, b in binding.partitions:
                self.network.heal_partition(a, b)
        binding.partitions.clear()
        for store in binding.stores:
            store.clear_fault()
        for provider in binding.providers:
            provider.clear_launch_fault()
        self._record("heal_region", region)

    def region_outage_at(self, delay: float, region: str,
                         duration: Optional[float] = None) -> None:
        """Schedule a region outage ``delay`` seconds from now."""
        self.sim.schedule(delay, self.region_outage, region, duration)

    # -- background fault process --------------------------------------------

    def enable_random_crashes(self, mean_interval_seconds: float,
                              horizon: float) -> None:
        """Crash a random serving instance at Poisson intervals until ``horizon``."""
        rng = self.streams.get("faults.random")

        def fault_process():
            while self.sim.now < horizon:
                yield rng.expovariate(1.0 / mean_interval_seconds)
                victims = [inst for provider in self.providers
                           for inst in provider.instances(InstanceState.RUNNING)]
                if victims:
                    self.crash(rng.choice(victims), cause="random background fault")

        self.sim.spawn(fault_process(), name="fault-injector")

"""Fault injection for the failover benchmarks.

Three fault kinds cover the signatures the paper's Load Balancer detects:

* **crash** — the instance dies outright (state ``FAILED``); in-flight
  jobs fail, requests to it are refused.
* **degrade** — the instance keeps serving but its CPU pins at 100% and
  service slows drastically ("sustained high CPU utilisation").
* **blackhole** — the NIC stops transmitting while still receiving
  ("zero outbound network usage whilst receiving inbound traffic").

Faults can be injected deterministically (``crash_at``) or as a Poisson
background process (``enable_random_crashes``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cloud.instance import Instance, InstanceState
from repro.cloud.provider import CloudProvider
from repro.sim import RandomStreams, Simulator


class FaultInjector:
    """Injects instance faults into one or more providers."""

    def __init__(self, sim: Simulator, providers: List[CloudProvider],
                 streams: Optional[RandomStreams] = None):
        self.sim = sim
        self.providers = list(providers)
        self.streams = streams or RandomStreams()
        self.injected: List[Tuple[float, str, str]] = []  # (t, kind, instance)

    def _provider_of(self, instance: Instance) -> CloudProvider:
        for provider in self.providers:
            if provider.name == instance.provider_name:
                return provider
        raise ValueError(f"no provider {instance.provider_name!r} registered")

    # -- deterministic injection --------------------------------------------------

    def crash(self, instance: Instance, cause: str = "hardware fault") -> None:
        """Kill ``instance`` now."""
        if instance.is_gone:
            return
        was_serving = instance.is_serving
        provider = self._provider_of(instance)
        instance._mark_failed(cause)
        provider._on_instance_gone(instance, was_serving)
        provider.metrics.counter("faults.crash").increment()
        self.injected.append((self.sim.now, "crash", instance.instance_id))

    def degrade(self, instance: Instance, speed_multiplier: float = 0.1) -> None:
        """Pin ``instance`` at 100% CPU with drastically slowed service."""
        instance._degrade(speed_multiplier)
        self._provider_of(instance).metrics.counter("faults.degrade").increment()
        self.injected.append((self.sim.now, "degrade", instance.instance_id))

    def blackhole(self, instance: Instance) -> None:
        """Stop ``instance`` transmitting while it still receives."""
        instance._blackhole()
        self._provider_of(instance).metrics.counter("faults.blackhole").increment()
        self.injected.append((self.sim.now, "blackhole", instance.instance_id))

    def crash_at(self, delay: float, instance: Instance,
                 cause: str = "scheduled fault") -> None:
        """Schedule a crash ``delay`` seconds from now."""
        self.sim.schedule(delay, self.crash, instance, cause)

    def degrade_at(self, delay: float, instance: Instance,
                   speed_multiplier: float = 0.1) -> None:
        """Schedule a degradation ``delay`` seconds from now."""
        self.sim.schedule(delay, self.degrade, instance, speed_multiplier)

    def blackhole_at(self, delay: float, instance: Instance) -> None:
        """Schedule a NIC blackhole ``delay`` seconds from now."""
        self.sim.schedule(delay, self.blackhole, instance)

    # -- background fault process ----------------------------------------------------

    def enable_random_crashes(self, mean_interval_seconds: float,
                              horizon: float) -> None:
        """Crash a random serving instance at Poisson intervals until ``horizon``."""
        rng = self.streams.get("faults.random")

        def fault_process():
            while self.sim.now < horizon:
                yield rng.expovariate(1.0 / mean_interval_seconds)
                victims = [inst for provider in self.providers
                           for inst in provider.instances(InstanceState.RUNNING)]
                if victims:
                    self.crash(rng.choice(victims), cause="random background fault")

        self.sim.spawn(fault_process(), name="fault-injector")

"""Abstract IaaS provider.

Both simulated clouds share the same contract: asynchronous instance
launch (boot time depends on image size and provider characteristics),
termination, capacity accounting, and a per-provider metrics registry.
Concrete providers only define capacity rules and boot-time behaviour.
"""

from __future__ import annotations

import abc
import itertools
from typing import Dict, List, Optional

from repro.cloud.billing import BillingMeter
from repro.cloud.errors import CloudError, InstanceNotFound, InvalidStateError
from repro.cloud.flavors import Flavor
from repro.cloud.images import MachineImage
from repro.cloud.instance import Instance, InstanceState
from repro.sim import MetricsRegistry, RandomStreams, Simulator


class CloudProvider(abc.ABC):
    """Base class for simulated IaaS providers."""

    def __init__(self, sim: Simulator, name: str,
                 streams: Optional[RandomStreams] = None,
                 meter: Optional[BillingMeter] = None):
        self.sim = sim
        self.name = name
        self.streams = streams or RandomStreams()
        self.meter = meter
        self.metrics = MetricsRegistry(sim, namespace=f"cloud.{name}")
        self._instances: Dict[str, Instance] = {}
        self._ids = itertools.count()
        self._launch_fault: Optional[str] = None

    # -- contract -------------------------------------------------------------

    @abc.abstractmethod
    def _check_admission(self, flavor: Flavor, project: str) -> None:
        """Raise CapacityError/QuotaExceededError if the launch can't go."""

    @abc.abstractmethod
    def boot_time(self, image: MachineImage) -> float:
        """Seconds from launch request to RUNNING for ``image``."""

    # -- public API -------------------------------------------------------------

    def launch(self, image: MachineImage, flavor: Flavor,
               project: str = "evop") -> Instance:
        """Start an instance; returns it in PENDING state.

        Wait on ``instance.ready`` for the boot to finish.  Admission
        control runs synchronously so callers can catch capacity/quota
        errors and fall back to another provider (cloudbursting).
        """
        if self._launch_fault is not None:
            self.metrics.counter("launches.refused").increment()
            raise CloudError(f"{self.name}: {self._launch_fault}")
        self._check_admission(flavor, project)
        instance_id = f"{self._id_prefix()}-{next(self._ids):04d}"
        instance = Instance(self.sim, instance_id, self.name, image, flavor)
        self._instances[instance_id] = instance
        self.metrics.counter("launches").increment()
        self.metrics.gauge("instances.running").add(0)  # ensure gauge exists

        def boot_done() -> None:
            if instance.state != InstanceState.PENDING:
                return
            instance._mark_running()
            self.metrics.gauge("instances.running").add(1)
            if self.meter is not None:
                self.meter.instance_started(instance)

        self.sim.schedule(self.boot_time(image), boot_done)
        return instance

    def set_launch_fault(self, cause: str = "control plane unavailable") -> None:
        """Refuse every launch with :class:`CloudError` until cleared.

        The fault injector uses this to take a provider's control plane
        down (a region outage keeps existing instances' fate separate
        from the ability to boot replacements).
        """
        self._launch_fault = cause

    def clear_launch_fault(self) -> None:
        """Allow launches again."""
        self._launch_fault = None

    def terminate(self, instance_id: str) -> None:
        """Terminate an instance; running jobs fail, billing stops."""
        instance = self.get(instance_id)
        if instance.is_gone:
            raise InvalidStateError(
                f"instance {instance_id} already {instance.state.value}")
        was_serving = instance.is_serving
        instance._mark_terminated()
        self._on_instance_gone(instance, was_serving)

    def _on_instance_gone(self, instance: Instance, was_serving: bool) -> None:
        """Shared accounting when an instance fails or terminates."""
        if was_serving:
            self.metrics.gauge("instances.running").add(-1)
        if self.meter is not None:
            self.meter.instance_stopped(instance)
        self._release_capacity(instance)

    def _release_capacity(self, instance: Instance) -> None:
        """Hook for capacity-tracking providers; default no-op."""

    def get(self, instance_id: str) -> Instance:
        """Look up an instance by id."""
        try:
            return self._instances[instance_id]
        except KeyError:
            raise InstanceNotFound(instance_id) from None

    def instances(self, state: Optional[InstanceState] = None) -> List[Instance]:
        """All instances ever launched, optionally filtered by state."""
        result = list(self._instances.values())
        if state is not None:
            result = [inst for inst in result if inst.state == state]
        return result

    def serving_instances(self) -> List[Instance]:
        """Instances currently able to serve (RUNNING or DEGRADED)."""
        return [inst for inst in self._instances.values() if inst.is_serving]

    def active_count(self) -> int:
        """Instances not yet gone (PENDING, RUNNING or DEGRADED)."""
        return sum(1 for inst in self._instances.values() if not inst.is_gone)

    def _id_prefix(self) -> str:
        return self.name[:2]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name} active={self.active_count()}>"

"""Bounded structured event log for infrastructure happenings.

Traces answer "where did this request's time go"; the event log answers
"what was the fabric doing meanwhile" — instance lifecycle transitions,
Load Balancer decisions, fault detections, cloudburst transitions.
Events are flat dicts with a simulated timestamp and a dotted ``kind``,
kept in a bounded deque so soak runs cannot grow without bound.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.sim.kernel import Simulator


class Event:
    """One structured happening at a simulated instant."""

    __slots__ = ("t", "kind", "fields")

    def __init__(self, t: float, kind: str, fields: Dict[str, Any]):
        self.t = t
        self.kind = kind
        self.fields = fields

    def to_dict(self) -> Dict[str, Any]:
        """Flat-dict form (the JSONL exporter's row)."""
        out = {"t": self.t, "kind": self.kind}
        out.update(self.fields)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Event {self.kind} t={self.t:.3f} {self.fields}>"


class EventLog:
    """Bounded, queryable log of :class:`Event` records."""

    def __init__(self, sim: Simulator, max_events: int = 20_000):
        self.sim = sim
        self._events: Deque[Event] = deque(maxlen=max_events)
        self.dropped = 0
        self.total_emitted = 0
        self._drop_marker: Optional[Event] = None

    def emit(self, kind: str, **fields: Any) -> Event:
        """Record an event of ``kind`` at the current simulated time.

        The first time the bounded deque overflows, a one-shot
        ``events.dropped`` warning event is pinned at the truncation
        horizon — timestamped with the first discarded event, like a
        journal's "log begins here" marker — so truncation is never
        invisible in exports or queries.  The marker rides outside the
        ring: it neither displaces a retained event nor counts toward
        ``dropped``/``total_emitted``.
        """
        event = Event(self.sim.now, kind, fields)
        if len(self._events) == self._events.maxlen:
            if self._drop_marker is None:
                oldest = self._events[0]
                self._drop_marker = Event(oldest.t, "events.dropped", {
                    "max_events": self._events.maxlen,
                    "dropped": 0,
                    "detail": "event log at capacity; oldest events are "
                              "being discarded"})
            self.dropped += 1
        self._events.append(event)
        self.total_emitted += 1
        return event

    @property
    def drop_marker(self) -> Optional[Event]:
        """The pinned truncation marker, if the log ever overflowed."""
        if self._drop_marker is not None:
            self._drop_marker.fields["dropped"] = self.dropped
        return self._drop_marker

    def events(self, kind: Optional[str] = None,
               since: Optional[float] = None) -> List[Event]:
        """Events, optionally filtered by kind prefix and start time.

        ``kind`` matches exactly or as a dotted prefix: ``"instance"``
        matches ``instance.running`` and ``instance.failed``.  A pinned
        ``events.dropped`` marker (see :meth:`emit`) leads the result
        when it passes the same filters.
        """
        out = list(self._events)
        marker = self.drop_marker
        if marker is not None:
            out.insert(0, marker)
        if kind is not None:
            prefix = kind + "."
            out = [e for e in out
                   if e.kind == kind or e.kind.startswith(prefix)]
        if since is not None:
            out = [e for e in out if e.t >= since]
        return out

    def counts(self) -> Dict[str, int]:
        """How many retained events of each kind."""
        out: Dict[str, int] = {}
        for event in self._events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self._events)

"""Exporters: percentile summaries, JSON Lines, Chrome trace_event.

Three consumers, three formats:

* the benchmark harness wants a flat per-span-name table —
  :func:`summarize_spans`;
* log pipelines want one JSON object per line — :func:`to_jsonl`;
* humans want a flame view — :func:`to_chrome_trace` emits the Chrome
  ``trace_event`` JSON object format (``ph: "X"`` complete events with
  microsecond timestamps), loadable in ``chrome://tracing`` and
  `Perfetto <https://ui.perfetto.dev>`_ unchanged.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.events import Event
from repro.obs.tracer import Span


def _percentile(ordered: List[float], q: float) -> float:
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def summarize_spans(spans: Iterable[Span]) -> Dict[str, Dict[str, float]]:
    """Per-span-name duration statistics over *finished* spans.

    Returns ``{name: {count, errors, error_rate, p50, p95, p99, mean,
    total}}`` with durations in simulated seconds, names sorted
    alphabetically.  ``error_rate`` is errors/count — what separates
    "fast because it is healthy" from "fast because it failed fast".
    """
    by_name: Dict[str, List[Span]] = {}
    for span in spans:
        if span.finished:
            by_name.setdefault(span.name, []).append(span)
    out: Dict[str, Dict[str, float]] = {}
    for name in sorted(by_name):
        durations = sorted(s.duration for s in by_name[name])
        total = sum(durations)
        errors = float(sum(1 for s in by_name[name]
                           if s.status == "error"))
        out[name] = {
            "count": float(len(durations)),
            "errors": errors,
            "error_rate": errors / len(durations),
            "mean": total / len(durations),
            "p50": _percentile(durations, 50),
            "p95": _percentile(durations, 95),
            "p99": _percentile(durations, 99),
            "total": total,
        }
    return out


def _span_dict(span: Span) -> Dict[str, Any]:
    return {
        "name": span.name,
        "kind": span.kind,
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "start": span.start,
        "end": span.end,
        "status": span.status,
        "error": span.error,
        "attributes": span.attributes,
        "annotations": span.annotations,
    }


def to_jsonl(spans: Iterable[Span]) -> str:
    """Spans as JSON Lines (one object per span, start-time order)."""
    ordered = sorted(spans, key=lambda s: (s.start, s.span_id))
    return "\n".join(json.dumps(_span_dict(s), default=repr)
                     for s in ordered)


def to_chrome_trace(spans: Iterable[Span],
                    events: Iterable[Event] = ()) -> Dict[str, Any]:
    """Spans (and optional events) in Chrome ``trace_event`` format.

    Each trace becomes one "thread" (tid) inside a single process, so
    nested spans of the same trace render as a flame stack and parallel
    traces as parallel tracks.  Timestamps convert from simulated
    seconds to the format's microseconds.
    """
    trace_tids: Dict[str, int] = {}
    trace_events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
        "args": {"name": "evop-simulation"},
    }]
    for span in sorted(spans, key=lambda s: (s.start, s.span_id)):
        tid = trace_tids.setdefault(span.trace_id, len(trace_tids) + 1)
        end = span.end if span.end is not None else span.start
        args: Dict[str, Any] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "status": span.status,
        }
        if span.error:
            args["error"] = span.error
        args.update({k: repr(v) if not isinstance(v, (str, int, float, bool))
                     else v for k, v in span.attributes.items()})
        trace_events.append({
            "name": span.name,
            "cat": span.kind,
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": (end - span.start) * 1e6,
            "pid": 1,
            "tid": tid,
            "args": args,
        })
        for note in span.annotations:
            trace_events.append({
                "name": note["message"],
                "cat": "annotation",
                "ph": "i",
                "s": "t",
                "ts": note["t"] * 1e6,
                "pid": 1,
                "tid": tid,
                "args": {k: v for k, v in note.items()
                         if k not in ("t", "message")},
            })
    for event in events:
        trace_events.append({
            "name": event.kind,
            "cat": "infrastructure",
            "ph": "i",
            "s": "g",
            "ts": event.t * 1e6,
            "pid": 1,
            "tid": 0,
            "args": {k: repr(v) if not isinstance(v, (str, int, float, bool))
                     else v for k, v in event.fields.items()},
        })
    for tid_name, tid in trace_tids.items():
        trace_events.append({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": f"trace {tid_name[-8:]}"},
        })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, spans: Iterable[Span],
                       events: Iterable[Event] = ()) -> str:
    """Write :func:`to_chrome_trace` output to ``path``; returns the path."""
    document = to_chrome_trace(spans, events)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=1)
    return path


def to_collapsed_stacks(spans: Iterable[Span]) -> List[str]:
    """Spans as collapsed flamegraph stacks (``a;b;c <self_us>``).

    One line per unique root-to-span path, semicolon-joined names, value
    the *self* time in integer microseconds — span duration minus the
    time covered by its children (clamped at zero when children overlap
    or outlast the parent).  The output feeds ``flamegraph.pl``,
    speedscope and friends unchanged; identical paths from different
    traces aggregate, which is the point: the profile shows where the
    fleet's simulated time goes, not one request's.
    """
    totals: Dict[str, int] = {}

    def walk(node: Dict[str, Any], prefix: str) -> None:
        span = node["span"]
        stack = f"{prefix};{span.name}" if prefix else span.name
        if span.finished:
            child_time = sum(c["span"].duration for c in node["children"]
                             if c["span"].finished)
            self_us = int(round(max(0.0, span.duration - child_time) * 1e6))
            totals[stack] = totals.get(stack, 0) + self_us
        for child in node["children"]:
            walk(child, stack)

    for root in span_tree(spans):
        walk(root, "")
    return [f"{stack} {value}" for stack, value in sorted(totals.items())]


def write_collapsed_stacks(path: str, spans: Iterable[Span]) -> str:
    """Write :func:`to_collapsed_stacks` lines to ``path``; returns it."""
    lines = to_collapsed_stacks(spans)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + ("\n" if lines else ""))
    return path


def span_tree(spans: Iterable[Span],
              trace_id: Optional[str] = None) -> List[Dict[str, Any]]:
    """Nest spans into parent→children trees.

    Returns root nodes ``{"span": Span, "children": [...]}`` (children
    in start order).  With ``trace_id`` set, only that trace is built;
    orphans (parent outside the collected window) become roots.
    """
    chosen = [s for s in spans
              if trace_id is None or s.trace_id == trace_id]
    nodes = {s.span_id: {"span": s, "children": []} for s in chosen}
    roots: List[Dict[str, Any]] = []
    for span in sorted(chosen, key=lambda s: (s.start, s.span_id)):
        node = nodes[span.span_id]
        parent = nodes.get(span.parent_id) if span.parent_id else None
        if parent is None:
            roots.append(node)
        else:
            parent["children"].append(node)
    return roots


def tree_depth(roots: List[Dict[str, Any]]) -> int:
    """Maximum nesting depth of a :func:`span_tree` forest."""
    if not roots:
        return 0
    return 1 + max(tree_depth(node["children"]) for node in roots)


def render_tree(roots: List[Dict[str, Any]], indent: int = 0) -> List[str]:
    """ASCII rendering of a span forest, one line per span."""
    lines: List[str] = []
    for node in roots:
        span = node["span"]
        mark = " !" if span.status == "error" else ""
        extent = f"+{span.duration:.3f}s" if span.finished else "open"
        lines.append(f"{'  ' * indent}{span.name}  "
                     f"[{span.start:.3f}s {extent}]{mark}")
        lines.extend(render_tree(node["children"], indent + 1))
    return lines

"""Declarative SLOs and multi-window multi-burn-rate alerting.

An :class:`SLO` states a target over telemetry series (see
:mod:`repro.obs.telemetry`): availability ("≥ 99.9 % of attempts
succeed"), latency ("≥ 95 % of requests under 5 s" — evaluated exactly
from cumulative ``.bucket`` series, never from approximated
percentiles), or freshness ("data never staler than 60 s").

Each SLO is watched by an :class:`AlertRule` using the SRE-book
multi-window multi-burn-rate recipe: an alert fires only when *both* a
long and a short window burn error budget faster than a factor — the
long window rejects blips, the short window makes the alert resolve
promptly once the incident ends.  Transitions emit
``obs.alert.firing`` / ``obs.alert.resolved`` events and fan out a
payload over the deployment's push channel, which is the paper's
push-vs-poll argument applied to the operators themselves.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.obs.hub import obs_of
from repro.obs.telemetry import SeriesStore, format_bound
from repro.sim.kernel import Simulator

#: Default (long_window, short_window, burn_factor) pairs, scaled for
#: simulated deployments whose whole life is an hour or two: a fast page
#: (5 min / 1 min at 14.4× burn) and a slow one (30 min / 5 min at 6×).
DEFAULT_BURN_WINDOWS: Tuple[Tuple[float, float, float], ...] = (
    (300.0, 60.0, 14.4),
    (1800.0, 300.0, 6.0),
)


class SLO:
    """One service-level objective over series in a :class:`SeriesStore`.

    Use the :meth:`availability`, :meth:`latency` and :meth:`freshness`
    factories; ``sli(store, now, window)`` returns the achieved level in
    ``[0, 1]`` for the trailing window, or ``None`` when the store holds
    no evidence yet (no data means no alert, not a breach).
    """

    AVAILABILITY = "availability"
    LATENCY = "latency"
    FRESHNESS = "freshness"

    def __init__(self, name: str, kind: str, target: float,
                 params: Dict[str, Any], labels: Dict[str, str]):
        if not 0.0 < target < 1.0:
            raise ValueError(f"SLO {name!r} target must be in (0, 1)")
        self.name = name
        self.kind = kind
        self.target = target
        self.params = params
        self.labels = {k: str(v) for k, v in labels.items()}
        # (candidate-count, owning ``le``) memo — bucket bounds are
        # fixed per histogram, so the owning bound only changes when new
        # bucket series appear
        self._bound_memo: Optional[Tuple[int, str]] = None

    # -- factories ----------------------------------------------------------

    @classmethod
    def availability(cls, name: str, *, total: str, errors: str,
                     target: float = 0.999, **labels: str) -> "SLO":
        """Fraction of ``total`` counter events not matched by ``errors``."""
        return cls(name, cls.AVAILABILITY, target,
                   {"total": total, "errors": errors}, labels)

    @classmethod
    def latency(cls, name: str, *, metric: str, threshold: float,
                target: float = 0.95, **labels: str) -> "SLO":
        """Fraction of ``metric`` observations at or under ``threshold``.

        ``metric`` names a scraped histogram; the SLI reads its
        cumulative ``<metric>.bucket`` series at the smallest bound ≥
        ``threshold`` (thresholds should sit on a bucket bound for an
        exact answer — this is the Prometheus ``le`` discipline).
        """
        return cls(name, cls.LATENCY, target,
                   {"metric": metric, "threshold": threshold}, labels)

    @classmethod
    def freshness(cls, name: str, *, series: str, max_age: float,
                  target: float = 0.99, **labels: str) -> "SLO":
        """Fraction of the window during which ``series`` was fresh.

        A series is *stale* whenever more than ``max_age`` seconds pass
        without a new sample; the SLI is the covered fraction of the
        trailing window.
        """
        return cls(name, cls.FRESHNESS, target,
                   {"series": series, "max_age": max_age}, labels)

    # -- evaluation ---------------------------------------------------------

    def sli(self, store: SeriesStore, now: float,
            window: float) -> Optional[float]:
        """Achieved level over ``[now - window, now]``, or ``None``."""
        start = now - window
        if self.kind == self.AVAILABILITY:
            return self._availability_sli(store, start, now)
        if self.kind == self.LATENCY:
            return self._latency_sli(store, start, now)
        if self.kind == self.FRESHNESS:
            return self._freshness_sli(store, start, now)
        raise ValueError(f"unknown SLO kind {self.kind!r}")

    def burn_rate(self, store: SeriesStore, now: float,
                  window: float) -> Optional[float]:
        """Error-budget burn multiple over the window (1.0 = on budget)."""
        level = self.sli(store, now, window)
        if level is None:
            return None
        budget = 1.0 - self.target
        return (1.0 - level) / budget

    def _sum_deltas(self, store: SeriesStore, name: str, start: float,
                    end: float) -> Optional[float]:
        deltas = [s.delta(start, end) for s in store.query(name,
                                                           **self.labels)]
        deltas = [d for d in deltas if d is not None]
        if not deltas:
            return None
        return sum(deltas)

    def _availability_sli(self, store: SeriesStore, start: float,
                          end: float) -> Optional[float]:
        total = self._sum_deltas(store, self.params["total"], start, end)
        errors = self._sum_deltas(store, self.params["errors"], start, end)
        if total is None or total <= 0:
            return None
        if errors is None:
            errors = 0.0
        return max(0.0, 1.0 - errors / total)

    def _latency_sli(self, store: SeriesStore, start: float,
                     end: float) -> Optional[float]:
        bucket_name = f"{self.params['metric']}.bucket"
        threshold = self.params["threshold"]
        candidates = store.query(bucket_name, **self.labels)
        if self._bound_memo is None or \
                self._bound_memo[0] != len(candidates):
            self._bound_memo = (len(candidates),
                                self._owning_bound(candidates, threshold))
        owning = self._bound_memo[1]
        good = 0.0
        total = 0.0
        saw_total = False
        # group by non-le labels so multi-source metrics aggregate cleanly
        for series in candidates:
            le = series.labels.get("le")
            if le is None:
                continue
            bound = math.inf if le == "+Inf" else float(le)
            delta = series.delta(start, end)
            if delta is None:
                continue
            if math.isinf(bound):
                total += delta
                saw_total = True
            elif bound >= threshold and format_bound(bound) == owning:
                good += delta
        if not saw_total or total <= 0:
            return None
        return min(1.0, good / total)

    @staticmethod
    def _owning_bound(candidates: List[Any], threshold: float) -> str:
        """The ``le`` value of the smallest finite bound ≥ ``threshold``."""
        bounds = sorted({float(s.labels["le"]) for s in candidates
                         if s.labels.get("le") not in (None, "+Inf")})
        for bound in bounds:
            if bound >= threshold:
                return format_bound(bound)
        return "+Inf"

    def _freshness_sli(self, store: SeriesStore, start: float,
                       end: float) -> Optional[float]:
        max_age = self.params["max_age"]
        matches = store.query(self.params["series"], **self.labels)
        if not matches:
            return None
        fractions = []
        for series in matches:
            times = series.times(start, end)
            prior = series.prior(start)
            if prior is not None:
                times.insert(0, prior[0])
            if not times:
                continue
            stale = 0.0
            cursor = max(start, times[0])
            for t in times:
                if t > cursor:
                    gap = t - cursor
                    stale += max(0.0, gap - max_age)
                cursor = max(cursor, t)
            if end > cursor:
                stale += max(0.0, (end - cursor) - max_age)
            span = end - max(start, times[0])
            if span <= 0:
                fractions.append(1.0)
            else:
                fractions.append(max(0.0, 1.0 - stale / span))
        if not fractions:
            return None
        return min(fractions)

    def describe(self) -> Dict[str, Any]:
        """Plain-dict form for API responses."""
        return {"name": self.name, "kind": self.kind, "target": self.target,
                "params": dict(self.params), "labels": dict(self.labels)}


class AlertRule:
    """Multi-window multi-burn-rate watcher for one :class:`SLO`.

    ``windows`` is an iterable of ``(long, short, factor)`` triples; the
    rule fires when any triple has *both* windows burning at ≥ its
    factor, and resolves when none does.  State transitions are the only
    outputs — evaluation is idempotent per tick.
    """

    def __init__(self, slo: SLO,
                 windows: Optional[Iterable[Tuple[float, float, float]]]
                 = None):
        self.slo = slo
        self.windows = tuple(windows) if windows else DEFAULT_BURN_WINDOWS
        self.firing = False
        self.fired_at: Optional[float] = None
        self.resolved_at: Optional[float] = None
        self.transitions = 0

    def _burn_memo(self, store: SeriesStore, now: float):
        """One-tick burn-rate cache — window sizes repeat across pairs
        (the default fast pair's long window is the slow pair's short
        one), so each distinct window computes its SLI once."""
        memo: Dict[float, Optional[float]] = {}

        def burn(window: float) -> Optional[float]:
            if window not in memo:
                memo[window] = self.slo.burn_rate(store, now, window)
            return memo[window]

        return burn

    def evaluate(self, store: SeriesStore,
                 now: float) -> Optional[Dict[str, Any]]:
        """Re-check burn rates; returns a transition payload or ``None``."""
        breached = None
        burn = self._burn_memo(store, now)
        for long_w, short_w, factor in self.windows:
            long_burn = burn(long_w)
            short_burn = burn(short_w)
            if long_burn is None or short_burn is None:
                continue
            if long_burn >= factor and short_burn >= factor:
                breached = {"window": long_w, "short_window": short_w,
                            "factor": factor,
                            "burn_rate": round(long_burn, 3),
                            "short_burn_rate": round(short_burn, 3)}
                break
        if breached and not self.firing:
            self.firing = True
            self.fired_at = now
            self.transitions += 1
            return {"state": "firing", "slo": self.slo.name, "t": now,
                    **breached}
        if not breached and self.firing:
            self.firing = False
            self.resolved_at = now
            self.transitions += 1
            return {"state": "resolved", "slo": self.slo.name, "t": now}
        return None

    def status(self, store: SeriesStore, now: float) -> Dict[str, Any]:
        """Current state for dashboards: SLI, burns per window, firing."""
        burns = {}
        burn = self._burn_memo(store, now)
        for long_w, short_w, factor in self.windows:
            burns[f"{long_w:g}s"] = burn(long_w)
            burns[f"{short_w:g}s"] = burn(short_w)
        sli = self.slo.sli(store, now, self.windows[0][0])
        return {
            "slo": self.slo.name,
            "kind": self.slo.kind,
            "target": self.slo.target,
            "sli": sli,
            "burn_rates": {k: (round(v, 3) if v is not None else None)
                           for k, v in burns.items()},
            "firing": self.firing,
            "fired_at": self.fired_at,
            "resolved_at": self.resolved_at,
        }


class AlertManager:
    """Evaluates every rule each scrape tick and routes transitions.

    Firing/resolving emits ``obs.alert.firing`` / ``obs.alert.resolved``
    on the shared event log and invokes ``notifier`` (the deployment
    wires this to :meth:`PushGateway.broadcast`, so pages ride the same
    channel fabric as user notifications).  The full transition history
    stays queryable for the bench's mean-time-to-detect measurement.
    """

    def __init__(self, sim: Simulator, store: SeriesStore,
                 notifier: Optional[Callable[[Dict[str, Any]], None]] = None):
        self.sim = sim
        self.store = store
        self.notifier = notifier
        self.rules: List[AlertRule] = []
        self.history: List[Dict[str, Any]] = []

    def add(self, slo: SLO,
            windows: Optional[Iterable[Tuple[float, float, float]]]
            = None) -> AlertRule:
        """Watch ``slo``; returns its rule for inspection."""
        rule = AlertRule(slo, windows=windows)
        self.rules.append(rule)
        return rule

    def evaluate(self, now: Optional[float] = None) -> List[Dict[str, Any]]:
        """Evaluate every rule; returns the transitions that happened."""
        t = now if now is not None else self.sim.now
        events = obs_of(self.sim).events
        transitions = []
        for rule in self.rules:
            payload = rule.evaluate(self.store, t)
            if payload is None:
                continue
            transitions.append(payload)
            self.history.append(payload)
            events.emit(f"obs.alert.{payload['state']}", **{
                k: v for k, v in payload.items() if k != "state"})
            if self.notifier is not None:
                self.notifier(dict(payload))
        return transitions

    def firing(self) -> List[Dict[str, Any]]:
        """Currently firing alerts (name + since)."""
        return [{"alert": r.slo.name, "since": r.fired_at}
                for r in self.rules if r.firing]

    def status(self, now: float) -> List[Dict[str, Any]]:
        """Per-rule dashboard status."""
        return [rule.status(self.store, now) for rule in self.rules]

    def health_score(self, now: float) -> float:
        """0–100: −40 per firing alert, −10 per SLO below target."""
        score = 100.0
        for rule in self.rules:
            if rule.firing:
                score -= 40.0
                continue
            sli = rule.slo.sli(self.store, now, rule.windows[0][0])
            if sli is not None and sli < rule.slo.target:
                score -= 10.0
        return max(0.0, score)

"""Simulation-native observability for the EVOp fabric.

One user journey crosses every layer of the reproduction — portal widget
→ Resource Broker → Load Balancer → REST replica → cloud instance →
workflow stage — and this package makes that path visible:

* :class:`~repro.obs.tracer.Tracer` produces :class:`~repro.obs.tracer.Span`
  trees on the *simulated* clock, with W3C-style context propagation
  threaded through HTTP headers on the simulated wire;
* :class:`~repro.obs.events.EventLog` is a bounded structured log of
  infrastructure happenings (instance lifecycle, LB decisions, faults,
  cloudburst transitions);
* :mod:`~repro.obs.export` renders collected spans as flat percentile
  summaries, JSON Lines, or Chrome ``trace_event`` JSON that opens
  directly in ``chrome://tracing`` / Perfetto.

Subsystems reach the shared :class:`~repro.obs.hub.Observability` hub via
:func:`~repro.obs.hub.obs_of`, which lazily attaches one hub to the
:class:`~repro.sim.Simulator` — so every subsystem sharing a simulator
shares a trace store, and an untouched simulator pays nothing.
"""

from repro.obs.context import (
    SpanContext,
    TRACEPARENT_HEADER,
    extract_context,
    inject_context,
)
from repro.obs.events import Event, EventLog
from repro.obs.export import (
    render_tree,
    span_tree,
    summarize_spans,
    to_chrome_trace,
    to_jsonl,
    tree_depth,
    write_chrome_trace,
)
from repro.obs.hub import Observability, obs_of
from repro.obs.tracer import Span, Tracer

__all__ = [
    "Event",
    "EventLog",
    "Observability",
    "Span",
    "SpanContext",
    "TRACEPARENT_HEADER",
    "Tracer",
    "extract_context",
    "inject_context",
    "obs_of",
    "render_tree",
    "span_tree",
    "summarize_spans",
    "to_chrome_trace",
    "to_jsonl",
    "tree_depth",
    "write_chrome_trace",
]

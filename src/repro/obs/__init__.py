"""Simulation-native observability for the EVOp fabric.

One user journey crosses every layer of the reproduction — portal widget
→ Resource Broker → Load Balancer → REST replica → cloud instance →
workflow stage — and this package makes that path visible:

* :class:`~repro.obs.tracer.Tracer` produces :class:`~repro.obs.tracer.Span`
  trees on the *simulated* clock, with W3C-style context propagation
  threaded through HTTP headers on the simulated wire;
* :class:`~repro.obs.events.EventLog` is a bounded structured log of
  infrastructure happenings (instance lifecycle, LB decisions, faults,
  cloudburst transitions);
* :mod:`~repro.obs.export` renders collected spans as flat percentile
  summaries, JSON Lines, Chrome ``trace_event`` JSON that opens
  directly in ``chrome://tracing`` / Perfetto, or collapsed flamegraph
  stacks (self-time per root-to-span path);
* :mod:`~repro.obs.telemetry` samples every metrics registry into a
  bounded labeled :class:`~repro.obs.telemetry.SeriesStore` on the
  simulated clock, with RED/USE views and trace exemplars;
* :mod:`~repro.obs.slo` evaluates declarative
  :class:`~repro.obs.slo.SLO` objects with multi-window multi-burn-rate
  alert rules that page over the deployment's push channels.

Subsystems reach the shared :class:`~repro.obs.hub.Observability` hub via
:func:`~repro.obs.hub.obs_of`, which lazily attaches one hub to the
:class:`~repro.sim.Simulator` — so every subsystem sharing a simulator
shares a trace store, and an untouched simulator pays nothing.
"""

from repro.obs.context import (
    SpanContext,
    TRACEPARENT_HEADER,
    extract_context,
    inject_context,
)
from repro.obs.events import Event, EventLog
from repro.obs.export import (
    render_tree,
    span_tree,
    summarize_spans,
    to_chrome_trace,
    to_collapsed_stacks,
    to_jsonl,
    tree_depth,
    write_chrome_trace,
    write_collapsed_stacks,
)
from repro.obs.hub import Observability, obs_of
from repro.obs.slo import (
    DEFAULT_BURN_WINDOWS,
    AlertManager,
    AlertRule,
    SLO,
)
from repro.obs.telemetry import (
    MetricsScraper,
    Series,
    SeriesStore,
    TelemetryPlane,
    red_view,
    use_view,
)
from repro.obs.tracer import Span, Tracer

__all__ = [
    "AlertManager",
    "AlertRule",
    "DEFAULT_BURN_WINDOWS",
    "Event",
    "EventLog",
    "MetricsScraper",
    "Observability",
    "SLO",
    "Series",
    "SeriesStore",
    "Span",
    "SpanContext",
    "TRACEPARENT_HEADER",
    "TelemetryPlane",
    "Tracer",
    "extract_context",
    "inject_context",
    "obs_of",
    "red_view",
    "render_tree",
    "span_tree",
    "summarize_spans",
    "to_chrome_trace",
    "to_collapsed_stacks",
    "to_jsonl",
    "tree_depth",
    "use_view",
    "write_chrome_trace",
    "write_collapsed_stacks",
]

"""``python -m repro top`` — a live text dashboard over the telemetry plane.

The simulated-world equivalent of ``top``/``k9s``: boot a deployment
with telemetry on, drive portal load (and one mid-run fault, so the
screen is worth watching), and render a frame every simulated refresh
interval — health score, SLO table, RED view of the request fabric,
scheduling-plane saturation and the estate per location.  Frames are
plain text; on a real terminal they repaint in place via ANSI, piped
output degrades to sequential frames.
"""

from __future__ import annotations

import sys
from typing import Any, List

from repro.obs.hub import obs_of
from repro.obs.telemetry import red_view

#: ANSI: cursor home + clear-to-end; how the frame repaints in place
_REPAINT = "\x1b[H\x1b[J"


def _fmt(value: Any, pattern: str = "{:.2f}", missing: str = "—") -> str:
    if value is None:
        return missing
    return pattern.format(value)


def render_frame(evop) -> str:
    """One dashboard frame over ``evop``'s telemetry plane."""
    plane = evop.telemetry
    if plane is None:
        return "telemetry disabled — call enable_telemetry() first"
    now = evop.sim.now
    vitals = plane.snapshot()
    lines: List[str] = []
    alerts = vitals["alerts_firing"]
    lines.append(
        f"evop top  t={now:7.0f}s  health={vitals['health_score']:.0f}/100  "
        f"series={vitals['series']}  scrapes={vitals['scrapes']}  "
        f"{'ALERTS: ' + ', '.join(alerts) if alerts else 'no alerts'}")
    lines.append("")

    lines.append("SLOs")
    for status in plane.slo_status():
        burns = status["burn_rates"]
        burn_text = "  ".join(f"{w}:{_fmt(b, '{:.1f}x')}"
                              for w, b in burns.items())
        lines.append(
            f"  {status['slo']:28s} sli={_fmt(status['sli'], '{:.4f}')} "
            f"target={status['target']:.3f}  burn {burn_text}"
            f"{'  FIRING' if status['firing'] else ''}")
    lines.append("")

    red = red_view(plane.store, now, window=60.0,
                   requests="requests", errors="attempt.failures",
                   duration="request.duration", service="resilience")
    lines.append("request fabric (RED, 60s window)")
    lines.append(
        f"  rate={_fmt(red['rate'], '{:.2f}/s')}  "
        f"attempt-failures={_fmt(red['error_rate'], '{:.2f}/s')}  "
        f"p95={_fmt(red['duration_p95'], '{:.2f}s')}")
    lines.append("")

    lines.append("scheduling plane (queue depth by shard/class)")
    for series in sorted(plane.store.query("sched.queue.depth"),
                         key=lambda s: (s.labels.get("shard", ""),
                                        s.labels.get("priority", ""))):
        latest = series.latest()
        depth = latest[1] if latest else 0.0
        bar = "#" * min(40, int(depth))
        lines.append(f"  shard {series.labels.get('shard', '?')} "
                     f"{series.labels.get('priority', '?'):12s} "
                     f"{depth:5.0f} {bar}")
    lines.append("")

    estate = evop.instances_by_location()
    lines.append("estate:  " + "  ".join(f"{loc}={n}"
                                         for loc, n in estate.items())
                 + f"  cloudbursting={'YES' if evop.sched.cloudbursting else 'no'}"
                 + f"  cost=${evop.cost_report()['total']:.3f}")
    hub = obs_of(evop.sim).snapshot()
    lines.append(f"retention: spans={hub['spans_retained']} "
                 f"(dropped {hub['spans_dropped']})  "
                 f"events={hub['events_retained']} "
                 f"(dropped {hub['events_dropped']})")
    return "\n".join(lines)


def run_top(horizon: float = 900.0, refresh: float = 30.0,
            stream=None) -> None:
    """Boot a deployment, drive load, and repaint the dashboard.

    ``horizon`` simulated seconds total, one frame every ``refresh``.
    A replica crash is injected a third of the way in so the burn-rate
    alerting has something to show.
    """
    from repro import Evop, EvopConfig

    out = stream if stream is not None else sys.stdout
    repaint = _REPAINT if (stream is None and sys.stdout.isatty()) else ""

    print("booting deployment with telemetry (this takes a moment)...",
          file=out)
    evop = Evop(EvopConfig(truth_days=6, storm_day=3,
                           telemetry_interval=5.0)).bootstrap()
    evop.run_for(300.0)
    widget = evop.left().open_modelling_widget("top-user")
    evop.run_for(10.0)
    widget.load()
    evop.run_for(10.0)

    crash_at = evop.sim.now + horizon / 3.0
    crashed = False
    scenarios = list(widget.scenario_buttons)
    end = evop.sim.now + horizon
    frame = 0
    while evop.sim.now < end:
        # keep demand flowing so the RED view has a pulse
        widget.select_scenario(scenarios[frame % len(scenarios)])
        widget.run(duration_hours=48)
        if not crashed and evop.sim.now >= crash_at:
            service = evop.service_name(evop.config.catchments[0])
            victims = [s for s in evop.sched.services()
                       if s.name == service and s.replicas]
            if victims:
                evop.injector.crash(victims[0].replicas[0],
                                    cause="top-demo")
                crashed = True
        evop.run_for(refresh)
        frame += 1
        print(f"{repaint}{render_frame(evop)}", file=out)
    print(f"\n{horizon:.0f}s horizon complete; final state above.",
          file=out)

"""The telemetry plane: labeled time series sampled on the simulated clock.

PRs 1–5 left the fabric covered in counters, gauges and histograms —
cache hits, breaker trips, shard queue depths, ledger capacity — but all
of them were end-of-run snapshots: nothing sampled them *over time*,
correlated them with traces, or defined "healthy".  This module closes
that gap:

* :class:`Series` / :class:`SeriesStore` — a bounded store of labeled
  time series (dimensions: ``service``, ``location``, ``shard``,
  ``priority`` — any string label works), queryable by name, label
  subset and time range, with counter-delta and windowed helpers;
* :class:`MetricsScraper` — a periodic process on the simulated clock
  that samples every registered :class:`~repro.sim.metrics.MetricsRegistry`
  (and ad-hoc probes) into the store, including cumulative
  ``<name>.bucket`` series per histogram bucket (the Prometheus ``le``
  convention) so SLOs can window latency distributions exactly;
* :func:`red_view` / :func:`use_view` — derived request-rate/error/
  duration and utilisation/saturation views over the raw series;
* :class:`TelemetryPlane` — the store + scraper + SLO evaluator bundle
  one deployment owns (see :mod:`repro.obs.slo` for the SLO half).

The scraper also meters itself: cumulative *host* seconds spent
scraping (``host_seconds``) is what the observability bench holds under
its <5 % overhead budget, and ``lag()`` is the staleness the admin
console surfaces.
"""

from __future__ import annotations

import math
import time
from bisect import bisect_left, bisect_right
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.obs.hub import obs_of
from repro.sim.kernel import Simulator
from repro.sim.metrics import MetricsRegistry

#: How many points one series retains (a ring buffer: a 5 s scrape
#: interval keeps one simulated hour at the default).
DEFAULT_MAX_POINTS = 720
#: How many distinct (name, labels) series one store accepts.
DEFAULT_MAX_SERIES = 8192

LabelSet = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def format_bound(bound: float) -> str:
    """The ``le`` label value of one histogram bucket bound."""
    if math.isinf(bound):
        return "+Inf"
    text = f"{bound:g}"
    return text


class Series:
    """One labeled time series: bounded ``(t, value)`` points.

    Times and values live in parallel sorted lists so every windowed
    query is a :func:`bisect.bisect_right` instead of a ring-buffer
    scan — the SLO evaluator calls :meth:`delta` thousands of times per
    run, and this is what keeps the scraper inside its overhead budget.
    The bound is enforced lazily: the buffer grows to twice
    ``max_points`` and is then halved in one slice, which amortises the
    front-trim to O(1) per append.
    """

    __slots__ = ("name", "labels", "max_points", "_times", "_values",
                 "_trimmed")

    def __init__(self, name: str, labels: Dict[str, str],
                 max_points: int = DEFAULT_MAX_POINTS):
        self.name = name
        self.labels = dict(labels)
        self.max_points = max_points
        self._times: List[float] = []
        self._values: List[float] = []
        self._trimmed = False

    def append(self, t: float, value: float) -> None:
        """Record ``value`` at time ``t`` (monotonic appends expected)."""
        self._times.append(t)
        self._values.append(float(value))
        if len(self._times) >= 2 * self.max_points:
            del self._times[:self.max_points]
            del self._values[:self.max_points]
            self._trimmed = True

    def points(self, start: Optional[float] = None,
               end: Optional[float] = None) -> List[Tuple[float, float]]:
        """Points with ``start <= t <= end`` (both bounds optional)."""
        lo = 0 if start is None else bisect_left(self._times, start)
        hi = (len(self._times) if end is None
              else bisect_right(self._times, end))
        return list(zip(self._times[lo:hi], self._values[lo:hi]))

    def latest(self) -> Optional[Tuple[float, float]]:
        """The most recent point, or ``None`` while empty."""
        if not self._times:
            return None
        return (self._times[-1], self._values[-1])

    def prior(self, t: float) -> Optional[Tuple[float, float]]:
        """The most recent point at-or-before ``t``, or ``None``."""
        i = bisect_right(self._times, t)
        if i == 0:
            return None
        return (self._times[i - 1], self._values[i - 1])

    def times(self, start: float, end: float) -> List[float]:
        """Just the sample times in ``[start, end]`` (no tuple packing)."""
        lo = bisect_left(self._times, start)
        hi = bisect_right(self._times, end)
        return self._times[lo:hi]

    def __len__(self) -> int:
        return len(self._times)

    # -- windowed helpers ---------------------------------------------------

    def delta(self, start: float, end: float) -> Optional[float]:
        """Counter growth across ``[start, end]``.

        Uses the last sample at-or-before ``start`` as the baseline when
        one exists; a series whose *first ever* sample falls inside the
        window baselines at zero instead — counters only appear in a
        scrape once first incremented, so their pre-first-sample growth
        belongs to the window.  ``None`` when there is no data at or
        before ``end`` at all; a negative step (counter reset) clamps to
        the post-reset value.
        """
        times = self._times
        hi = bisect_right(times, end)
        if hi == 0:
            return None
        last = self._values[hi - 1]
        lo = bisect_right(times, start)
        if lo > 0:
            baseline = self._values[lo - 1]
        elif self._trimmed:
            # eviction means the earliest retained point may not be the
            # series' birth; only then is a zero baseline wrong
            baseline = self._values[0]
        else:
            baseline = 0.0
        return max(0.0, last - baseline)

    def rate(self, start: float, end: float) -> Optional[float]:
        """Counter growth per second across ``[start, end]``."""
        grown = self.delta(start, end)
        if grown is None or end <= start:
            return None
        return grown / (end - start)

    def mean(self, start: float, end: float) -> Optional[float]:
        """Arithmetic mean of samples inside the window (``None`` if empty)."""
        lo = bisect_left(self._times, start)
        hi = bisect_right(self._times, end)
        if hi <= lo:
            return None
        values = self._values[lo:hi]
        return sum(values) / len(values)

    def fraction_below(self, threshold: float, start: float,
                       end: float) -> Optional[float]:
        """Fraction of in-window samples with ``value <= threshold``."""
        lo = bisect_left(self._times, start)
        hi = bisect_right(self._times, end)
        if hi <= lo:
            return None
        values = self._values[lo:hi]
        return sum(1 for v in values if v <= threshold) / len(values)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Series {self.name} {self.labels} n={len(self._times)}>"


class SeriesStore:
    """Bounded collection of labeled series, keyed by (name, labels).

    At the series bound, *new* series are dropped (and counted in
    ``dropped_series``) rather than evicting live ones — a scrape storm
    of fresh label combinations must not destroy the operator's existing
    dashboards mid-incident.
    """

    def __init__(self, max_series: int = DEFAULT_MAX_SERIES,
                 max_points: int = DEFAULT_MAX_POINTS):
        self.max_series = max_series
        self.max_points = max_points
        self._series: Dict[Tuple[str, LabelSet], Series] = {}
        self.dropped_series = 0
        # label-superset matching is a full scan; the SLO evaluator asks
        # the same questions every tick, so memoise until a new series
        # appears (appends never change which series match)
        self._query_cache: Dict[Tuple[str, LabelSet], List[Series]] = {}

    def record(self, name: str, t: float, value: float,
               **labels: str) -> Optional[Series]:
        """Append one point, creating the series on first sight."""
        key = (name, _label_key(labels))
        series = self._series.get(key)
        if series is None:
            if len(self._series) >= self.max_series:
                self.dropped_series += 1
                return None
            series = Series(name, {k: str(v) for k, v in labels.items()},
                            max_points=self.max_points)
            self._series[key] = series
            self._query_cache.clear()
        series.append(t, value)
        return series

    def get(self, name: str, **labels: str) -> Optional[Series]:
        """The exact series for ``name`` + ``labels``, or ``None``."""
        return self._series.get((name, _label_key(labels)))

    def query(self, name: str, **labels: str) -> List[Series]:
        """Every series of ``name`` whose labels are a superset of ``labels``."""
        wanted = {str(k): str(v) for k, v in labels.items()}
        cache_key = (name, _label_key(wanted))
        cached = self._query_cache.get(cache_key)
        if cached is not None:
            return list(cached)
        out = []
        for (series_name, _key), series in self._series.items():
            if series_name != name:
                continue
            if all(series.labels.get(k) == v for k, v in wanted.items()):
                out.append(series)
        self._query_cache[cache_key] = out
        return list(out)

    def names(self) -> List[str]:
        """Distinct series names, sorted."""
        return sorted({name for name, _ in self._series})

    def series_count(self) -> int:
        """Number of live series."""
        return len(self._series)

    def all_series(self) -> List[Series]:
        """Every live series (a copy of the list)."""
        return list(self._series.values())


class MetricsScraper:
    """Samples registries and probes into a :class:`SeriesStore` periodically.

    Sources are added with :meth:`add_registry` (a whole
    :class:`~repro.sim.metrics.MetricsRegistry`, snapshotted flat, plus
    per-bucket cumulative series for each histogram) or
    :meth:`add_probe` (one named callable).  :meth:`start` spawns the
    scrape loop on the simulated clock; each tick also invokes every
    ``on_scrape`` hook (the SLO evaluator registers itself there).
    """

    def __init__(self, sim: Simulator, store: SeriesStore,
                 interval: float = 5.0):
        if interval <= 0:
            raise ValueError("scrape interval must be positive")
        self.sim = sim
        self.store = store
        self.interval = interval
        self._registries: List[Tuple[Dict[str, str], MetricsRegistry]] = []
        self._probes: List[Tuple[str, Dict[str, str],
                                 Callable[[], Optional[float]]]] = []
        self._hooks: List[Callable[[float], None]] = []
        # source-key -> Series, so steady-state ticks append directly
        # instead of re-sorting label sets through SeriesStore.record
        self._resolved: Dict[Any, Series] = {}
        self._running = False
        self.scrapes = 0
        self.samples = 0
        self.last_scrape_at: Optional[float] = None
        #: cumulative host CPU seconds spent inside scrape ticks — the
        #: overhead the observability bench holds under budget
        self.host_seconds = 0.0

    # -- sources ------------------------------------------------------------

    def add_registry(self, registry: MetricsRegistry,
                     **labels: str) -> None:
        """Sample every metric of ``registry`` under ``labels`` each tick."""
        self._registries.append(({k: str(v) for k, v in labels.items()},
                                 registry))

    def add_probe(self, name: str, fn: Callable[[], Optional[float]],
                  **labels: str) -> None:
        """Sample ``fn()`` into series ``name`` under ``labels`` each tick.

        A probe returning ``None`` records nothing for that tick.
        """
        self._probes.append((name, {k: str(v) for k, v in labels.items()},
                             fn))

    def on_scrape(self, hook: Callable[[float], None]) -> None:
        """Run ``hook(now)`` after every scrape (SLO evaluation, alerts)."""
        self._hooks.append(hook)

    def registries(self) -> List[Tuple[Dict[str, str], MetricsRegistry]]:
        """The registered (labels, registry) sources (a copy)."""
        return list(self._registries)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Begin scraping every ``interval`` simulated seconds."""
        if self._running:
            return
        self._running = True
        self.sim.spawn(self._loop(), name="obs.scraper")

    def stop(self) -> None:
        """Stop after the current tick."""
        self._running = False

    @property
    def running(self) -> bool:
        """Whether the scrape loop is active."""
        return self._running

    def lag(self, now: Optional[float] = None) -> float:
        """Seconds since the last completed scrape (staleness)."""
        if self.last_scrape_at is None:
            return math.inf
        return (now if now is not None else self.sim.now) - self.last_scrape_at

    def _loop(self):
        while self._running:
            yield self.interval
            if not self._running:
                return
            self.scrape_once()

    # -- one tick -----------------------------------------------------------

    def _record(self, key: Any, name: str, now: float, value: float,
                labels: Dict[str, str]) -> bool:
        """Append via the resolved-series cache; ``False`` if dropped."""
        series = self._resolved.get(key)
        if series is None:
            series = self.store.record(name, now, value, **labels)
            if series is None:
                return False
            self._resolved[key] = series
            return True
        series.append(now, float(value))
        return True

    def scrape_once(self) -> int:
        """Sample every source now; returns the number of points written."""
        # CPU time, not wall: perf_counter would charge the scraper for
        # scheduler preemptions that have nothing to do with its work
        host_start = time.process_time()
        now = self.sim.now
        written = 0
        resolved = self._resolved
        for idx, (labels, registry) in enumerate(self._registries):
            for name, value in registry.snapshot().items():
                series = resolved.get((idx, name))
                if series is not None:
                    series.append(now, float(value))
                    written += 1
                elif self._record((idx, name), name, now, value, labels):
                    written += 1
            for name, hist in registry.each_histogram():
                running = 0
                for bound, count in hist.bucket_counts():
                    running += count
                    series = resolved.get((idx, name, bound))
                    if series is not None:
                        # cumulative bucket: an unchanged count carries
                        # no new information and delta() baselines
                        # through sparse points, so skip the append
                        if series._values[-1] != running:
                            series.append(now, float(running))
                            written += 1
                        continue
                    le = format_bound(bound)
                    if self._record((idx, name, bound), f"{name}.bucket",
                                    now, running, {"le": le, **labels}):
                        written += 1
        for idx, (name, labels, fn) in enumerate(self._probes):
            value = fn()
            if value is None:
                continue
            if self._record(("probe", idx), name, now, float(value), labels):
                written += 1
        self.scrapes += 1
        self.samples += written
        self.last_scrape_at = now
        # self-metering rides in the same store, labeled as its own service
        self._record(("meta", "samples"), "scrape.samples", now,
                     float(written), {"service": "telemetry"})
        self._record(("meta", "series"), "scrape.series", now,
                     float(self.store.series_count()),
                     {"service": "telemetry"})
        for hook in self._hooks:
            hook(now)
        self.host_seconds += time.process_time() - host_start
        return written


# -- derived views -----------------------------------------------------------


def red_view(store: SeriesStore, now: float, window: float = 60.0, *,
             requests: str = "requests", errors: str = "errors",
             duration: str = "request.duration",
             **labels: str) -> Dict[str, Optional[float]]:
    """RED (rate / errors / duration) over the window ending at ``now``.

    ``requests`` and ``errors`` name counter series; ``duration`` names
    a histogram whose scraped ``.p95`` gauge supplies the duration
    figure.  Missing series yield ``None`` fields rather than raising —
    a dashboard renders dashes, it does not crash.
    """
    start = now - window

    def counter_rate(name: str) -> Optional[float]:
        rates = [s.rate(start, now) for s in store.query(name, **labels)]
        rates = [r for r in rates if r is not None]
        if not rates:
            return None
        return sum(rates)

    request_rate = counter_rate(requests)
    error_rate = counter_rate(errors)
    ratio: Optional[float] = None
    if request_rate is not None and error_rate is not None:
        ratio = error_rate / request_rate if request_rate > 0 else 0.0
    p95_series = store.query(f"{duration}.p95", **labels)
    p95_values = [s.mean(start, now) for s in p95_series]
    p95_values = [v for v in p95_values if v is not None]
    return {
        "rate": request_rate,
        "error_rate": error_rate,
        "error_ratio": ratio,
        "duration_p95": max(p95_values) if p95_values else None,
    }


def use_view(store: SeriesStore, now: float, window: float = 60.0, *,
             utilization: str, saturation: str,
             errors: Optional[str] = None,
             **labels: str) -> Dict[str, Optional[float]]:
    """USE (utilisation / saturation / errors) over the trailing window."""
    start = now - window

    def gauge_mean(name: str) -> Optional[float]:
        values = [s.mean(start, now) for s in store.query(name, **labels)]
        values = [v for v in values if v is not None]
        if not values:
            return None
        return sum(values) / len(values)

    error_rate: Optional[float] = None
    if errors is not None:
        rates = [s.rate(start, now) for s in store.query(errors, **labels)]
        rates = [r for r in rates if r is not None]
        error_rate = sum(rates) if rates else None
    return {
        "utilization": gauge_mean(utilization),
        "saturation": gauge_mean(saturation),
        "error_rate": error_rate,
    }


class TelemetryPlane:
    """Store + scraper + SLO evaluation for one deployment.

    Constructed by :meth:`repro.core.evop.Evop.enable_telemetry`, which
    registers every subsystem registry; standalone use (tests, benches)
    just adds sources and SLOs directly.  ``notifier`` (if given)
    receives one payload dict per alert transition — the deployment
    wires it to the push gateway so on-call notification rides the same
    push-vs-poll channel fabric the paper argues for.
    """

    def __init__(self, sim: Simulator, interval: float = 5.0,
                 store: Optional[SeriesStore] = None,
                 notifier: Optional[Callable[[Dict[str, Any]], None]] = None,
                 evaluation_interval: Optional[float] = None):
        from repro.obs.slo import AlertManager  # local: avoid import cycle
        self.sim = sim
        self.store = store if store is not None else SeriesStore()
        self.scraper = MetricsScraper(sim, self.store, interval=interval)
        self.alerts = AlertManager(sim, self.store, notifier=notifier)
        # rules re-check on their own cadence (the Prometheus
        # scrape_interval / evaluation_interval split): sampling stays
        # fine-grained while burn-rate math — the expensive half — runs
        # at a pace that still detects faults well inside any human
        # response time.  30s samples the shortest burn window (60s)
        # twice per span, so nothing an alert could catch slips past.
        self.evaluation_interval = (
            evaluation_interval if evaluation_interval is not None
            else max(interval, 30.0))
        self._last_evaluated: Optional[float] = None
        self.scraper.on_scrape(self._maybe_evaluate)

    def _maybe_evaluate(self, now: float) -> None:
        due = (self._last_evaluated is None
               or now - self._last_evaluated >= self.evaluation_interval
               - 1e-9)
        if due:
            self._last_evaluated = now
            self.alerts.evaluate(now)

    # -- wiring -------------------------------------------------------------

    def watch_registry(self, registry: MetricsRegistry,
                       **labels: str) -> None:
        """Scrape ``registry`` under ``labels`` every tick."""
        self.scraper.add_registry(registry, **labels)

    def watch_probe(self, name: str, fn: Callable[[], Optional[float]],
                    **labels: str) -> None:
        """Scrape ``fn()`` into series ``name`` every tick."""
        self.scraper.add_probe(name, fn, **labels)

    def watch_cache(self, cache: Any, **labels: str) -> MetricsRegistry:
        """Scrape a :class:`~repro.perf.runcache.RunCache` under ``labels``.

        Binds the cache's hit/miss/eviction counters into a fresh
        registry (back-filling existing totals) and adds an ``entries``
        probe, so warm-path behaviour shows up as time series.
        """
        registry = MetricsRegistry(self.sim, namespace="runcache")
        cache.bind_metrics(registry)
        self.watch_registry(registry, **labels)
        self.watch_probe("runcache.entries", lambda: float(len(cache)),
                         **labels)
        return registry

    def watch_ensemble_runner(self, runner: Any, **labels: str) -> None:
        """Scrape an :class:`~repro.perf.runner.EnsembleRunner`'s
        backend counters under ``labels``.

        One ``ensemble.runs`` series per backend (labeled
        ``backend=scalar|vector|process-pool``), plus dispatch gauges —
        the same figures ``runner.stats()`` reports and the admin
        console's ``top`` view tails, sampled over time so a sweep's
        backend mix is visible next to its cache and SLO series.
        """
        for backend in getattr(runner, "backend_runs", {}):
            key = f"runs{{backend={backend}}}"
            self.watch_probe(
                "ensemble.runs",
                lambda r=runner, k=key: float(r.stats().get(k, 0)),
                backend=backend, **labels)
        for gauge in ("chunks_dispatched", "chunk_size", "pool_workers"):
            self.watch_probe(
                f"ensemble.{gauge}",
                lambda r=runner, g=gauge: float(r.stats().get(g, 0)),
                **labels)

    def watch_dataplane(self, plane: Any, **labels: str) -> None:
        """Scrape a :class:`~repro.dataplane.plane.DataPlane`'s health.

        Mounts the plane's own probe triples — consumer lag, DLQ depth,
        outbox depth, total stream events — the saturation signals that
        say whether the materialized views are keeping up with ingest
        and whether poison events are accumulating.
        """
        for name, probe_labels, fn in plane.probes():
            self.watch_probe(name, fn, **{**probe_labels, **labels})

    def add_slo(self, slo: Any, windows: Optional[Iterable] = None) -> None:
        """Track ``slo`` with a multi-window burn-rate alert rule."""
        self.alerts.add(slo, windows=windows)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "TelemetryPlane":
        """Start the scrape loop; returns self for chaining."""
        self.scraper.start()
        return self

    def stop(self) -> None:
        """Stop scraping (SLO evaluation stops with it)."""
        self.scraper.stop()

    # -- queries ------------------------------------------------------------

    def slo_status(self) -> List[Dict[str, Any]]:
        """Per-SLO state (sli, target, burn rates, alert state)."""
        return self.alerts.status(self.sim.now)

    def firing_alerts(self) -> List[Dict[str, Any]]:
        """Currently firing alerts."""
        return self.alerts.firing()

    def health_score(self) -> float:
        """0–100 composite: 100 healthy, each firing alert / miss deducts."""
        return self.alerts.health_score(self.sim.now)

    def exemplars(self, metric: str,
                  min_value: float = 0.0) -> List[Dict[str, Any]]:
        """Trace exemplars retained by histograms matching ``metric``.

        Searches every watched registry for histograms whose relative
        qualified name equals (or dot-suffixes) ``metric``; returns the
        per-bucket exemplars with ``value >= min_value``, worst first —
        each carries the ``trace_id`` of a real observation, which is
        what lets a bad p99 link straight to a span tree.
        """
        out: List[Dict[str, Any]] = []
        for labels, registry in self.scraper.registries():
            for name, hist in registry.each_histogram():
                if name != metric and not name.endswith(f".{metric}"):
                    continue
                for bound, exemplar in hist.exemplars():
                    if exemplar.get("value", 0.0) < min_value:
                        continue
                    entry = dict(exemplar)
                    entry["metric"] = name
                    entry["le"] = format_bound(bound)
                    entry["labels"] = dict(labels)
                    out.append(entry)
        out.sort(key=lambda e: e.get("value", 0.0), reverse=True)
        return out

    def snapshot(self) -> Dict[str, Any]:
        """The plane's own vitals (for the admin console)."""
        lag = self.scraper.lag()
        return {
            "series": self.store.series_count(),
            "dropped_series": self.store.dropped_series,
            "scrapes": self.scraper.scrapes,
            "samples": self.scraper.samples,
            "interval": self.scraper.interval,
            "lag": lag if math.isfinite(lag) else None,
            "host_seconds": round(self.scraper.host_seconds, 6),
            "health_score": self.health_score(),
            "alerts_firing": [a["alert"] for a in self.firing_alerts()],
        }

"""The shared Observability hub, one per simulator.

Subsystems never construct tracers or event logs themselves; they call
:func:`obs_of` with the simulator they already hold, and every subsystem
sharing that simulator shares one hub — which is exactly what lets a
single trace id cross the broker, the network, an instance and a
workflow engine.

The hub also owns ``api_metrics``, the registry REST servers record
per-API request counts and duration histograms into: server-side RED
metrics need a home that exists before any deployment wiring, for the
same reason the tracer does.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.obs.events import EventLog
from repro.obs.tracer import Tracer
from repro.sim.kernel import Simulator
from repro.sim.metrics import MetricsRegistry

_HUB_ATTR = "_obs_hub"


class Observability:
    """A tracer plus an event log bound to one simulated clock."""

    def __init__(self, sim: Simulator, max_spans: int = 100_000,
                 max_events: int = 20_000):
        self.sim = sim
        self.max_events = max_events
        self.tracer = Tracer(sim, max_spans=max_spans)
        self.events = EventLog(sim, max_events=max_events)
        self.api_metrics = MetricsRegistry(sim, namespace="rest")

    def reset(self) -> None:
        """Drop all collected spans and events (benchmark hygiene)."""
        self.tracer.clear()
        self.events = EventLog(self.sim, max_events=self.max_events)
        self.api_metrics = MetricsRegistry(self.sim, namespace="rest")

    def snapshot(self) -> Dict[str, Any]:
        """Retention health: what was kept, what was silently shed.

        Both the tracer and the event log are bounded; this is where
        truncation becomes visible instead of being a quiet ``deque``
        property nobody reads.
        """
        spans = self.tracer.spans()
        return {
            "spans_retained": len(spans),
            "spans_dropped": self.tracer.dropped,
            "spans_open": sum(1 for s in spans if not s.finished),
            "events_retained": len(self.events),
            "events_emitted": self.events.total_emitted,
            "events_dropped": self.events.dropped,
        }


def obs_of(sim: Simulator) -> Observability:
    """The hub attached to ``sim``, created lazily on first use."""
    hub = getattr(sim, _HUB_ATTR, None)
    if hub is None:
        hub = Observability(sim)
        setattr(sim, _HUB_ATTR, hub)
    return hub

"""Trace context and its propagation over the simulated wire.

A :class:`SpanContext` is the (trace id, span id) pair that names a
position in one distributed trace.  Propagation follows the W3C Trace
Context shape — a single ``traceparent`` header carried in the plain
``headers`` dict of the simulated :class:`~repro.services.transport.HttpRequest`
— so the transport layer needs no new fields and any protocol stacked on
HTTP (REST, WPS, SOAP) inherits propagation for free.

Ids are drawn from deterministic counters, not randomness: given the
same seed and workload a simulation replays identically, and its traces
must too (the benchmark harness depends on it).
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

#: Header key used to carry trace context across the simulated network.
TRACEPARENT_HEADER = "traceparent"

_trace_ids = itertools.count(1)
_span_ids = itertools.count(1)


def new_trace_id() -> str:
    """Mint a fresh deterministic 32-hex-digit trace id."""
    return f"{next(_trace_ids):032x}"


def new_span_id() -> str:
    """Mint a fresh deterministic 16-hex-digit span id."""
    return f"{next(_span_ids):016x}"


class SpanContext:
    """Immutable position in a trace: which trace, which span."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str):
        self.trace_id = trace_id
        self.span_id = span_id

    def to_traceparent(self) -> str:
        """Serialise as a ``traceparent`` header value."""
        return f"00-{self.trace_id}-{self.span_id}-01"

    @classmethod
    def from_traceparent(cls, value: str) -> Optional["SpanContext"]:
        """Parse a ``traceparent`` header value (None if malformed)."""
        parts = value.split("-")
        if len(parts) != 4 or parts[0] != "00":
            return None
        trace_id, span_id = parts[1], parts[2]
        if len(trace_id) != 32 or len(span_id) != 16:
            return None
        try:
            int(trace_id, 16), int(span_id, 16)
        except ValueError:
            return None
        return cls(trace_id=trace_id, span_id=span_id)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, SpanContext)
                and self.trace_id == other.trace_id
                and self.span_id == other.span_id)

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SpanContext {self.trace_id[-8:]}/{self.span_id[-8:]}>"


def inject_context(context: Optional[SpanContext],
                   headers: Dict[str, str]) -> Dict[str, str]:
    """Write ``context`` into ``headers`` (no-op when context is None)."""
    if context is not None:
        headers[TRACEPARENT_HEADER] = context.to_traceparent()
    return headers


def extract_context(headers: Dict[str, str]) -> Optional[SpanContext]:
    """Read a :class:`SpanContext` out of ``headers``, if one is present."""
    raw = headers.get(TRACEPARENT_HEADER)
    if not raw:
        return None
    return SpanContext.from_traceparent(raw)

"""Spans and the tracer that collects them.

A :class:`Span` is one timed operation on the simulated clock; spans
form trees via parent span ids and forests via trace ids.  The
:class:`Tracer` is the single collection point per simulator: bounded,
deterministic, and aware of a *synchronous activation stack* so that
host-instantaneous work (a model run inside a job's ``compute``) can
parent its spans under the job that charged for it.

The activation stack is explicitly scoped (``with tracer.activate(span)``)
rather than ambient, because a discrete-event simulator interleaves many
logical tasks on one host thread — any context that outlives its event
callback would leak across unrelated processes.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Any, Deque, Dict, List, Optional

from repro.obs.context import SpanContext, new_span_id, new_trace_id
from repro.sim.kernel import Simulator


class Span:
    """One timed operation within a trace."""

    __slots__ = ("name", "kind", "context", "parent_id", "start", "end",
                 "status", "error", "attributes", "annotations", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, context: SpanContext,
                 parent_id: Optional[str], kind: str, start: float,
                 attributes: Optional[Dict[str, Any]] = None):
        self._tracer = tracer
        self.name = name
        self.kind = kind
        self.context = context
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.status = "ok"
        self.error: Optional[str] = None
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.annotations: List[Dict[str, Any]] = []

    @property
    def trace_id(self) -> str:
        """Trace this span belongs to."""
        return self.context.trace_id

    @property
    def span_id(self) -> str:
        """This span's own id."""
        return self.context.span_id

    @property
    def finished(self) -> bool:
        """Whether :meth:`finish` has been called."""
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        """Simulated seconds from start to finish (None while open)."""
        if self.end is None:
            return None
        return self.end - self.start

    def set_attribute(self, key: str, value: Any) -> "Span":
        """Attach/overwrite one attribute; returns self for chaining."""
        self.attributes[key] = value
        return self

    def annotate(self, message: str, **fields: Any) -> "Span":
        """Add a timestamped annotation (boot, crash, retry, ...)."""
        entry = {"t": self._tracer.sim.now, "message": message}
        entry.update(fields)
        self.annotations.append(entry)
        return self

    def set_error(self, error: str) -> "Span":
        """Mark the span errored without finishing it."""
        self.status = "error"
        self.error = error
        return self

    def finish(self, error: Optional[str] = None) -> "Span":
        """Close the span at the current simulated time.

        Idempotent: once finished, later calls (including ones carrying
        an error) change nothing — the first closer wins.
        """
        if self.end is None:
            if error is not None:
                self.set_error(error)
            self.end = self._tracer.sim.now
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"{self.duration:.3f}s" if self.finished else "open"
        return f"<Span {self.name!r} {self.status} {state}>"


class Tracer:
    """Bounded collector of spans for one simulator.

    ``max_spans`` bounds memory: the store is a deque that drops the
    oldest finished-or-not spans first, so a long soak keeps its most
    recent traces intact.
    """

    def __init__(self, sim: Simulator, max_spans: int = 100_000):
        self.sim = sim
        self.max_spans = max_spans
        self._spans: Deque[Span] = deque(maxlen=max_spans)
        self._active: List[Span] = []
        self.dropped = 0

    def start_span(self, name: str,
                   parent: Optional[Any] = None,
                   kind: str = "internal",
                   attributes: Optional[Dict[str, Any]] = None) -> Span:
        """Open a span starting now.

        ``parent`` may be a :class:`Span`, a :class:`SpanContext`, or
        ``None`` — in which case the innermost *activated* span (if any)
        is the parent, and otherwise a fresh trace is started.
        """
        parent_ctx = self._resolve_parent(parent)
        if parent_ctx is None:
            context = SpanContext(new_trace_id(), new_span_id())
            parent_id = None
        else:
            context = SpanContext(parent_ctx.trace_id, new_span_id())
            parent_id = parent_ctx.span_id
        span = Span(self, name, context, parent_id, kind, self.sim.now,
                    attributes)
        if len(self._spans) == self._spans.maxlen:
            self.dropped += 1
        self._spans.append(span)
        return span

    def _resolve_parent(self, parent: Optional[Any]) -> Optional[SpanContext]:
        if parent is None:
            return self.current_context()
        if isinstance(parent, Span):
            return parent.context
        if isinstance(parent, SpanContext):
            return parent
        raise TypeError(f"cannot parent a span under {parent!r}")

    def current_context(self) -> Optional[SpanContext]:
        """Context of the innermost activated span (None outside any)."""
        if not self._active:
            return None
        return self._active[-1].context

    @contextmanager
    def activate(self, span: Span):
        """Scope ``span`` as the implicit parent for synchronous work."""
        self._active.append(span)
        try:
            yield span
        finally:
            self._active.pop()

    # -- queries ---------------------------------------------------------------

    def spans(self, trace_id: Optional[str] = None,
              name: Optional[str] = None) -> List[Span]:
        """Collected spans, optionally filtered by trace id and/or name."""
        out = list(self._spans)
        if trace_id is not None:
            out = [s for s in out if s.trace_id == trace_id]
        if name is not None:
            out = [s for s in out if s.name == name]
        return out

    def trace_ids(self) -> List[str]:
        """Distinct trace ids, in order of first appearance."""
        seen: Dict[str, None] = {}
        for span in self._spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def finish_open_spans(self, error: Optional[str] = None) -> int:
        """Close every still-open span (end-of-run flush); returns count."""
        closed = 0
        for span in self._spans:
            if not span.finished:
                span.finish(error=error)
                closed += 1
        return closed

    def clear(self) -> None:
        """Drop every collected span."""
        self._spans.clear()
        self.dropped = 0

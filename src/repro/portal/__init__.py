"""The EVOp web portal, as testable objects.

The Web 2.0 front-end of Section IV-C reduced to its information
architecture: an interactive map of geotagged assets (Fig. 4), widgets
that open from markers — time-series graphs, the multimodal
sensor+webcam view (Fig. 5), and the modelling widget with scenario
buttons, parameter sliders and hydrograph output (Fig. 6) — plus the
LEFT assembly and scripted user journeys for the storyboard playback.

Chart output is a Flot-like series spec (:mod:`repro.portal.render`)
renderable to JSON for a browser or ASCII for the examples.
"""

from repro.portal.render import ChartSpec, Series
from repro.portal.basemap import MapView, Marker
from repro.portal.widgets import (
    ModellingWidget,
    MultimodalWidget,
    TimeSeriesWidget,
    WebcamWidget,
)
from repro.portal.left import LeftTool
from repro.portal.journey import JourneyLog, UserJourney
from repro.portal.national import CatchmentOutlook, FloodStatus, NationalOutlook
from repro.portal.uploads import UploadService
from repro.portal.history import RunHistoryStore

__all__ = [
    "CatchmentOutlook",
    "ChartSpec",
    "FloodStatus",
    "JourneyLog",
    "LeftTool",
    "MapView",
    "Marker",
    "ModellingWidget",
    "MultimodalWidget",
    "NationalOutlook",
    "RunHistoryStore",
    "Series",
    "TimeSeriesWidget",
    "UploadService",
    "UserJourney",
    "WebcamWidget",
]

"""LEFT — the Local EVOp Flooding Tool, assembled end-to-end.

Ties the pieces of Section V-B together for one catchment: the sensor
deployment and webcam, the catalogue entries the landing map shows, and
the modelling widget wired through the Resource Broker to the WPS
services in the cloud.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.broker.resource_broker import ResourceBroker
from repro.data.catalog import AssetCatalog, AssetOrigin, BoundingBox
from repro.data.catchments import Catchment
from repro.data.sensors import Sensor, SensorNetwork
from repro.data.webcam import WebcamArchive
from repro.hydrology.timeseries import TimeSeries
from repro.portal.basemap import MapView
from repro.portal.widgets import (
    ModellingWidget,
    MultimodalWidget,
    TimeSeriesWidget,
)
from repro.services.sos import SensorDescription
from repro.services.transport import Network
from repro.sim import RandomStreams, Simulator


class LeftTool:
    """The flooding tool for one catchment."""

    def __init__(self, sim: Simulator, catchment: Catchment,
                 catalog: AssetCatalog, network: Network,
                 broker: ResourceBroker, service_name: str,
                 streams: Optional[RandomStreams] = None,
                 resilient=None):
        self.sim = sim
        self.catchment = catchment
        self.catalog = catalog
        self.network = network
        self.broker = broker
        self.service_name = service_name
        # the shared resilience fabric (breakers, bulkheads, counters);
        # widgets fall back to a private one when none is supplied
        self.resilient = resilient
        self.streams = streams or RandomStreams()
        self.sensors = SensorNetwork(sim, streams=self.streams)
        self.webcam = WebcamArchive(
            sim, f"{catchment.name}-cam-1",
            catchment.latitude, catchment.longitude, catchment.name)
        self._built = False

    # -- deployment --------------------------------------------------------------

    def deploy_sensors(self, river_level_truth, rainfall_truth,
                       temperature_truth, turbidity_truth) -> None:
        """Install the in-situ instruments the workshops asked for."""
        base_lat, base_lon = self.catchment.latitude, self.catchment.longitude
        specs = [
            ("rain-1", "rainfall", "mm/h", rainfall_truth, 0.02),
            ("level-1", "river_level", "m", river_level_truth, 0.01),
            ("temp-1", "water_temperature", "degC", temperature_truth, 0.05),
            ("turb-1", "turbidity", "NTU", turbidity_truth, 0.5),
        ]
        for i, (suffix, prop, units, truth, noise) in enumerate(specs):
            self.sensors.add_sensor(
                SensorDescription(
                    procedure_id=f"{self.catchment.name}-{suffix}",
                    observed_property=prop,
                    units=units,
                    latitude=base_lat + 0.01 * i,
                    longitude=base_lon - 0.01 * i,
                    catchment=self.catchment.name,
                ),
                truth=truth,
                sampling_interval=900.0,
                noise_std=noise,
            )

    def build_catalog(self) -> None:
        """Register the map markers (Figure 4's landing page content)."""
        if self._built:
            return
        for procedure_id in self.sensors.procedures():
            description = self.sensors.describe(procedure_id)
            self.catalog.add(
                name=procedure_id,
                kind="sensor-feed",
                origin=AssetOrigin.IN_SITU,
                latitude=description.latitude,
                longitude=description.longitude,
                catchment=self.catchment.name,
                metadata={"observedProperty": description.observed_property},
            )
        self.catalog.add(
            name=self.webcam.camera_id, kind="webcam",
            origin=AssetOrigin.IN_SITU,
            latitude=self.webcam.latitude, longitude=self.webcam.longitude,
            catchment=self.catchment.name)
        self.catalog.add(
            name=f"{self.catchment.name} flood model", kind="model",
            origin=AssetOrigin.WAREHOUSED,
            latitude=self.catchment.latitude,
            longitude=self.catchment.longitude,
            catchment=self.catchment.name,
            access=self.service_name,
            metadata={"process": f"topmodel-{self.catchment.name}"})
        self._built = True

    def start_feeds(self, until: Optional[float] = None) -> None:
        """Start every live feed and the webcam capture loop."""
        self.sensors.start_all_feeds(until)
        level = self.sensors.sensor(f"{self.catchment.name}-level-1")
        self.webcam.start_capture(
            interval=1800.0, until=until,
            tagger=lambda t: {"stage_m": level.latest().value
                              if level.latest() else 0.0})

    # -- widgets --------------------------------------------------------------------

    def landing_page(self) -> MapView:
        """The interactive map centred on the catchment."""
        viewport = MapView.catchment_viewport(
            self.catchment.latitude, self.catchment.longitude)
        return MapView(self.catalog, viewport)

    def timeseries_widget(self, suffix: str) -> TimeSeriesWidget:
        """A graph widget for one of the catchment's sensors."""
        return TimeSeriesWidget(
            self.sensors.sensor(f"{self.catchment.name}-{suffix}"))

    def quality_controlled_series(self, suffix: str, begin: float,
                                  end: float):
        """A sensor's archive, gridded and QC'd, plus the QC report.

        The pre-processing the paper's introduction calls out: the raw
        feed goes through range/spike/flatline checks and gap filling
        before models or downloads see it.
        """
        from repro.data.quality import quality_control
        sensor = self.sensors.sensor(f"{self.catchment.name}-{suffix}")
        raw = sensor.to_timeseries(begin, end)
        return quality_control(raw, sensor.description.observed_property)

    def webcam_widget(self):
        """The webcam marker's widget."""
        from repro.portal.widgets import WebcamWidget
        return WebcamWidget(self.webcam)

    def multimodal_widget(self) -> MultimodalWidget:
        """Figure 5's temperature+turbidity+webcam widget."""
        return MultimodalWidget(
            sensors=[
                self.sensors.sensor(f"{self.catchment.name}-temp-1"),
                self.sensors.sensor(f"{self.catchment.name}-turb-1"),
            ],
            webcam=self.webcam,
        )

    def open_modelling_widget(self, user_name: str,
                              model: str = "topmodel") -> ModellingWidget:
        """Open Figure 6's widget: connects the user through the RB."""
        session = self.broker.connect(user_name, self.service_name)
        return ModellingWidget(
            sim=self.sim,
            network=self.network,
            session=session,
            process_id=f"{model}-{self.catchment.name}",
            flood_threshold_mm_h=self.catchment.flood_threshold_mm_h,
            resilient=self.resilient,
        )

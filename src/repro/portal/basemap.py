"""The interactive mapping backdrop (Figure 4).

"An interactive mapping backdrop was developed as the LEFT landing page,
on top of which datasets (both static and live) and other assets (such
as webcam feeds) were overlaid on the map as geotagged markers."

The :class:`MapView` stands in for the Google-Maps layer: a viewport
over the asset catalogue producing :class:`Marker` objects, each of
which knows which widget type it opens — "the interactive nature of the
geospatial layers provides the ability to reveal new interfaces".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.data.catalog import Asset, AssetCatalog, BoundingBox

#: Map from asset kind to the widget a marker click opens.
WIDGET_FOR_KIND: Dict[str, str] = {
    "sensor-feed": "timeseries",
    "webcam": "webcam",
    "dataset": "timeseries",
    "multimodal": "multimodal",
    "model": "modelling",
}


@dataclass(frozen=True)
class Marker:
    """One geotagged marker on the map."""

    asset_id: str
    name: str
    kind: str
    latitude: float
    longitude: float
    widget: str

    @staticmethod
    def for_asset(asset: Asset) -> "Marker":
        """Build the marker for a catalogue asset."""
        return Marker(
            asset_id=asset.asset_id,
            name=asset.name,
            kind=asset.kind,
            latitude=asset.latitude,
            longitude=asset.longitude,
            widget=WIDGET_FOR_KIND.get(asset.kind, "details"),
        )


class MapView:
    """A viewport over the catalogue."""

    def __init__(self, catalog: AssetCatalog, viewport: BoundingBox):
        self.catalog = catalog
        self.viewport = viewport

    def markers(self, kind: Optional[str] = None) -> List[Marker]:
        """Markers inside the viewport, optionally of one kind."""
        assets = self.catalog.in_bbox(self.viewport)
        if kind is not None:
            assets = [a for a in assets if a.kind == kind]
        return [Marker.for_asset(a) for a in assets]

    def pan_to(self, viewport: BoundingBox) -> "MapView":
        """A new view with a moved viewport."""
        return MapView(self.catalog, viewport)

    def open(self, marker: Marker) -> Asset:
        """Resolve the catalogue asset behind a marker click."""
        return self.catalog.get(marker.asset_id)

    @staticmethod
    def catchment_viewport(latitude: float, longitude: float,
                           half_degrees: float = 0.25) -> BoundingBox:
        """A viewport centred on a catchment."""
        return BoundingBox(
            south=latitude - half_degrees, west=longitude - half_degrees,
            north=latitude + half_degrees, east=longitude + half_degrees)

"""Run history: "comparing current and previous results".

The introduction promises users can compare model output with *previous*
results — across visits, not just within one widget session.  The
:class:`RunHistoryStore` persists completed runs per user in the object
store, and the widget can merge stored runs into its comparison view, so
a farmer returning after the winter sees last autumn's scenario next to
today's.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.cloud.storage import BlobStore, Container
from repro.hydrology.timeseries import TimeSeries
from repro.portal.widgets import ModelRun


class RunHistoryStore:
    """Per-user persisted model runs."""

    CONTAINER = "run-history"

    def __init__(self, store: BlobStore):
        self._container: Container = store.create_container(self.CONTAINER)

    def _key(self, user: str, index: int) -> str:
        return f"{user}/{index:06d}"

    def save(self, user: str, run: ModelRun) -> str:
        """Persist a completed run; returns its history key."""
        index = len(self.list_keys(user))
        key = self._key(user, index)
        self._container.put(key, {
            "scenario": run.scenario,
            "inputs": dict(run.inputs),
            "outputs": dict(run.outputs),
            "requested_at": run.requested_at,
            "completed_at": run.completed_at,
        }, metadata={"user": user, "scenario": run.scenario})
        return key

    def list_keys(self, user: str) -> List[str]:
        """History keys for a user, oldest first."""
        return self._container.list(f"{user}/")

    def load(self, key: str) -> ModelRun:
        """Rehydrate a stored run."""
        payload = self._container.get(key).payload
        return ModelRun(
            scenario=payload["scenario"],
            inputs=dict(payload["inputs"]),
            outputs=dict(payload["outputs"]),
            requested_at=payload["requested_at"],
            completed_at=payload["completed_at"],
        )

    def load_all(self, user: str) -> List[ModelRun]:
        """Every stored run of a user, oldest first."""
        return [self.load(key) for key in self.list_keys(user)]

    def latest(self, user: str) -> Optional[ModelRun]:
        """The most recent stored run, if any."""
        keys = self.list_keys(user)
        return self.load(keys[-1]) if keys else None

    def clear(self, user: str) -> int:
        """Delete a user's history; returns how many runs were removed."""
        keys = self.list_keys(user)
        for key in keys:
            self._container.delete(key)
        return len(keys)

    def merge_into_widget(self, user: str, widget) -> int:
        """Prepend a user's stored runs into a widget's comparison set.

        Returns how many historical runs were added.  Current-session
        runs keep their position at the end (most recent last).
        """
        history = self.load_all(user)
        widget.runs[:0] = history
        return len(history)

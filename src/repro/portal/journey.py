"""Scripted user journeys — storyboard playback.

The storyboard methodology defines "a user's journey through the tool:
starting with selecting the feature they desire ... the display and
layout of results, and any subsequent interactions".  A
:class:`UserJourney` executes that script against a live LEFT tool and
records a timestamped :class:`JourneyLog`, which is both the FIG1
benchmark's data source and the storyboard-validation evidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.portal.left import LeftTool
from repro.sim import Signal, Simulator


@dataclass
class JourneyStep:
    """One completed step of a journey."""

    name: str
    started_at: float
    finished_at: float
    detail: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Seconds the step took (user-perceived)."""
        return self.finished_at - self.started_at


@dataclass
class JourneyLog:
    """The full record of one journey."""

    user: str
    steps: List[JourneyStep] = field(default_factory=list)
    completed: bool = False

    def step(self, name: str) -> JourneyStep:
        """Look a step up by name."""
        for step in self.steps:
            if step.name == name:
                return step
        raise KeyError(name)

    def total_duration(self) -> float:
        """First step start to last step end."""
        if not self.steps:
            return 0.0
        return self.steps[-1].finished_at - self.steps[0].started_at


class UserJourney:
    """The canonical LEFT storyboard as an executable script.

    Steps: open the landing map → inspect a live sensor → open the
    modelling widget (RB connection + WebSocket) → run the baseline →
    press a scenario button and re-run → compare.
    """

    def __init__(self, sim: Simulator, tool: LeftTool, user_name: str,
                 scenario: str = "storage_ponds"):
        self.sim = sim
        self.tool = tool
        self.user_name = user_name
        self.scenario = scenario
        self.log = JourneyLog(user=user_name)

    def start(self) -> Signal:
        """Run the journey; returns a signal fired with the log."""
        done = self.sim.signal(f"journey.{self.user_name}")
        self.sim.spawn(self._script(done), name=f"journey.{self.user_name}")
        return done

    def _record(self, name: str, started_at: float, **detail) -> None:
        self.log.steps.append(JourneyStep(
            name=name, started_at=started_at, finished_at=self.sim.now,
            detail=detail))

    def _script(self, done: Signal):
        # 1. landing page: the map and its markers
        t0 = self.sim.now
        page = self.tool.landing_page()
        markers = page.markers()
        self._record("landing_map", t0, markers=len(markers))

        # 2. click a sensor marker: live time-series widget
        t0 = self.sim.now
        widget = self.tool.timeseries_widget("level-1")
        latest = widget.latest_value()
        self._record("sensor_widget", t0, latest_level=latest)

        # 3. open the modelling widget (RB connection, session assignment)
        t0 = self.sim.now
        modelling = self.tool.open_modelling_widget(self.user_name)
        while modelling.session.instance_address is None:
            yield 1.0
        loaded = yield modelling.load()
        if not loaded:
            self.log.completed = False
            done.fire(self.log)
            return
        self._record("open_modelling_widget", t0,
                     instance=modelling.session.instance_address,
                     sliders=sorted(modelling.sliders))

        # 4. baseline run
        t0 = self.sim.now
        modelling.select_scenario("baseline")
        baseline = yield modelling.run()
        if baseline is None:
            self.log.completed = False
            done.fire(self.log)
            return
        self._record("baseline_run", t0,
                     peak=baseline.outputs["peak_mm_h"],
                     exceeded=baseline.outputs["threshold_exceeded"])

        # 5. scenario run
        t0 = self.sim.now
        modelling.select_scenario(self.scenario)
        scenario_run = yield modelling.run()
        if scenario_run is None:
            self.log.completed = False
            done.fire(self.log)
            return
        self._record("scenario_run", t0,
                     scenario=self.scenario,
                     peak=scenario_run.outputs["peak_mm_h"])

        # 6. comparison chart
        t0 = self.sim.now
        chart = modelling.comparison_chart()
        self._record("compare", t0, series=len(chart.series))
        self.tool.broker.disconnect(modelling.session)
        self.log.completed = True
        done.fire(self.log)

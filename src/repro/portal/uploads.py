"""User-provided data: the upload path of the XaaS catalogue.

Section III-B lists "user provided" among the asset origins EVOp
supports, and the scientists' requirement includes "find or upload data,
use it to run predictive models".  :class:`UploadService` is the REST
endpoint for that path: a POSTed series lands in the warehouse, is
catalogued with ``AssetOrigin.USER_PROVIDED``, and is immediately
runnable through the ``rainfall_dataset`` input of the WPS processes —
without the uploader ever granting anyone else raw access (the
"delegation without giving data away" property of Section VI).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

from repro.cloud.instance import Instance
from repro.data.catalog import AssetCatalog, AssetOrigin
from repro.data.warehouse import DataWarehouse
from repro.hydrology.timeseries import TimeSeries
from repro.services.envelope import problem
from repro.services.pagination import CursorError, paginate
from repro.services.rest import RestApi, RestCacheable, RestServer
from repro.services.transport import HttpRequest
from repro.sim import Simulator


class UploadService:
    """REST endpoint for user-provided datasets."""

    def __init__(self, sim: Simulator, warehouse: DataWarehouse,
                 catalog: AssetCatalog, policy=None):
        self.sim = sim
        self.warehouse = warehouse
        self.catalog = catalog
        self.policy = policy    # optional AccessPolicy for restricted data
        self.api = RestApi("uploads")
        self.api.post("/uploads", self._upload, cost=0.02)
        self.api.get("/uploads", self._list, cost=0.005)
        self.api.get("/uploads/{dataset_id}", self._describe, cacheable=True)
        self.api.get("/uploads/{dataset_id}/data", self._download,
                     cacheable=True)

    def replica(self, instance: Instance) -> RestServer:
        """Create a server replica on ``instance``."""
        return RestServer(self.sim, self.api, instance)

    # -- handlers -----------------------------------------------------------

    def _upload(self, request: HttpRequest, params: Dict[str, str]):
        body = request.body or {}
        fault = self._validate(body)
        if fault:
            return 400, problem(400, "invalid upload", fault, retryable=False)
        dataset_id = f"user/{body['owner']}/{body['name']}"
        series = TimeSeries(float(body.get("start", 0.0)),
                            float(body["dt"]),
                            [float(v) for v in body["values"]],
                            units=body.get("units", ""),
                            name=body["name"])
        self.warehouse.put_series(dataset_id, series,
                                  provenance=f"uploaded by {body['owner']}")
        if self.policy is not None:
            self.policy.register(dataset_id, owner=body["owner"],
                                 restricted=bool(body.get("restricted")))
        asset = self.catalog.add(
            name=body["name"],
            kind="dataset",
            origin=AssetOrigin.USER_PROVIDED,
            latitude=float(body.get("latitude", 0.0)),
            longitude=float(body.get("longitude", 0.0)),
            catchment=body.get("catchment", ""),
            access=dataset_id,
            metadata={"owner": body["owner"],
                      "units": body.get("units", "")},
        )
        return 201, {"datasetId": dataset_id, "assetId": asset.asset_id,
                     "samples": len(series)}

    def _list(self, request: HttpRequest, params: Dict[str, str]):
        """Paginated listing of user-provided datasets.

        A new collection route, so there is no legacy unpaginated body
        to preserve: both the ``/v1`` route and its shim paginate.
        Dataset ids are the sort keys — the warehouse lists them
        sorted, and new uploads only add keys, so cursors stay stable
        across ingest.
        """
        ids = self.warehouse.list(prefix="user/")
        try:
            page = paginate(request, ids, ids)
        except CursorError as err:
            return 400, problem(400, "invalid cursor", str(err),
                                retryable=False)
        datasets = [dict(self.warehouse.describe(dataset_id),
                         datasetId=dataset_id)
                    for dataset_id in page.items]
        return 200, {"datasets": datasets, "total": page.total,
                     "nextCursor": page.next_cursor}, page.headers

    def _describe(self, request: HttpRequest, params: Dict[str, str]):
        # path params cannot contain '/', so ids arrive URL-style encoded
        dataset_id = params["dataset_id"].replace("__", "/")
        if not self.warehouse.exists(dataset_id):
            return 404, problem(404, "no such dataset",
                                f"no dataset {dataset_id!r}", retryable=False)
        return RestCacheable(body=self.warehouse.describe(dataset_id),
                             etag=self.warehouse.etag_of(dataset_id))

    def _download(self, request: HttpRequest, params: Dict[str, str]):
        """Raw download, ACL-enforced via the X-Principal header.

        This is the endpoint the delegation model guards: restricted
        data cannot be pulled raw by a non-owner, even though the same
        user can run models against it.
        """
        dataset_id = params["dataset_id"].replace("__", "/")
        if not self.warehouse.exists(dataset_id):
            return 404, problem(404, "no such dataset",
                                f"no dataset {dataset_id!r}", retryable=False)
        principal = request.headers.get("X-Principal")
        if self.policy is not None:
            from repro.data.access import AccessDenied
            try:
                self.policy.check(dataset_id, principal)
            except AccessDenied as err:
                return 403, problem(403, "access denied", str(err),
                                    retryable=False)
        series = self.warehouse.get_series(dataset_id)
        return RestCacheable(
            body={
                "datasetId": dataset_id,
                "start": series.start,
                "dt": series.dt,
                "values": series.values,
                "units": series.units,
            },
            etag=self.warehouse.etag_of(dataset_id),
        )

    @staticmethod
    def _validate(body: Dict[str, Any]) -> Optional[str]:
        for field in ("owner", "name", "dt", "values"):
            if not body.get(field):
                return f"missing field {field!r}"
        if "/" in body["name"] or "/" in body["owner"]:
            return "owner and name must not contain '/'"
        try:
            dt = float(body["dt"])
        except (TypeError, ValueError):
            return "dt must be a number"
        if dt <= 0:
            return "dt must be positive"
        values = body["values"]
        if not isinstance(values, (list, tuple)) or len(values) < 2:
            return "values must be a list of at least two samples"
        try:
            floats = [float(v) for v in values]
        except (TypeError, ValueError):
            return "values must be numeric"
        if any(math.isinf(v) for v in floats):
            return "values must be finite"
        if any(v < 0 for v in floats if not math.isnan(v)):
            return "rainfall values must be non-negative"
        return None

"""Flot-like chart specifications.

The real portal plots with the Flot Javascript library; the reproduction
produces the *specification* a Flot call would consume — series of
(x, y) points, axis labels, threshold annotations — and can render it to
JSON (for a hypothetical browser) or ASCII (for the runnable examples).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hydrology.timeseries import TimeSeries


def _escape(text: str) -> str:
    """Minimal XML escaping for SVG text nodes."""
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


@dataclass
class Series:
    """One plotted line/bar series."""

    label: str
    points: List[Tuple[float, float]]
    kind: str = "line"          # "line" | "bars" | "band"
    units: str = ""

    @staticmethod
    def from_timeseries(ts: TimeSeries, label: str = "",
                        kind: str = "line") -> "Series":
        """Build a series from a :class:`TimeSeries` (x in hours)."""
        points = [(t / 3600.0, v) for t, v in zip(ts.times(), ts.values)
                  if not math.isnan(v)]
        return Series(label=label or ts.name, points=points, kind=kind,
                      units=ts.units)

    def y_max(self) -> float:
        """Largest y value (0 when empty)."""
        return max((y for _x, y in self.points), default=0.0)


@dataclass
class ChartSpec:
    """A complete chart: series, axes, annotations."""

    title: str
    series: List[Series] = field(default_factory=list)
    x_label: str = "time (h)"
    y_label: str = ""
    annotations: Dict[str, float] = field(default_factory=dict)  # label -> y

    def add(self, series: Series) -> "ChartSpec":
        """Append a series; returns self for chaining."""
        self.series.append(series)
        return self

    def add_threshold(self, label: str, value: float) -> "ChartSpec":
        """Add a horizontal threshold annotation (flood warning line)."""
        self.annotations[label] = value
        return self

    def add_band(self, lower: TimeSeries, upper: TimeSeries,
                 label: str = "uncertainty") -> "ChartSpec":
        """Add an uncertainty band (two 'band' series a renderer fills).

        The presentation stakeholders asked for: model output shown with
        its bounds, not as a single overconfident line.
        """
        self.series.append(Series.from_timeseries(
            lower, label=f"{label}:lower", kind="band"))
        self.series.append(Series.from_timeseries(
            upper, label=f"{label}:upper", kind="band"))
        return self

    def bands(self) -> List[Tuple[Series, Series]]:
        """The (lower, upper) band pairs in this spec."""
        band_series = [s for s in self.series if s.kind == "band"]
        return [(band_series[i], band_series[i + 1])
                for i in range(0, len(band_series) - 1, 2)]

    def to_json(self) -> str:
        """The spec as JSON (what the browser-side Flot call would take)."""
        return json.dumps({
            "title": self.title,
            "xLabel": self.x_label,
            "yLabel": self.y_label,
            "annotations": self.annotations,
            "series": [
                {"label": s.label, "kind": s.kind, "units": s.units,
                 "points": s.points}
                for s in self.series
            ],
        })

    def to_svg(self, width: int = 640, height: int = 320,
               margin: int = 40) -> str:
        """A standalone SVG rendering any browser can display.

        Bands are filled polygons behind the lines; thresholds are
        dashed horizontal rules; axes carry min/max labels.  This is the
        server-side fallback renderer — the live portal draws with Flot
        from :meth:`to_json`.
        """
        lines = [s for s in self.series if s.kind == "line" and s.points]
        bands = self.bands()
        all_points = [p for s in self.series for p in s.points]
        if not all_points:
            return (f'<svg xmlns="http://www.w3.org/2000/svg" '
                    f'width="{width}" height="{height}"><text x="10" '
                    f'y="20">{_escape(self.title)} (no data)</text></svg>')
        xs = [x for x, _y in all_points]
        ys = [y for _x, y in all_points] + list(self.annotations.values())
        x_min, x_max = min(xs), max(xs)
        y_min, y_max = min(0.0, min(ys)), max(ys) or 1.0
        span_x = (x_max - x_min) or 1.0
        span_y = (y_max - y_min) or 1.0

        def sx(x):
            return margin + (x - x_min) / span_x * (width - 2 * margin)

        def sy(y):
            return height - margin - (y - y_min) / span_y \
                * (height - 2 * margin)

        palette = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e"]
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}">',
            f'<text x="{margin}" y="20" font-size="14" '
            f'font-weight="bold">{_escape(self.title)}</text>',
            f'<line x1="{margin}" y1="{height - margin}" x2="{width - margin}" '
            f'y2="{height - margin}" stroke="#333"/>',
            f'<line x1="{margin}" y1="{margin}" x2="{margin}" '
            f'y2="{height - margin}" stroke="#333"/>',
            f'<text x="{margin}" y="{height - margin + 16}" '
            f'font-size="10">{x_min:g}</text>',
            f'<text x="{width - margin - 20}" y="{height - margin + 16}" '
            f'font-size="10">{x_max:g} {_escape(self.x_label)}</text>',
            f'<text x="4" y="{margin}" font-size="10">{y_max:.3g}</text>',
            f'<text x="4" y="{height - margin}" font-size="10">'
            f'{y_min:g}</text>',
        ]
        for lower, upper in bands:
            ring = ([(sx(x), sy(y)) for x, y in lower.points]
                    + [(sx(x), sy(y)) for x, y in reversed(upper.points)])
            points_attr = " ".join(f"{x:.1f},{y:.1f}" for x, y in ring)
            parts.append(f'<polygon points="{points_attr}" '
                         f'fill="#1f77b4" fill-opacity="0.15" stroke="none"/>')
        for i, series in enumerate(lines):
            colour = palette[i % len(palette)]
            points_attr = " ".join(f"{sx(x):.1f},{sy(y):.1f}"
                                   for x, y in series.points)
            parts.append(f'<polyline points="{points_attr}" fill="none" '
                         f'stroke="{colour}" stroke-width="1.5"/>')
            parts.append(f'<text x="{width - margin - 130}" '
                         f'y="{margin + 14 * i}" font-size="11" '
                         f'fill="{colour}">{_escape(series.label)}</text>')
        for label, value in self.annotations.items():
            y = sy(value)
            parts.append(f'<line x1="{margin}" y1="{y:.1f}" '
                         f'x2="{width - margin}" y2="{y:.1f}" '
                         f'stroke="#d62728" stroke-dasharray="6,4"/>')
            parts.append(f'<text x="{margin + 4}" y="{y - 4:.1f}" '
                         f'font-size="10" fill="#d62728">'
                         f'{_escape(label)}</text>')
        parts.append("</svg>")
        return "".join(parts)

    def to_ascii(self, width: int = 72, height: int = 14) -> str:
        """A terminal rendering of the first line series (plus thresholds)."""
        lines = [self.title, "=" * min(len(self.title), width)]
        line_series = [s for s in self.series if s.kind == "line" and s.points]
        if not line_series:
            lines.append("(no data)")
            return "\n".join(lines)
        main = line_series[0]
        ys = [y for _x, y in main.points]
        y_max = max(max(ys), max(self.annotations.values(), default=0.0))
        y_max = y_max or 1.0
        columns = min(width, len(ys))
        bucket = max(1, math.ceil(len(ys) / columns))
        sampled = [max(ys[i:i + bucket]) for i in range(0, len(ys), bucket)]
        grid = [[" "] * len(sampled) for _ in range(height)]
        for x, y in enumerate(sampled):
            bar = int(round((y / y_max) * (height - 1)))
            for row in range(bar + 1):
                grid[height - 1 - row][x] = "█" if row == bar else "│"
        for label, value in self.annotations.items():
            row = height - 1 - int(round((value / y_max) * (height - 1)))
            if 0 <= row < height:
                for x in range(len(sampled)):
                    if grid[row][x] == " ":
                        grid[row][x] = "-"
        lines.extend("".join(row) for row in grid)
        lines.append(f"0h{' ' * (len(sampled) - 6)}{main.points[-1][0]:.0f}h")
        lines.append(f"peak {max(ys):.2f} {main.units}  "
                     + "  ".join(f"{k}={v:g}" for k, v in
                                 self.annotations.items()))
        return "\n".join(lines)

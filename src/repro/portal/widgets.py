"""Visualization and modelling widgets (Figures 5 and 6).

Widgets are the "bespoke web interfaces ... developed to suit the
particular factors in question".  Three are reproduced:

* :class:`TimeSeriesWidget` — live sensor data "presented as time
  series graphs";
* :class:`MultimodalWidget` — "water temperature and turbidity linked
  with the corresponding webcam image taken roughly at the same time";
* :class:`ModellingWidget` — the LEFT flagship: scenario buttons,
  parameter sliders that "default to the settings for each scenario",
  on-demand cloud model runs, hydrograph plots and run comparison.

The modelling widget talks WPS over the simulated network and always
addresses the instance its session currently points at, so broker-driven
migrations are transparent — exactly the property the stateless REST
design buys.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.broker.sessions import UserSession
from repro.data.sensors import Sensor
from repro.data.webcam import WebcamArchive, WebcamFrame
from repro.hydrology.scenarios import STANDARD_SCENARIOS
from repro.hydrology.timeseries import TimeSeries
from repro.portal.render import ChartSpec, Series
from repro.resilience import ResilientClient, RetryPolicy
from repro.services.client import RestClient
from repro.services.sos import Observation
from repro.services.transport import HttpResponse, Network
from repro.sim import Signal, Simulator


class WebcamWidget:
    """The webcam marker's widget: latest frame plus a browsable archive."""

    def __init__(self, webcam: WebcamArchive):
        self.webcam = webcam

    def latest_frame(self) -> Optional[WebcamFrame]:
        """The most recent capture (None if the camera never fired)."""
        frames = self.webcam.frames()
        return frames[-1] if frames else None

    def frame_at(self, time: float) -> Optional[WebcamFrame]:
        """The capture nearest to ``time``."""
        return self.webcam.nearest(time)

    def filmstrip(self, begin: float, end: float,
                  max_frames: int = 12) -> List[WebcamFrame]:
        """An evenly thinned selection of frames for the strip view."""
        frames = self.webcam.window(begin, end)
        if len(frames) <= max_frames:
            return frames
        step = len(frames) / max_frames
        return [frames[int(i * step)] for i in range(max_frames)]

    def stage_series(self, begin: float, end: float) -> List[Tuple[float, float]]:
        """(time, stage) points from frames tagged with river stage."""
        return [(f.time, f.tags["stage_m"])
                for f in self.webcam.window(begin, end)
                if "stage_m" in f.tags]


class TimeSeriesWidget:
    """A time-series graph over one sensor's observations."""

    def __init__(self, sensor: Sensor):
        self.sensor = sensor

    def chart(self, begin: float, end: float) -> ChartSpec:
        """The Flot spec for the sensor's window."""
        observations = self.sensor.window(begin, end)
        description = self.sensor.description
        points = [(obs.time / 3600.0, obs.value) for obs in observations]
        spec = ChartSpec(
            title=f"{description.observed_property} at "
                  f"{description.procedure_id}",
            y_label=f"{description.observed_property} ({description.units})",
        )
        spec.add(Series(label=description.procedure_id, points=points,
                        units=description.units))
        return spec

    def latest_value(self) -> Optional[float]:
        """The most recent observation's value."""
        latest = self.sensor.latest()
        return latest.value if latest else None


@dataclass
class MultimodalView:
    """One time-aligned multimodal snapshot."""

    time: float
    observations: Dict[str, Observation]
    frame: Optional[WebcamFrame]

    def alignment_error(self) -> float:
        """Largest time offset between the snapshot and its parts."""
        offsets = [abs(obs.time - self.time)
                   for obs in self.observations.values()]
        if self.frame is not None:
            offsets.append(abs(self.frame.time - self.time))
        return max(offsets, default=0.0)


class MultimodalWidget:
    """Combined sensors + webcam view (Figure 5)."""

    def __init__(self, sensors: List[Sensor], webcam: WebcamArchive):
        if not sensors:
            raise ValueError("need at least one sensor")
        self.sensors = sensors
        self.webcam = webcam

    def view_at(self, time: float) -> MultimodalView:
        """The nearest observation of each modality to ``time``."""
        observations: Dict[str, Observation] = {}
        for sensor in self.sensors:
            candidates = sensor.observations
            if candidates:
                nearest = min(candidates, key=lambda o: abs(o.time - time))
                observations[sensor.description.observed_property] = nearest
        return MultimodalView(time=time, observations=observations,
                              frame=self.webcam.nearest(time))

    def chart(self, begin: float, end: float) -> ChartSpec:
        """All sensor series overlaid, webcam capture times annotated."""
        spec = ChartSpec(title="Multimodal view")
        for sensor in self.sensors:
            description = sensor.description
            points = [(obs.time / 3600.0, obs.value)
                      for obs in sensor.window(begin, end)]
            spec.add(Series(label=description.observed_property,
                            points=points, units=description.units))
        spec.annotations["webcam frames"] = float(
            len(self.webcam.window(begin, end)))
        return spec


@dataclass
class SliderSpec:
    """One parameter slider, built from the WPS DescribeProcess document."""

    name: str
    minimum: float
    maximum: float
    value: Optional[float] = None
    abstract: str = ""

    def set(self, value: float) -> None:
        """Move the slider, enforcing its bounds."""
        if not self.minimum <= value <= self.maximum:
            raise ValueError(f"slider {self.name!r}: {value} outside "
                             f"[{self.minimum}, {self.maximum}]")
        self.value = value


@dataclass
class ModelRun:
    """One completed model run kept for comparison."""

    scenario: str
    inputs: Dict[str, Any]
    outputs: Dict[str, Any]
    requested_at: float
    completed_at: float

    @property
    def round_trip(self) -> float:
        """User-perceived latency of the run."""
        return self.completed_at - self.requested_at

    def hydrograph(self) -> TimeSeries:
        """The returned hydrograph as a TimeSeries."""
        return TimeSeries(0.0, self.outputs["dt_seconds"],
                          self.outputs["hydrograph_mm_h"], units="mm/h",
                          name=f"{self.outputs.get('model', 'model')}:"
                               f"{self.scenario}")


#: Sliders the widget exposes for TOPMODEL, in display order.
_TOPMODEL_SLIDERS = ("m", "srmax", "td", "q0_mm_h")

HELP_TEXT = (
    "The hydrograph shows how quickly rain reaching the ground becomes "
    "flow at your catchment outlet. Choose a land-use scenario with the "
    "buttons: each sets the model sliders to values agreed with local "
    "stakeholders. Move the sliders to explore 'what if' questions - "
    "the flood threshold line shows when flow would put property at "
    "risk. Every run executes in the cloud; nothing is installed on "
    "your device."
)


#: How patient the widget is overall: sessions queue for replicas during
#: flash crowds and public instances take minutes to boot, so the widget
#: waits out provisioning rather than surfacing an error to the user.
WIDGET_DEADLINE = 3600.0

#: Widget-side retry policy — generous, because the user's alternative
#: is a spinner followed by an error page.  Jittered exponential backoff
#: spreads stampeding retries; ``attempt_timeout`` is overridden per
#: call by ``request_timeout`` (long model runs need long waits).
WIDGET_RETRY = RetryPolicy(max_attempts=10, base_delay=4.0, max_delay=60.0,
                           deadline=WIDGET_DEADLINE)


class ModellingWidget:
    """The LEFT modelling widget (Figure 6).

    All traffic goes through the typed v1 :class:`RestClient` — the
    widget no longer hand-rolls retry loops; the resilience fabric
    (retry/backoff, breakers, admission, address-waiting) masks
    migrations, crashes and overload from the user.
    """

    def __init__(self, sim: Simulator, network: Network,
                 session: UserSession, process_id: str,
                 flood_threshold_mm_h: float = 2.0,
                 request_timeout: float = 120.0,
                 resilient: Optional[ResilientClient] = None):
        self.sim = sim
        self.network = network
        self.session = session
        self.process_id = process_id
        self.flood_threshold_mm_h = flood_threshold_mm_h
        self.request_timeout = request_timeout
        self.scenario = "baseline"
        self.sliders: Dict[str, SliderSpec] = {}
        self.runs: List[ModelRun] = []
        self.errors: List[str] = []
        self._run_ids = itertools.count()
        if resilient is None:
            resilient = ResilientClient(sim, network, service="wps",
                                        policy=WIDGET_RETRY)
        # the address is a callable: every retry re-reads the session's
        # assignment, so broker-driven migrations are followed for free
        self.client = RestClient(
            sim, network, lambda: self.session.instance_address,
            resilient=resilient, deadline=WIDGET_DEADLINE)

    # -- widget chrome -----------------------------------------------------------

    @property
    def scenario_buttons(self) -> List[str]:
        """The four scenario buttons, display order."""
        return list(STANDARD_SCENARIOS)

    def help_text(self) -> str:
        """The educational help panel text."""
        return HELP_TEXT

    def load(self) -> Signal:
        """Fetch DescribeProcess and build the sliders.

        Returns a signal fired with True on success.
        """
        done = self.sim.signal("widget.load")
        self.client.trace = self.session.trace_context

        def loader():
            response = yield self.client.describe_process(
                self.process_id)
            if not (isinstance(response, HttpResponse) and response.ok):
                self.errors.append(f"load failed: {response!r}")
                done.fire(False)
                return
            for spec in response.body["inputs"]:
                if spec["name"] in _TOPMODEL_SLIDERS and \
                        spec["minimum"] is not None:
                    self.sliders[spec["name"]] = SliderSpec(
                        name=spec["name"],
                        minimum=spec["minimum"],
                        maximum=spec["maximum"],
                        value=spec["default"],
                        abstract=spec.get("abstract") or "",
                    )
            done.fire(True)

        self.sim.spawn(loader(), name="widget.load")
        return done

    def select_scenario(self, key: str) -> None:
        """Press a scenario button; sliders snap to its defaults."""
        if key not in STANDARD_SCENARIOS:
            raise ValueError(f"unknown scenario {key!r}")
        self.scenario = key
        defaults = STANDARD_SCENARIOS[key].parameter_updates
        for name, slider in self.sliders.items():
            if name in defaults:
                slider.set(min(slider.maximum,
                               max(slider.minimum, defaults[name])))

    def set_slider(self, name: str, value: float) -> None:
        """Move one slider (expert exploration of sensitivity)."""
        if name not in self.sliders:
            raise KeyError(f"no slider {name!r}")
        self.sliders[name].set(value)

    # -- model execution ------------------------------------------------------------

    def run(self, **extra_inputs: Any) -> Signal:
        """Execute the model in the cloud with the current settings.

        Returns a signal fired with the :class:`ModelRun` (or ``None``
        on failure).  One automatic retry covers the
        migration/instance-replacement window.
        """
        done = self.sim.signal("widget.run")
        self.client.trace = self.session.trace_context
        inputs: Dict[str, Any] = {"scenario": self.scenario}
        for name, slider in self.sliders.items():
            if slider.value is not None:
                inputs[name] = slider.value
        inputs.update(extra_inputs)
        requested_at = self.sim.now
        # one key per button press: the generous widget retry policy can
        # replay the execute as often as it likes, the server runs the
        # model once and every replay collects the original response
        run_key = f"{self.session.session_id}:run:{next(self._run_ids)}"

        def runner():
            # address waits (a migration or replacement may leave the
            # session briefly unassigned), 503 backoff and crash retries
            # all live in the resilience fabric now
            response = yield self.client.execute_wps(
                self.process_id, inputs, timeout=self.request_timeout,
                idempotency_key=run_key)
            if not (isinstance(response, HttpResponse) and response.ok):
                self.errors.append(f"run failed: {response!r}")
                done.fire(None)
                return
            run = ModelRun(
                scenario=self.scenario,
                inputs=dict(inputs),
                outputs=response.body["outputs"],
                requested_at=requested_at,
                completed_at=self.sim.now,
            )
            self.runs.append(run)
            done.fire(run)

        self.sim.spawn(runner(), name="widget.run")
        return done

    def run_async(self, poll_interval: float = 5.0,
                  max_wait: float = 900.0, **extra_inputs: Any) -> Signal:
        """Execute via asynchronous WPS: accept now, poll statusLocation.

        Long ensemble or uncertainty runs shouldn't hold an HTTP request
        open; the async path returns a statusLocation immediately and
        the widget polls it — against *any* replica, since execution
        status lives in shared storage, not on the accepting server.
        """
        done = self.sim.signal("widget.run_async")
        self.client.trace = self.session.trace_context
        inputs: Dict[str, Any] = {"scenario": self.scenario}
        for name, slider in self.sliders.items():
            if slider.value is not None:
                inputs[name] = slider.value
        inputs.update(extra_inputs)
        requested_at = self.sim.now
        run_key = f"{self.session.session_id}:run:{next(self._run_ids)}"

        def runner():
            accept = yield self.client.execute_wps(
                self.process_id, inputs, mode="async",
                timeout=self.request_timeout, idempotency_key=run_key)
            if not (isinstance(accept, HttpResponse)
                    and accept.status == 202):
                self.errors.append(f"async accept failed: {accept!r}")
                done.fire(None)
                return
            location = accept.body["statusLocation"]
            deadline = self.sim.now + max_wait
            while self.sim.now < deadline:
                yield poll_interval
                status = yield self.client.poll_status(location)
                if not (isinstance(status, HttpResponse) and status.ok):
                    continue  # a migration blip; keep polling
                state = status.body["status"]
                if state == "succeeded":
                    run = ModelRun(
                        scenario=self.scenario,
                        inputs=dict(inputs),
                        outputs=status.body["outputs"],
                        requested_at=requested_at,
                        completed_at=self.sim.now,
                    )
                    self.runs.append(run)
                    done.fire(run)
                    return
                if state == "failed":
                    self.errors.append(
                        f"async run failed: {status.body.get('error')}")
                    done.fire(None)
                    return
            self.errors.append("async run timed out")
            done.fire(None)

        self.sim.spawn(runner(), name="widget.run_async")
        return done

    # -- output ------------------------------------------------------------------------

    def hydrograph_chart(self, run: Optional[ModelRun] = None) -> ChartSpec:
        """The hydrograph plot for one run (default: the latest)."""
        if run is None:
            if not self.runs:
                raise ValueError("no runs yet")
            run = self.runs[-1]
        spec = ChartSpec(
            title=f"Flood hydrograph - {run.scenario}",
            y_label="flow (mm/h)",
        )
        spec.add(Series.from_timeseries(run.hydrograph()))
        # ensemble runs carry their structural spread: present the
        # uncertainty bounds the stakeholders asked for
        if "lower_mm_h" in run.outputs and "upper_mm_h" in run.outputs:
            dt = run.outputs["dt_seconds"]
            spec.add_band(
                TimeSeries(0.0, dt, run.outputs["lower_mm_h"],
                           units="mm/h", name="p10"),
                TimeSeries(0.0, dt, run.outputs["upper_mm_h"],
                           units="mm/h", name="p90"),
                label="structure spread")
        spec.add_threshold("flood threshold", self.flood_threshold_mm_h)
        return spec

    def comparison_chart(self) -> ChartSpec:
        """All stored runs overlaid — "comparison between model runs"."""
        if not self.runs:
            raise ValueError("no runs yet")
        spec = ChartSpec(title="Scenario comparison", y_label="flow (mm/h)")
        for run in self.runs:
            spec.add(Series.from_timeseries(run.hydrograph(),
                                            label=run.scenario))
        spec.add_threshold("flood threshold", self.flood_threshold_mm_h)
        return spec

    def summary_table(self) -> List[Dict[str, Any]]:
        """Peak/volume/threshold summary per stored run."""
        return [
            {
                "scenario": run.scenario,
                "peak_mm_h": run.outputs["peak_mm_h"],
                "peak_time_hours": run.outputs["peak_time_hours"],
                "volume_mm": run.outputs["volume_mm"],
                "threshold_exceeded": run.outputs["threshold_exceeded"],
                "round_trip_s": run.round_trip,
            }
            for run in self.runs
        ]


class CatchmentDashboard:
    """The stakeholder landing view, served from materialized views.

    Where the earlier widgets pull raw observations and recompute
    aggregates client-side, the dashboard reads the CQRS read API:
    per-catchment rolling stats (ETag-revalidated — an unchanged
    catchment costs header bytes), the latest-observation table
    (followed cursor page by cursor page) and the recent-runs index.
    This is the read path the million-user portal scales on.
    """

    def __init__(self, sim: Simulator, network: Network,
                 address: Any, catchment: str,
                 resilient: Optional[ResilientClient] = None):
        self.sim = sim
        self.catchment = catchment
        self.errors: List[str] = []
        self.client = RestClient(sim, network, address,
                                 resilient=resilient, service="read",
                                 deadline=WIDGET_DEADLINE)
        self.stats: Optional[Dict[str, Any]] = None
        self.latest: List[Dict[str, Any]] = []
        self.recent_runs: List[Dict[str, Any]] = []

    def refresh(self, page_limit: int = 50, run_limit: int = 20) -> Signal:
        """Pull stats, the full latest table and recent runs.

        Returns a signal fired with ``True`` when every panel loaded.
        The latest table is collected by following ``nextCursor`` until
        the server stops offering one.
        """
        done = self.sim.signal(f"dashboard.{self.catchment}")

        def loader():
            ok = True
            response = yield self.client.catchment_stats(self.catchment)
            if isinstance(response, HttpResponse) and response.ok:
                self.stats = response.body
            else:
                ok = False
                self.errors.append(f"stats failed: {response!r}")
            rows: List[Dict[str, Any]] = []
            cursor: Optional[str] = None
            while True:
                response = yield self.client.latest_observations(
                    cursor=cursor, limit=page_limit)
                if not (isinstance(response, HttpResponse) and response.ok):
                    ok = False
                    self.errors.append(f"latest failed: {response!r}")
                    break
                rows.extend(response.body.get("observations", []))
                cursor = response.body.get("nextCursor")
                if not cursor:
                    break
            self.latest = [row for row in rows
                           if row.get("catchment") in ("", self.catchment)]
            response = yield self.client.list_runs(limit=run_limit)
            if isinstance(response, HttpResponse) and response.ok:
                self.recent_runs = response.body.get("runs", [])
            else:
                ok = False
                self.errors.append(f"runs failed: {response!r}")
            done.fire(ok)

        self.sim.spawn(loader(), name=f"dashboard.{self.catchment}")
        return done

    def summary(self) -> Dict[str, Any]:
        """The dashboard's rendered state, one dict per panel."""
        return {
            "catchment": self.catchment,
            "stats": self.stats,
            "latestCount": len(self.latest),
            "recentRuns": [
                {"runId": run.get("runId"), "status": run.get("status")}
                for run in self.recent_runs
            ],
        }

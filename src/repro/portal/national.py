"""The national flood outlook — the catchment-scale exemplar beside LEFT.

EVOp built exemplars "focusing on different levels of scale"; beside the
local tool the portal answered questions like "is my local area
susceptible to flood after the past few days' rainfall?" at national
scope.  :class:`NationalOutlook` runs every study catchment's model on
its recent weather, classifies each against its flood-warning threshold,
and renders the dashboard table and chart the portal's landing view
would show.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.data.catchments import Catchment, STUDY_CATCHMENTS
from repro.data.weather import DesignStorm
from repro.hydrology.hydrograph import HydrographAnalysis
from repro.hydrology.timeseries import TimeSeries
from repro.hydrology.topmodel import TopmodelParameters
from repro.portal.render import ChartSpec, Series
from repro.sim import RandomStreams


class FloodStatus(enum.Enum):
    """Traffic-light classification against the warning threshold."""

    NORMAL = "normal"        # peak below half the threshold
    ALERT = "alert"          # peak within [0.5, 1.0) of the threshold
    FLOOD = "flood"          # threshold exceeded

    @staticmethod
    def classify(peak: float, threshold: float) -> "FloodStatus":
        """Classify a forecast peak."""
        if peak > threshold:
            return FloodStatus.FLOOD
        if peak >= 0.5 * threshold:
            return FloodStatus.ALERT
        return FloodStatus.NORMAL


@dataclass
class CatchmentOutlook:
    """One catchment's entry on the national dashboard."""

    catchment: Catchment
    peak_mm_h: float
    peak_discharge_m3s: float
    threshold_mm_h: float
    status: FloodStatus
    recent_rainfall_mm: float
    flow: TimeSeries


class NationalOutlook:
    """Runs the outlook across a set of catchments."""

    def __init__(self, catchments: Optional[Dict[str, Catchment]] = None,
                 streams: Optional[RandomStreams] = None,
                 horizon_hours: int = 24 * 7):
        self.catchments = dict(catchments or STUDY_CATCHMENTS)
        self.streams = streams or RandomStreams()
        self.horizon_hours = horizon_hours

    def assess(self, storm: Optional[DesignStorm] = None,
               antecedent_wetness: float = 0.3) -> List[CatchmentOutlook]:
        """Model every catchment over the horizon; returns the outlooks.

        ``storm`` superimposes an incoming forecast event on each
        catchment's stochastic weather (the 'what the radar shows'
        input); ``antecedent_wetness`` sets the initial baseflow.
        """
        outlooks = []
        for name, catchment in sorted(self.catchments.items()):
            generator = catchment.weather_generator(self.streams.fork(name))
            if storm is not None:
                rain = generator.rainfall_with_storm(
                    self.horizon_hours, storm, start_day_of_year=330)
            else:
                rain = generator.rainfall(self.horizon_hours,
                                          start_day_of_year=330)
            result = catchment.topmodel().run(
                rain,
                parameters=TopmodelParameters(q0_mm_h=antecedent_wetness))
            analysis = HydrographAnalysis(result.flow, rain)
            peak = analysis.peak()
            outlooks.append(CatchmentOutlook(
                catchment=catchment,
                peak_mm_h=peak,
                peak_discharge_m3s=peak * catchment.area_km2 * 1e6 * 1e-3
                / 3600.0,
                threshold_mm_h=catchment.flood_threshold_mm_h,
                status=FloodStatus.classify(peak,
                                            catchment.flood_threshold_mm_h),
                recent_rainfall_mm=rain.total(),
                flow=result.flow,
            ))
        return outlooks

    @staticmethod
    def dashboard_rows(outlooks: List[CatchmentOutlook]) -> List[List]:
        """The dashboard table, worst status first."""
        severity = {FloodStatus.FLOOD: 0, FloodStatus.ALERT: 1,
                    FloodStatus.NORMAL: 2}
        ordered = sorted(outlooks, key=lambda o: severity[o.status])
        return [[o.catchment.display_name, o.catchment.country,
                 o.recent_rainfall_mm, o.peak_mm_h, o.peak_discharge_m3s,
                 o.threshold_mm_h, o.status.value.upper()]
                for o in ordered]

    @staticmethod
    def chart(outlooks: List[CatchmentOutlook]) -> ChartSpec:
        """All catchment hydrographs overlaid, thresholds annotated."""
        spec = ChartSpec(title="National flood outlook",
                         y_label="flow (mm/h)")
        for outlook in outlooks:
            spec.add(Series.from_timeseries(
                outlook.flow, label=outlook.catchment.display_name))
        worst = max(outlooks, key=lambda o: o.peak_mm_h / o.threshold_mm_h)
        spec.add_threshold(
            f"{worst.catchment.display_name} threshold",
            worst.threshold_mm_h)
        return spec

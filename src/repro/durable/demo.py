"""``python -m repro chaos`` — durable execution in ninety seconds.

Boots a small cloud, starts a journaled workflow on one executor, kills
the executor mid-stage with the fault injector, lets the health monitor
notice, and watches the recovery manager re-adopt the run on a
replacement — printing the journal as it grows so the write-ahead /
replay story is visible.
"""

from __future__ import annotations

from repro.broker.health import HealthMonitor, HealthVerdict
from repro.cloud import (
    BlobStore,
    FaultInjector,
    ImageKind,
    MachineImage,
    MEDIUM,
    OpenStackCloud,
)
from repro.durable import JournalStore, RecoveryManager, replay
from repro.services import Network, WpsService
from repro.services.wps import InputSpec, ProcessDescription, WpsProcess
from repro.sim import Simulator
from repro.workflow import (
    CloudWorkflowEngine,
    ServiceCall,
    Workflow,
    WorkflowNode,
    service_node,
)


def _slow_wps(sim, seconds: float) -> WpsService:
    store = BlobStore(sim)
    service = WpsService(sim, "chaos", store.create_container("status"))
    description = ProcessDescription(
        identifier="storm-model", title="Storm impact model",
        inputs=[InputSpec("depth", "float", required=False, default=1.0)],
        outputs=["peak"])
    service.add_process(WpsProcess(
        description,
        run=lambda inputs: {"peak": inputs["depth"] * 2.0},
        cost=lambda inputs: seconds))
    return service


def _workflow(address_of) -> Workflow:
    wf = Workflow("chaos-study")
    wf.add(WorkflowNode("choose-storm",
                        lambda p, u: {"depth": p["depth"]},
                        params_used=("depth",)))
    wf.add(service_node(
        "run-model",
        ServiceCall(process_id="storm-model", address_of=address_of,
                    build_inputs=lambda p, u: u["choose-storm"]),
        depends_on=("choose-storm",)))
    return wf


def run_chaos() -> None:
    """The chaos demo: crash an executor, watch the run survive."""
    print("repro chaos - durable execution under an executor crash")
    sim = Simulator()
    network = Network(sim)
    cloud = OpenStackCloud(sim, total_vcpus=16)
    image = MachineImage(image_id="img-0", name="svc",
                         kind=ImageKind.STREAMLINED)
    wps_host = cloud.launch(image, MEDIUM)
    executor = cloud.launch(image, MEDIUM)
    replacement = cloud.launch(image, MEDIUM)
    sim.run()
    print(f"booted: wps={wps_host.instance_id} "
          f"executor={executor.instance_id} "
          f"replacement={replacement.instance_id}")

    wps = _slow_wps(sim, seconds=8.0)
    wps.replica(wps_host).bind(network)
    journals = JournalStore(sim, BlobStore(sim, name="chaos-store"))
    monitor = HealthMonitor(sim, interval=1.0, window=2)
    monitor.watch(executor)
    engine = CloudWorkflowEngine(sim, network, store=journals,
                                 executor=executor, lease_ttl=10.0)
    recovery = RecoveryManager(
        sim, journals, monitor=monitor,
        engine_factory=lambda: CloudWorkflowEngine(
            sim, network, store=journals, executor=replacement,
            lease_ttl=10.0))
    workflow = _workflow(lambda: wps_host.address)
    recovery.register_workflow(workflow)
    injector = FaultInjector(sim, [cloud])

    t0 = sim.now
    done = engine.run(workflow, {"depth": 30.0})
    run_id = journals.run_ids()[0]
    print(f"\nsubmitted journaled run {run_id} on {executor.instance_id}")
    injector.crash_at(2.0, executor, cause="chaos demo")
    print("scheduled: executor crash 2s in (mid run-model)")
    sim.run(until=t0 + 60.0)

    print(f"\njournal of {run_id}:")
    for record in journals.open(run_id).records():
        extra = ""
        if record.kind == "CHECKPOINT":
            extra = f" stage={record.payload.get('node_id')}"
        elif record.kind in ("STARTED", "ADOPTED", "LEASE"):
            extra = f" owner={record.payload.get('owner')}"
        print(f"  t={record.time:6.1f}  #{record.seq:02d}  "
              f"{record.kind:10s}{extra}")

    dead = [t for t in monitor.transitions(executor)
            if t.verdict == HealthVerdict.DEAD]
    if dead:
        print(f"\nhealth monitor: {executor.instance_id} "
              f"HEALTHY -> DEAD at t={dead[0].time:.1f} "
              f"(crash was t={t0 + 2.0:.1f})")
    assert done.value is None, "the crashed attempt must not complete"
    reports = recovery.recovered()
    assert reports, "recovery must have re-adopted the run"
    report = reports[0]
    state = replay(journals.open(run_id).records())
    print(f"recovery: adopted at t={report.adopted_at:.1f} on "
          f"{replacement.instance_id}, replayed "
          f"{report.stages_replayed} stage(s) from the journal, "
          f"recomputed only {report.recomputed}")
    print(f"final state: {state.status} after {state.attempts} attempt(s), "
          f"{state.adoptions} adoption(s)")
    print("\nthe run completed despite losing its executor; completed "
          "stages were\nnever re-executed. next: python "
          "benchmarks/bench_durability.py --quick")


if __name__ == "__main__":
    run_chaos()

"""Durable execution: journaled runs that survive their executor.

The paper's portal promises stakeholders a submitted experiment
*completes*; PR 3's resilience fabric hardened the client path, and
this package hardens the work itself:

* :mod:`repro.durable.journal` — write-ahead :class:`RunJournal` on the
  blob store (CRC records, fsync points, torn-tail truncation, leases
  with fencing epochs) and the :class:`JournalStore` namespace.
* :mod:`repro.durable.state` — pure journal replay into
  :class:`RunState`; consistent for every record prefix.
* :mod:`repro.durable.recovery` — :class:`RecoveryManager`: orphan
  scanning, lease-expiry-safe re-adoption on replacement executors.
* :mod:`repro.durable.ensemble` — :class:`DurableSweep`: checkpointed
  parameter sweeps with exactly-once effect publication.
"""

from repro.durable.ensemble import DurableSweep
from repro.durable.journal import (
    ADOPTED,
    CHECKPOINT,
    DONE,
    EFFECT,
    FAILED,
    Fenced,
    JournalRecord,
    JournalStore,
    LEASE,
    LeaseError,
    LeaseState,
    RunJournal,
    SCHEDULED,
    STARTED,
    jsonable,
)
from repro.durable.recovery import RecoveryManager, RecoveryReport
from repro.durable.state import RunState, StageState, replay

__all__ = [
    "ADOPTED",
    "CHECKPOINT",
    "DONE",
    "DurableSweep",
    "EFFECT",
    "FAILED",
    "Fenced",
    "JournalRecord",
    "JournalStore",
    "LEASE",
    "LeaseError",
    "LeaseState",
    "RecoveryManager",
    "RecoveryReport",
    "RunJournal",
    "RunState",
    "SCHEDULED",
    "STARTED",
    "StageState",
    "jsonable",
    "replay",
]

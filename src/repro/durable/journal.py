"""Write-ahead run journal on the simulated blob store.

Durable execution starts from one primitive: an append-only journal of
run lifecycle records that outlives the executor that wrote it.  The
journal lives in :class:`~repro.cloud.storage.BlobStore` containers
(one blob per record, keyed ``<run_id>/<seq>``), so everything the
fault injector can do to storage — outages, torn writes — applies to
the journal too, and recovery reads exactly what a crashed executor
managed to make durable.

Semantics:

* **fsync points** — ``append(..., sync=False)`` buffers in executor
  memory; only ``sync()`` makes records durable.  An executor crash
  (:meth:`RunJournal.crash`) loses the unsynced tail, and may leave the
  first in-flight record *torn* (partially written).
* **CRC-checked records** — every record carries a CRC32 of its
  canonical JSON text; a torn or corrupt record fails verification.
* **torn-tail truncation on open** — :meth:`JournalStore.open` replays
  blobs in sequence order and truncates at the first record that fails
  CRC or breaks the sequence, deleting it and everything after it.
* **leases** — journal-recorded ownership with simulated-clock expiry
  and fencing epochs.  ``sync()`` refuses to append over records a new
  owner wrote (:class:`Fenced`), so a healed-from-blackhole executor
  can never scribble on a run that was re-adopted while it was dark.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.cloud.errors import BlobNotFound
from repro.cloud.storage import BlobStore, Container
from repro.obs.hub import obs_of
from repro.sim import Simulator

# -- record kinds -----------------------------------------------------------

#: A run was submitted: workflow name + parameters (write-ahead).
SCHEDULED = "SCHEDULED"
#: An executor began (or re-began) executing the run.
STARTED = "STARTED"
#: A recovery executor took over an orphaned run.
ADOPTED = "ADOPTED"
#: Progress made durable: a completed stage or an ensemble checkpoint.
CHECKPOINT = "CHECKPOINT"
#: An externally visible effect was applied (dedup key inside).
EFFECT = "EFFECT"
#: Ownership: who may execute this run, until when, at which epoch.
LEASE = "LEASE"
#: Terminal success / terminal failure.
DONE = "DONE"
FAILED = "FAILED"
#: A data-plane stream event (see :mod:`repro.dataplane.stream`): the
#: event-sourced ingest path reuses the journal's CRC-checked record
#: format and torn-tail truncation, with the stream name in the
#: ``run_id`` slot and one durable blob per event.
EVENT = "EVENT"

KINDS = (SCHEDULED, STARTED, ADOPTED, CHECKPOINT, EFFECT, LEASE, DONE,
         FAILED, EVENT)


class LeaseError(RuntimeError):
    """Lease acquisition or renewal failed (held or lost)."""


class Fenced(LeaseError):
    """A write was refused because another owner appended first."""


def jsonable(value: Any) -> Tuple[bool, Any]:
    """``(True, value)`` when ``value`` survives a JSON round trip.

    Journal payloads must be replayable from bytes; anything without a
    JSON form is journaled by ``repr`` only and marked non-replayable.
    """
    try:
        return True, json.loads(json.dumps(value))
    except (TypeError, ValueError):
        return False, None


@dataclass(frozen=True)
class JournalRecord:
    """One durable (or to-be-durable) journal entry."""

    seq: int
    time: float
    run_id: str
    kind: str
    payload: Dict[str, Any]

    def to_text(self) -> str:
        """Serialise with a trailing CRC over the canonical JSON body."""
        body = json.dumps(
            {"seq": self.seq, "t": self.time, "run": self.run_id,
             "kind": self.kind, "payload": self.payload},
            sort_keys=True, separators=(",", ":"))
        return f"{body}|crc={zlib.crc32(body.encode()):08x}"

    @classmethod
    def parse(cls, text: Any) -> Optional["JournalRecord"]:
        """Parse and CRC-verify; ``None`` for torn/corrupt records."""
        if not isinstance(text, str) or "|crc=" not in text:
            return None
        body, _, crc_hex = text.rpartition("|crc=")
        try:
            if int(crc_hex, 16) != zlib.crc32(body.encode()):
                return None
            raw = json.loads(body)
            return cls(seq=raw["seq"], time=raw["t"], run_id=raw["run"],
                       kind=raw["kind"], payload=raw["payload"])
        except (ValueError, KeyError, TypeError):
            return None


@dataclass(frozen=True)
class LeaseState:
    """The journal's current view of run ownership."""

    owner: str
    epoch: int
    expires: float
    ttl: float

    def held_at(self, now: float) -> bool:
        """Whether the lease is still live at ``now``."""
        return now < self.expires


class RunJournal:
    """The write-ahead journal of one run.

    Create via :class:`JournalStore` (``create``/``open``), never
    directly — opening is where torn-tail truncation happens.
    """

    def __init__(self, sim: Simulator, container: Container,
                 run_id: str):
        self.sim = sim
        self._container = container
        self.run_id = run_id
        self._records: List[JournalRecord] = []   # durable + verified
        self._tail: List[JournalRecord] = []      # appended, unsynced
        self._mine: set = set()                   # seqs this writer synced
        self._lease: Optional[LeaseState] = None
        self.truncated_records = 0

    # -- load / refresh ------------------------------------------------------

    def _key(self, seq: int) -> str:
        return f"{self.run_id}/{seq:08d}"

    def _load(self) -> None:
        """Replay the store, truncating the torn tail (open path)."""
        keys = self._container.list(prefix=f"{self.run_id}/")
        expected = 0
        good: List[JournalRecord] = []
        bad_from: Optional[int] = None
        for i, key in enumerate(keys):
            record = self._safe_parse(key)
            if record is None or record.seq != expected:
                bad_from = i
                break
            good.append(record)
            expected += 1
        if bad_from is not None:
            dropped = keys[bad_from:]
            for key in dropped:
                try:
                    self._container.delete(key)
                except BlobNotFound:  # pragma: no cover - defensive
                    pass
            self.truncated_records += len(dropped)
            obs_of(self.sim).events.emit(
                "durable.journal.truncated", run=self.run_id,
                dropped=len(dropped), first_bad=dropped[0])
        self._records = good
        for record in good:
            self._apply(record)

    def _safe_parse(self, key: str) -> Optional[JournalRecord]:
        try:
            return JournalRecord.parse(self._container.get(key).payload)
        except BlobNotFound:  # pragma: no cover - defensive
            return None

    def _refresh(self) -> int:
        """Absorb records another writer appended since we last looked."""
        top = self._records[-1].seq if self._records else -1
        keys = self._container.list(prefix=f"{self.run_id}/")
        absorbed = 0
        foreign = 0
        for key in keys:
            try:
                seq = int(key.rsplit("/", 1)[1])
            except (IndexError, ValueError):  # pragma: no cover
                continue
            if seq <= top:
                continue
            record = self._safe_parse(key)
            if record is None or record.seq != top + 1:
                break
            self._records.append(record)
            self._apply(record)
            top = record.seq
            absorbed += 1
            if record.seq not in self._mine:
                foreign += 1
        return foreign

    # -- append / sync -------------------------------------------------------

    @property
    def next_seq(self) -> int:
        """The sequence number the next appended record will take."""
        base = self._records[-1].seq + 1 if self._records else 0
        return base + len(self._tail)

    def append(self, kind: str, sync: bool = True,
               **payload: Any) -> JournalRecord:
        """Append a record; with ``sync`` (default) it is durable now."""
        if kind not in KINDS:
            raise ValueError(f"unknown journal record kind {kind!r}")
        record = JournalRecord(seq=self.next_seq, time=self.sim.now,
                               run_id=self.run_id, kind=kind,
                               payload=dict(payload))
        self._tail.append(record)
        if sync:
            self.sync()
        return record

    def sync(self) -> int:
        """Make buffered records durable; returns how many were written.

        Before writing, the journal re-reads the store tail: records a
        *different* writer appended since our last look mean the lease
        moved — the write is refused with :class:`Fenced` and the local
        buffer dropped, so a stale executor cannot corrupt the journal.
        """
        foreign = self._refresh()
        if not self._tail:
            return 0
        if foreign:
            self._tail.clear()
            obs_of(self.sim).events.emit("durable.journal.fenced",
                                         run=self.run_id)
            raise Fenced(f"run {self.run_id}: journal advanced by another "
                         f"owner; this executor is fenced")
        written = 0
        base = self._records[-1].seq + 1 if self._records else 0
        for offset, record in enumerate(self._tail):
            renumbered = JournalRecord(
                seq=base + offset, time=record.time, run_id=record.run_id,
                kind=record.kind, payload=record.payload)
            self._container.put(self._key(renumbered.seq),
                                renumbered.to_text())
            self._mine.add(renumbered.seq)
            self._records.append(renumbered)
            self._apply(renumbered)
            written += 1
        self._tail.clear()
        return written

    def crash(self, torn: bool = False) -> int:
        """Simulate executor death mid-write; returns records lost.

        The unsynced tail evaporates with the executor's memory.  With
        ``torn``, the first lost record was in flight to the store when
        the power went: a truncated (CRC-failing) blob is left behind
        for the next open to detect and truncate.
        """
        lost = len(self._tail)
        if torn and self._tail:
            record = self._tail[0]
            base = self._records[-1].seq + 1 if self._records else 0
            text = JournalRecord(seq=base, time=record.time,
                                 run_id=record.run_id, kind=record.kind,
                                 payload=record.payload).to_text()
            self._container.put(self._key(base),
                                text[: max(1, (2 * len(text)) // 3)])
            obs_of(self.sim).events.emit("durable.journal.torn",
                                         run=self.run_id, seq=base)
        self._tail.clear()
        return lost

    def records(self) -> List[JournalRecord]:
        """Durable records, oldest first (unsynced tail excluded)."""
        return list(self._records)

    def pending(self) -> int:
        """Appended-but-unsynced records (lost on crash)."""
        return len(self._tail)

    # -- lease protocol ------------------------------------------------------

    def lease(self) -> Optional[LeaseState]:
        """The current lease record (refreshes from the store first)."""
        self._refresh()
        return self._lease

    def owner_at(self, now: Optional[float] = None) -> Optional[str]:
        """Who holds the run at ``now`` (default: the simulated clock)."""
        state = self.lease()
        when = self.sim.now if now is None else now
        if state is not None and state.held_at(when):
            return state.owner
        return None

    def acquire(self, owner: str, ttl: float) -> int:
        """Take (or retake) the lease; returns the fencing epoch.

        Refused with :class:`LeaseError` while a *different* owner's
        lease is unexpired.  Taking over an expired or released lease
        bumps the epoch, which is what fences the previous owner.
        """
        self._refresh()
        now = self.sim.now
        current = self._lease
        if (current is not None and current.owner != owner
                and current.held_at(now)):
            raise LeaseError(
                f"run {self.run_id} leased by {current.owner!r} until "
                f"t={current.expires:.1f} (now t={now:.1f})")
        if current is None:
            epoch = 1
        elif current.owner == owner:
            epoch = current.epoch
        else:
            epoch = current.epoch + 1
        self.append(LEASE, owner=owner, epoch=epoch,
                    expires=now + ttl, ttl=ttl)
        obs_of(self.sim).events.emit("durable.lease.acquired",
                                     run=self.run_id, owner=owner,
                                     epoch=epoch, ttl=ttl)
        return epoch

    def renew(self, owner: str, ttl: float) -> int:
        """Extend the lease; :class:`LeaseError` if it moved on."""
        self._refresh()
        current = self._lease
        if current is None or current.owner != owner:
            holder = current.owner if current else None
            raise LeaseError(f"run {self.run_id}: lease lost "
                             f"(now held by {holder!r})")
        self.append(LEASE, owner=owner, epoch=current.epoch,
                    expires=self.sim.now + ttl, ttl=ttl)
        return current.epoch

    def release(self, owner: str) -> None:
        """Give the lease up early (expires immediately); idempotent."""
        self._refresh()
        current = self._lease
        if current is None or current.owner != owner:
            return
        self.append(LEASE, owner=owner, epoch=current.epoch,
                    expires=self.sim.now, ttl=0.0)

    def _apply(self, record: JournalRecord) -> None:
        if record.kind == LEASE:
            p = record.payload
            self._lease = LeaseState(owner=p["owner"], epoch=p["epoch"],
                                     expires=p["expires"], ttl=p["ttl"])


class JournalStore:
    """A namespace of run journals plus their bulky payloads.

    Journals hold small CRC-checked records; checkpoint result sets and
    other large values go to a sibling payload container and are
    referenced from records by key — the usual WAL/blob split.
    """

    def __init__(self, sim: Simulator, blobstore: BlobStore,
                 name: str = "run-journals"):
        self.sim = sim
        self.name = name
        self._journals = blobstore.create_container(name)
        self._payloads = blobstore.create_container(f"{name}-payloads")

    # -- journals ------------------------------------------------------------

    def exists(self, run_id: str) -> bool:
        """Whether a journal for ``run_id`` has any durable record."""
        return bool(self._journals.list(prefix=f"{run_id}/"))

    def create(self, run_id: str) -> RunJournal:
        """A fresh journal (the run must not already have one)."""
        if self.exists(run_id):
            raise ValueError(f"journal for run {run_id!r} already exists")
        return RunJournal(self.sim, self._journals, run_id)

    def open(self, run_id: str) -> RunJournal:
        """Open an existing journal, truncating any torn tail."""
        journal = RunJournal(self.sim, self._journals, run_id)
        journal._load()
        return journal

    def open_or_create(self, run_id: str) -> RunJournal:
        """Open when records exist, else a fresh journal."""
        return self.open(run_id) if self.exists(run_id) \
            else self.create(run_id)

    def run_ids(self) -> List[str]:
        """Every run with at least one durable record, sorted."""
        return sorted({key.split("/", 1)[0]
                       for key in self._journals.list()})

    # -- payloads ------------------------------------------------------------

    def put_payload(self, key: str, value: Any) -> str:
        """Store a bulky value; returns the key for journal reference."""
        self._payloads.put(key, value)
        return key

    def get_payload(self, key: str) -> Any:
        """Fetch a previously stored payload."""
        return self._payloads.get(key).payload

    def has_payload(self, key: str) -> bool:
        """Whether ``key`` was stored (and survived faults)."""
        return self._payloads.exists(key)

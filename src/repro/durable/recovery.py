"""Orphan detection and run re-adoption.

When an executor instance dies, every run it owned becomes an *orphan*:
a journal with a STARTED record, no terminal record, and a lease that
will stop being renewed.  The :class:`RecoveryManager` closes the loop
the paper's Load Balancer opens — the LB replaces the instance; the
recovery manager replaces the *work*:

1. A fault verdict (``DEAD``/``WEDGED``/``BLACKHOLED``) arrives from
   the :class:`~repro.broker.health.HealthMonitor`.
2. The manager scans the journal store for in-flight runs owned by the
   condemned instance.
3. For each, it waits out the remaining lease (never adopt a run whose
   owner might still be making progress — that is how split-brain
   happens), re-checks that the run is still orphaned, and re-runs it
   on a replacement engine under the *same run id*.
4. The replacement engine replays the journal first: completed stages
   seed its cache, the lease is re-acquired at a higher epoch (fencing
   the old owner), and execution continues from the first stage the
   journal cannot prove finished.

Replay is at-least-once — the in-flight stage may execute twice across
the crash — but *effects* are exactly-once because they are keyed by
content-addressed cache keys and applied only when absent (see
:mod:`repro.durable.ensemble`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.cloud.errors import StorageUnavailable
from repro.durable import journal as j
from repro.durable.state import RunState, replay
from repro.obs.hub import obs_of
from repro.sim import Signal, Simulator

#: Safety margin added after lease expiry before adopting, simulated
#: seconds.  Guards against adopt-at-the-exact-expiry-instant races.
LEASE_GRACE = 0.5


@dataclass
class RecoveryReport:
    """One completed (or attempted) re-adoption."""

    run_id: str
    instance_id: str
    verdict: str
    detected_at: float
    adopted_at: float = 0.0
    completed_at: float = 0.0
    ok: bool = False
    stages_replayed: int = 0
    recomputed: List[str] = field(default_factory=list)
    error: str = ""


class RecoveryManager:
    """Re-adopts orphaned journaled runs onto replacement executors.

    ``engine_factory`` builds a fresh engine for each adoption — it is a
    zero-arg callable returning anything with
    ``run(workflow, parameters, run_id=...)`` (both engines qualify;
    the cloud engine returns a signal, the local engine a record).
    Workflows must be registered by name so the manager can reconstruct
    the DAG the journal's SCHEDULED record refers to.
    """

    def __init__(self, sim: Simulator, store: j.JournalStore,
                 engine_factory: Optional[Callable[[], Any]] = None,
                 monitor=None):
        self.sim = sim
        self.store = store
        self.engine_factory = engine_factory
        self._workflows: Dict[str, Any] = {}
        self._condemned: set = set()
        self._adopting: set = set()
        self.reports: List[RecoveryReport] = []
        if monitor is not None:
            monitor.on_verdict(self._on_verdict)

    def register_workflow(self, workflow) -> None:
        """Make ``workflow`` adoptable (journals store only its name)."""
        self._workflows[workflow.name] = workflow

    # -- orphan scanning -----------------------------------------------------

    def scan(self) -> List[RunState]:
        """Replayed state of every journaled run, one per run id."""
        return [replay(self.store.open(run_id).records(), run_id=run_id)
                for run_id in self.store.run_ids()]

    def orphans(self, now: Optional[float] = None) -> List[RunState]:
        """In-flight runs whose lease has lapsed — adoptable now."""
        when = self.sim.now if now is None else now
        return [s for s in self.scan() if s.orphaned_at(when)]

    def owned_by(self, instance_id: str) -> List[RunState]:
        """In-flight runs whose journal names ``instance_id`` as owner."""
        return [s for s in self.scan()
                if s.in_flight and s.owner == instance_id]

    # -- verdict-driven recovery ---------------------------------------------

    def _on_verdict(self, instance, verdict) -> None:
        """HealthMonitor callback: fires every sample, so dedup here."""
        if not getattr(verdict, "is_fault", False):
            return
        if instance.instance_id in self._condemned:
            return
        self._condemned.add(instance.instance_id)
        self.sim.spawn(
            self._recover_instance(instance.instance_id, verdict.value),
            name=f"durable.recover.{instance.instance_id}")

    def recover_instance(self, instance_id: str,
                         verdict: str = "manual") -> None:
        """Manually condemn ``instance_id`` and recover its runs."""
        if instance_id in self._condemned:
            return
        self._condemned.add(instance_id)
        self.sim.spawn(self._recover_instance(instance_id, verdict),
                       name=f"durable.recover.{instance_id}")

    def _recover_instance(self, instance_id: str, verdict: str):
        detected = self.sim.now
        obs_of(self.sim).events.emit("durable.recover.triggered",
                                     instance=instance_id, verdict=verdict)
        try:
            owned = self.owned_by(instance_id)
        except StorageUnavailable:
            # the journal store itself is gone (e.g. a whole-region
            # outage took the instance AND its blob store).  Nothing
            # can be adopted from here; un-condemn so a retry after the
            # store heals — or a surviving region working from its
            # replicated journals — can still recover these runs.
            self._condemned.discard(instance_id)
            obs_of(self.sim).events.emit("durable.recover.deferred",
                                         instance=instance_id,
                                         reason="journal store unavailable")
            return
        for state in owned:
            if state.run_id in self._adopting:
                continue
            self._adopting.add(state.run_id)
            report = RecoveryReport(run_id=state.run_id,
                                    instance_id=instance_id,
                                    verdict=verdict, detected_at=detected)
            self.reports.append(report)
            yield from self._adopt_when_safe(state, report)

    def _adopt_when_safe(self, state: RunState, report: RecoveryReport):
        span = obs_of(self.sim).tracer.start_span(
            "durable.recover", kind="recovery",
            attributes={"run_id": state.run_id,
                        "instance": report.instance_id,
                        "verdict": report.verdict})
        # Never adopt while the old owner's lease could still be live —
        # a blackholed executor is unreachable, not provably dead.
        lease = state.lease
        if lease is not None and lease.expires > self.sim.now:
            yield (lease.expires - self.sim.now) + LEASE_GRACE
        try:
            fresh = replay(self.store.open(state.run_id).records(),
                           run_id=state.run_id)
        except StorageUnavailable:
            # store faulted while we waited out the lease
            self._adopting.discard(state.run_id)
            report.error = "journal store unavailable"
            span.finish(error=report.error)
            return
        if not fresh.orphaned_at(self.sim.now):
            report.error = "no longer orphaned"
            span.finish()
            return
        workflow = self._workflows.get(fresh.workflow)
        if workflow is None or self.engine_factory is None:
            report.error = (f"cannot adopt: workflow "
                            f"{fresh.workflow!r} not registered"
                            if workflow is None else
                            "cannot adopt: no engine factory")
            obs_of(self.sim).events.emit("durable.recover.stranded",
                                         run=state.run_id,
                                         reason=report.error)
            span.finish(error=report.error)
            return
        report.adopted_at = self.sim.now
        report.stages_replayed = len(fresh.completed)
        engine = self.engine_factory()
        obs_of(self.sim).events.emit(
            "durable.recover.adopted", run=state.run_id,
            replayed=report.stages_replayed,
            replacement=getattr(engine, "executor_id", "?"))
        try:
            result = engine.run(workflow, fresh.parameters,
                                run_id=state.run_id)
        except j.LeaseError as err:
            report.error = f"lease refused: {err}"
            span.finish(error=report.error)
            return
        if isinstance(result, Signal):
            result = yield result
        report.completed_at = self.sim.now
        if result is not None:
            report.ok = True
            report.recomputed = list(result.recomputed())
        else:
            report.error = "re-run failed"
        span.set_attribute("recomputed", len(report.recomputed))
        span.finish(error=None if report.ok else report.error)

    # -- reporting -----------------------------------------------------------

    def recovered(self) -> List[RecoveryReport]:
        """Reports for adoptions that completed successfully."""
        return [r for r in self.reports if r.ok]

"""Replaying a journal into run state.

Recovery never trusts executor memory — it rebuilds what it knows about
a run purely from the durable record prefix.  :func:`replay` is that
pure function: records in, :class:`RunState` out, no simulator, no
clock, no I/O.  Because a crash can truncate the journal at any fsync
point, replay must yield a *consistent* state for **every** prefix of a
valid record stream — the property test in ``tests/test_durable.py``
hammers exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.durable import journal as j

#: Run status values, in monotone progress order.  Replaying more
#: records never moves a run *backwards* through this order.
STATUSES = ("unknown", "scheduled", "running", "failed", "done")

_RANK = {status: rank for rank, status in enumerate(STATUSES)}


@dataclass
class StageState:
    """What the journal proves about one workflow stage."""

    node_id: str
    cache_key: Optional[str] = None
    replayable: bool = False
    output: Any = None
    output_repr: str = ""
    finished_at: float = 0.0


@dataclass
class RunState:
    """Everything a recovery executor can know about a run."""

    run_id: str
    status: str = "unknown"
    workflow: Optional[str] = None
    parameters: Dict[str, Any] = field(default_factory=dict)
    owner: Optional[str] = None
    lease: Optional[j.LeaseState] = None
    stages: Dict[str, StageState] = field(default_factory=dict)
    completed: List[str] = field(default_factory=list)
    checkpoint: Optional[Dict[str, Any]] = None
    effects: List[str] = field(default_factory=list)
    adoptions: int = 0
    attempts: int = 0
    failure: Optional[str] = None
    outputs_repr: Optional[str] = None
    last_seq: int = -1
    last_time: float = 0.0

    def _advance(self, status: str) -> None:
        if _RANK[status] >= _RANK[self.status]:
            self.status = status

    @property
    def terminal(self) -> bool:
        """Whether the run reached DONE or FAILED."""
        return self.status in ("done", "failed")

    @property
    def in_flight(self) -> bool:
        """Started but not finished — the orphan candidate condition."""
        return self.status == "running"

    def orphaned_at(self, now: float) -> bool:
        """In flight with no live lease at ``now`` — safe to re-adopt."""
        if not self.in_flight:
            return False
        return self.lease is None or not self.lease.held_at(now)

    def cache_entries(self) -> List[Tuple[str, Any]]:
        """``(cache_key, output)`` pairs replayable without recompute.

        Only stages whose output survived a JSON round trip into the
        journal can be replayed from records alone; the rest rely on
        the content-addressed run cache or are recomputed.
        """
        return [(s.cache_key, s.output) for node in self.completed
                for s in (self.stages[node],)
                if s.replayable and s.cache_key]


def replay(records: Iterable[j.JournalRecord],
           run_id: Optional[str] = None) -> RunState:
    """Fold a record stream (any prefix) into a consistent state."""
    state: Optional[RunState] = None if run_id is None \
        else RunState(run_id=run_id)
    for record in records:
        if state is None:
            state = RunState(run_id=record.run_id)
        if record.run_id != state.run_id or record.seq <= state.last_seq:
            continue  # foreign or stale record; replay is defensive
        state.last_seq = record.seq
        state.last_time = record.time
        p = record.payload
        if record.kind == j.SCHEDULED:
            state.workflow = p.get("workflow")
            state.parameters = dict(p.get("parameters") or {})
            state._advance("scheduled")
        elif record.kind == j.STARTED:
            state.owner = p.get("owner")
            state.attempts += 1
            state._advance("running")
        elif record.kind == j.ADOPTED:
            state.owner = p.get("owner")
            state.adoptions += 1
            state._advance("running")
        elif record.kind == j.LEASE:
            state.lease = j.LeaseState(
                owner=p["owner"], epoch=p["epoch"],
                expires=p["expires"], ttl=p["ttl"])
        elif record.kind == j.CHECKPOINT:
            if "node_id" in p:
                node = p["node_id"]
                state.stages[node] = StageState(
                    node_id=node, cache_key=p.get("cache_key"),
                    replayable=bool(p.get("replayable")),
                    output=p.get("output"),
                    output_repr=p.get("output_repr", ""),
                    finished_at=record.time)
                if node not in state.completed:
                    state.completed.append(node)
            else:
                state.checkpoint = dict(p)
        elif record.kind == j.EFFECT:
            key = p.get("key")
            if key is not None and key not in state.effects:
                state.effects.append(key)
        elif record.kind == j.DONE:
            state.outputs_repr = p.get("outputs_repr")
            state._advance("done")
        elif record.kind == j.FAILED:
            state.failure = p.get("error")
            state._advance("failed")
    return state if state is not None else RunState(run_id="?")

"""Checkpointed, journaled ensemble sweeps.

Calibration and GLUE sweeps are the portal's longest-running unit of
work — hundreds of model evaluations — and before this module a mid-
sweep executor crash meant starting the whole batch again.
:class:`DurableSweep` wraps an
:class:`~repro.perf.runner.EnsembleRunner` with:

* a **run journal** (SCHEDULED/STARTED/CHECKPOINT/DONE) in the blob
  store, so the sweep's existence and progress survive the executor;
* a **checkpoint every N completed parameter sets**: the results-so-far
  go to the payload container and a CHECKPOINT record points at them,
  bounding wasted recompute after a crash to at most one interval;
* **exactly-once effects**: each completed evaluation may publish its
  result under its content-addressed ``run_key``; publication is an
  existence-checked put, so at-least-once replay across crashes never
  applies an effect twice — the MillWheel discipline, keyed by the
  cache keys the perf layer already computes.

Crashes are simulated, not thrown: ``run(..., interrupt_after=k)``
makes the executor die after ``k`` evaluations of *this attempt*
(unsynced journal tail lost, optionally a torn record left behind) and
returns ``None``.  A fresh sweep object pointed at the same journal
resumes from the last checkpoint.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.durable import journal as j
from repro.obs.hub import obs_of
from repro.perf.runner import EnsembleRunner


class DurableSweep:
    """A resumable, effect-deduplicating ensemble sweep.

    ``effects`` is an optional blob container; when given, every
    completed evaluation publishes its result under its ``run_key``
    exactly once across all attempts.  ``owner`` identifies the
    executor in lease records.
    """

    def __init__(self, runner: EnsembleRunner, store: j.JournalStore,
                 sweep_id: str, checkpoint_every: int = 50,
                 effects=None, owner: str = "sweep-executor",
                 lease_ttl: float = 300.0):
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.runner = runner
        self.store = store
        self.sweep_id = sweep_id
        self.checkpoint_every = checkpoint_every
        self.effects = effects
        self.owner = owner
        self.lease_ttl = lease_ttl
        # per-attempt counters, reset by each run()
        self.computed = 0
        self.effects_applied = 0
        self.effects_deduped = 0
        self.resumed_from = 0
        self.checkpoints_written = 0

    def run(self, parameter_sets: Sequence[Dict[str, float]],
            interrupt_after: Optional[int] = None,
            torn: bool = False) -> Optional[List[Any]]:
        """Execute (or resume) the sweep; ``None`` on simulated crash.

        Resumption is automatic: if the journal already has a
        CHECKPOINT, the results it points at are loaded and evaluation
        continues from the next parameter set.  ``interrupt_after``
        kills the executor after that many evaluations of this attempt
        (``torn`` leaves a torn record for the next open to truncate).
        """
        sim = self.store.sim
        self.computed = 0
        self.effects_applied = 0
        self.effects_deduped = 0
        journal = self.store.open_or_create(self.sweep_id)
        prior = self._replay(journal)
        journal.acquire(self.owner, self.lease_ttl)
        attributes = {"sweep": self.sweep_id,
                      "runs": len(parameter_sets),
                      "checkpoint_every": self.checkpoint_every}
        scheduler = getattr(self.runner, "scheduler", None)
        if scheduler is not None:
            # the sweep rides the scheduling plane as batch-class work;
            # stamping its shard/class here lines durable sweeps up with
            # sched.submit spans from sessions and workflow stages
            attributes["shard"] = scheduler.shard_of(self.runner.model_id)
            attributes["class"] = "batch"
        span = obs_of(sim).tracer.start_span(
            "durable.sweep", kind="perf", attributes=attributes)
        if not journal.records() or prior.status == "unknown":
            journal.append(j.SCHEDULED, sync=False,
                           workflow=f"sweep:{self.runner.model_id}",
                           parameters={"runs": len(parameter_sets)})
        journal.append(j.STARTED, owner=self.owner)

        results: List[Any] = []
        start = 0
        if prior.checkpoint is not None:
            start = int(prior.checkpoint.get("completed", 0))
            payload_key = prior.checkpoint.get("payload")
            if payload_key and self.store.has_payload(payload_key):
                results = list(self.store.get_payload(payload_key))[:start]
            else:  # checkpoint record without payload: restart
                start = 0
                results = []
        self.resumed_from = start
        if start:
            obs_of(sim).events.emit("durable.sweep.resumed",
                                    sweep=self.sweep_id, completed=start)
        span.set_attribute("resumed_from", start)

        if interrupt_after is None and self._batch_backend():
            # batch backends evaluate one checkpoint interval at a time:
            # checkpoint boundaries *are* the chunk boundaries, and the
            # kernel's chunk invariance plus backend-independent run
            # keys keep the journal, the effects and every result bit-
            # identical to the per-item scalar sweep
            index = start
            total = len(parameter_sets)
            while index < total:
                boundary = index + self.checkpoint_every \
                    - (index % self.checkpoint_every)
                end = min(total, boundary)
                chunk = list(parameter_sets[index:end])
                values = self.runner.run_many(chunk, capture_errors=True)
                self.computed += len(values)
                for params, value in zip(chunk, values):
                    results.append(value)
                    self._apply_effect(journal, params, value)
                if end % self.checkpoint_every == 0:
                    self._checkpoint(journal, results, end)
                index = end
            journal.append(j.DONE, outputs_repr=f"{len(results)} results")
            journal.release(self.owner)
            span.set_attribute("computed", self.computed)
            span.set_attribute("effects_applied", self.effects_applied)
            span.finish()
            return results

        # chaos mode stays per-item so interrupt_after counts single
        # evaluations; a batch backend still evaluates each item through
        # run_many (a size-1 batch is bit-identical to any chunking), so
        # a crashed-and-resumed vector sweep never mixes kernels
        batched = self._batch_backend()
        for index in range(start, len(parameter_sets)):
            if interrupt_after is not None \
                    and self.computed >= interrupt_after:
                lost = journal.crash(torn=torn)
                obs_of(sim).events.emit(
                    "durable.sweep.crashed", sweep=self.sweep_id,
                    completed=index, lost_records=lost)
                span.finish(error=f"executor crashed after "
                                  f"{self.computed} runs")
                return None
            params = parameter_sets[index]
            if batched:
                value = self.runner.run_many([params],
                                             capture_errors=True)[0]
            else:
                value = self.runner.run_one(params, capture_errors=True)
            self.computed += 1
            results.append(value)
            self._apply_effect(journal, params, value)
            if (index + 1) % self.checkpoint_every == 0:
                self._checkpoint(journal, results, index + 1)
        if interrupt_after is not None \
                and self.computed >= interrupt_after:
            # crash point landed on the final evaluation
            lost = journal.crash(torn=torn)
            obs_of(sim).events.emit(
                "durable.sweep.crashed", sweep=self.sweep_id,
                completed=len(parameter_sets), lost_records=lost)
            span.finish(error=f"executor crashed after "
                              f"{self.computed} runs")
            return None
        journal.append(j.DONE, outputs_repr=f"{len(results)} results")
        journal.release(self.owner)
        span.set_attribute("computed", self.computed)
        span.set_attribute("effects_applied", self.effects_applied)
        span.finish()
        return results

    def _batch_backend(self) -> bool:
        """True when the runner will evaluate misses in batches."""
        resolve = getattr(self.runner, "resolve_backend", None)
        return resolve is not None and resolve() != "scalar"

    def _replay(self, journal: j.RunJournal):
        from repro.durable.state import replay
        return replay(journal.records(), run_id=self.sweep_id)

    def _apply_effect(self, journal: j.RunJournal,
                      params: Dict[str, float], value: Any) -> None:
        """Publish the result under its run key, at most once ever."""
        if self.effects is None:
            return
        key = self.runner.key_of(params)
        if self.effects.exists(key):
            self.effects_deduped += 1
            return
        self.effects.put(key, value)
        self.effects_applied += 1
        # bookkeeping only — dedup correctness comes from the existence
        # check above, so EFFECT records ride to the next fsync point
        journal.append(j.EFFECT, sync=False, key=key)

    def _checkpoint(self, journal: j.RunJournal,
                    results: List[Any], completed: int) -> None:
        payload_key = self.store.put_payload(
            f"{self.sweep_id}/ckpt-{completed:06d}", list(results))
        journal.append(j.CHECKPOINT, completed=completed,
                       payload=payload_key)
        self.checkpoints_written += 1
        obs_of(self.store.sim).events.emit(
            "durable.sweep.checkpoint", sweep=self.sweep_id,
            completed=completed)

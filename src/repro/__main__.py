"""``python -m repro`` — a two-minute tour of the observatory.

Boots a deployment, runs the LEFT scenarios, prints the comparison, and
shows the cloudburst counters.  The full demonstrations live in
``examples/``.
"""

from repro import Evop, EvopConfig


def main() -> None:
    print("repro - the Environmental Virtual Observatory pilot, reproduced")
    print("booting the hybrid cloud deployment...")
    evop = Evop(EvopConfig(truth_days=8, storm_day=4)).bootstrap()
    evop.run_for(600.0)
    print(f"  instances: {evop.instances_by_location()}")
    print(f"  services:  {[s.name for s in evop.lb.services()]}")
    print(f"  models:    {[e.name for e in evop.library.list()]}")

    print("\nopening the LEFT modelling widget as 'demo-user'...")
    widget = evop.left().open_modelling_widget("demo-user")
    evop.run_for(10.0)
    widget.load()
    evop.run_for(10.0)

    for scenario in widget.scenario_buttons:
        widget.select_scenario(scenario)
        signal = widget.run(duration_hours=96)
        evop.run_for(200.0)
        run = signal.value
        marker = " <- floods!" if run.outputs["threshold_exceeded"] else ""
        print(f"  {scenario:16s} peak {run.outputs['peak_mm_h']:5.2f} mm/h"
              f"{marker}")

    print()
    print(widget.comparison_chart().to_ascii(width=64, height=10))
    cost = evop.cost_report()
    print(f"\ntotal simulated cloud cost: ${cost['total']:.3f}")
    print("next: python examples/left_flood_tool.py")


if __name__ == "__main__":
    main()

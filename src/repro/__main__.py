"""``python -m repro`` — entry points for the observatory.

* ``python -m repro`` (or ``python -m repro tour``) — the two-minute
  tour: boot a deployment, run the LEFT scenarios, print the comparison
  and the cloudburst counters.
* ``python -m repro trace`` — run one example user journey plus a
  composed cloud workflow under distributed tracing and dump the trace
  as Chrome ``trace_event`` JSON (open it in ``chrome://tracing`` or
  https://ui.perfetto.dev).
* ``python -m repro chaos`` — crash an executor mid-workflow and watch
  the write-ahead run journal, lease expiry, and orphan re-adoption
  carry the run to completion on a replacement instance.
* ``python -m repro top`` — live text dashboard over the telemetry
  plane: health score, SLO burn rates, RED view, scheduling-plane
  saturation, with a replica crash injected mid-run so the alerts have
  something to say.

The full demonstrations live in ``examples/``.
"""

import argparse
import os

from repro import Evop, EvopConfig


def main() -> None:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="The Environmental Virtual Observatory pilot, reproduced")
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("tour", help="boot a deployment and run the LEFT demo")
    trace_parser = sub.add_parser(
        "trace", help="trace a user journey end to end and dump the spans")
    trace_parser.add_argument(
        "--out", default="evop-trace.json",
        help="Chrome trace_event output path (default: %(default)s)")
    sub.add_parser(
        "chaos",
        help="crash an executor mid-workflow; durable execution recovers it")
    top_parser = sub.add_parser(
        "top", help="live text dashboard over the telemetry plane")
    top_parser.add_argument(
        "--horizon", type=float, default=900.0,
        help="simulated seconds to run (default: %(default)s)")
    top_parser.add_argument(
        "--refresh", type=float, default=30.0,
        help="simulated seconds per frame (default: %(default)s)")
    args = parser.parse_args()
    if args.command == "top":
        from repro.obs.top import run_top
        run_top(horizon=args.horizon, refresh=args.refresh)
    elif args.command == "trace":
        directory = os.path.dirname(os.path.abspath(args.out))
        if not os.path.isdir(directory):
            parser.error(f"--out directory does not exist: {directory}")
        run_trace(args.out)
    elif args.command == "chaos":
        from repro.durable.demo import run_chaos
        run_chaos()
    else:
        run_tour()


def run_tour() -> None:
    print("repro - the Environmental Virtual Observatory pilot, reproduced")
    print("booting the hybrid cloud deployment...")
    evop = Evop(EvopConfig(truth_days=8, storm_day=4)).bootstrap()
    evop.run_for(600.0)
    print(f"  instances: {evop.instances_by_location()}")
    print(f"  services:  {[s.name for s in evop.sched.services()]}")
    print(f"  models:    {[e.name for e in evop.library.list()]}")

    print("\nopening the LEFT modelling widget as 'demo-user'...")
    widget = evop.left().open_modelling_widget("demo-user")
    evop.run_for(10.0)
    widget.load()
    evop.run_for(10.0)

    for scenario in widget.scenario_buttons:
        widget.select_scenario(scenario)
        signal = widget.run(duration_hours=96)
        evop.run_for(200.0)
        run = signal.value
        marker = " <- floods!" if run.outputs["threshold_exceeded"] else ""
        print(f"  {scenario:16s} peak {run.outputs['peak_mm_h']:5.2f} mm/h"
              f"{marker}")

    print()
    print(widget.comparison_chart().to_ascii(width=64, height=10))
    cost = evop.cost_report()
    print(f"\ntotal simulated cloud cost: ${cost['total']:.3f}")
    print("next: python examples/left_flood_tool.py")


def run_trace(out_path: str) -> None:
    from repro.obs import (
        obs_of, render_tree, span_tree, summarize_spans, tree_depth,
        write_chrome_trace,
    )
    from repro.workflow import CloudWorkflowEngine, ServiceCall, Workflow
    from repro.workflow.cloud import service_node
    from repro.workflow.dag import WorkflowNode

    print("repro trace - one user journey, traced end to end")
    print("booting the hybrid cloud deployment...")
    evop = Evop(EvopConfig(truth_days=6, storm_day=3)).bootstrap()
    evop.run_for(400.0)

    print("connecting 'trace-user' through the Resource Broker...")
    widget = evop.left().open_modelling_widget("trace-user")
    evop.run_for(20.0)
    widget.load()
    evop.run_for(20.0)
    widget.select_scenario("baseline")
    widget.run(duration_hours=96)
    evop.run_for(300.0)

    print("running a composed storm-impact workflow in the same trace...")
    process_id = f"topmodel-{evop.config.catchments[0]}"
    address_of = lambda: widget.session.instance_address  # noqa: E731

    workflow = Workflow("storm-impact")
    workflow.add(service_node("baseline", ServiceCall(
        process_id, address_of,
        lambda p, u: {"scenario": "baseline",
                      "duration_hours": p["duration_hours"]})))
    workflow.add(service_node("scenario", ServiceCall(
        process_id, address_of,
        lambda p, u: {"scenario": p["scenario"],
                      "duration_hours": p["duration_hours"]})),)
    workflow.add(WorkflowNode(
        "compare",
        lambda p, u: {"peak_shaved_mm_h": u["baseline"]["peak_mm_h"]
                      - u["scenario"]["peak_mm_h"]},
        depends_on=("baseline", "scenario")))

    engine = CloudWorkflowEngine(evop.sim, evop.network,
                                 client=evop.resilient,
                                 scheduler=evop.sched)
    done = engine.run(workflow, {"scenario": "storage_ponds",
                                 "duration_hours": 96},
                      parent=widget.session.trace_context)
    evop.run_for(600.0)
    record = done.value
    if record is not None:
        print(f"  workflow {record.run_id}: peak shaved "
              f"{record.outputs['compare']['peak_shaved_mm_h']:.2f} mm/h")
    evop.rb.disconnect(widget.session)
    evop.run_for(10.0)

    hub = obs_of(evop.sim)
    trace_id = widget.session.trace_context.trace_id
    spans = hub.tracer.spans(trace_id=trace_id)
    roots = span_tree(spans)
    depth = tree_depth(roots)

    print(f"\n== trace {trace_id[-8:]} - {len(spans)} spans, "
          f"{depth} levels ==")
    for line in render_tree(roots):
        print(line)

    print("\n== per-span-name summary (simulated seconds) ==")
    for name, stats in summarize_spans(hub.tracer.spans()).items():
        print(f"  {name:55s} n={stats['count']:4.0f}  "
              f"p50={stats['p50']:.3f}  p95={stats['p95']:.3f}  "
              f"p99={stats['p99']:.3f}")

    counts = hub.events.counts()
    print(f"\n== {sum(counts.values())} infrastructure events ==")
    for kind in sorted(counts):
        print(f"  {kind:30s} {counts[kind]}")

    path = write_chrome_trace(out_path, hub.tracer.spans(),
                              hub.events.events())
    print(f"\nwrote {path} - open in chrome://tracing or "
          f"https://ui.perfetto.dev")


if __name__ == "__main__":
    main()

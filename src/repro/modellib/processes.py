"""WPS process definitions for the hydrological models.

Each factory turns a catchment-bound model into a
:class:`~repro.services.wps.WpsProcess`: declared inputs (with the
bounds the widget sliders render), a cost estimator proportional to the
simulated span, and a run function that generates the catchment's
weather, applies the chosen scenario, executes the model and returns the
hydrograph plus the summary numbers the widget displays.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.data.catchments import Catchment
from repro.data.weather import DesignStorm
from repro.hydrology.fuse import FuseModel, FuseParameters
from repro.hydrology.hydrograph import HydrographAnalysis
from repro.hydrology.scenarios import STANDARD_SCENARIOS
from repro.hydrology.topmodel import TopmodelParameters
from repro.services.wps import InputSpec, ProcessDescription, WpsProcess
from repro.sim import RandomStreams

#: CPU-seconds charged per simulated hour per TI class (reference core).
_COST_PER_HOUR = 0.004
#: Fixed overhead of staging data and writing outputs.
_COST_OVERHEAD = 0.4

_SCENARIO_KEYS = tuple(STANDARD_SCENARIOS)


def _common_inputs() -> list:
    return [
        InputSpec("rainfall_dataset", "string", required=False,
                  abstract=("Warehouse id of a user-provided rainfall "
                            "series; overrides the generated weather")),
        InputSpec("duration_hours", "int", required=False, default=168,
                  minimum=24, maximum=24 * 90,
                  abstract="Simulated span in hours"),
        InputSpec("storm_depth_mm", "float", required=False, default=60.0,
                  minimum=0.0, maximum=250.0,
                  abstract="Design storm total depth"),
        InputSpec("storm_start_hour", "int", required=False, default=24,
                  minimum=0, maximum=24 * 30),
        InputSpec("storm_duration_hours", "int", required=False, default=8,
                  minimum=1, maximum=72),
        InputSpec("weather_seed", "int", required=False, default=1,
                  minimum=0, maximum=10_000_000,
                  abstract="Seed of the stochastic weather realisation"),
        InputSpec("scenario", "string", required=False, default="baseline",
                  abstract=f"One of {', '.join(_SCENARIO_KEYS)}"),
    ]


def _storm_rainfall(catchment: Catchment, inputs: Dict[str, Any],
                    warehouse=None):
    generator = catchment.weather_generator(
        RandomStreams(int(inputs["weather_seed"])))
    dataset_id = inputs.get("rainfall_dataset")
    if dataset_id:
        if warehouse is None:
            raise ValueError("rainfall_dataset given but the process has "
                             "no warehouse attached")
        rain = warehouse.get_series(dataset_id)
        hours = len(rain)
    else:
        storm = DesignStorm(
            start_hour=int(inputs["storm_start_hour"]),
            duration_hours=int(inputs["storm_duration_hours"]),
            total_depth_mm=float(inputs["storm_depth_mm"]),
        )
        hours = int(inputs["duration_hours"])
        rain = generator.rainfall_with_storm(hours, storm,
                                             start_day_of_year=330)
    pet = generator.daily_pet(hours, start_day_of_year=330)
    return rain, pet


def _scenario(inputs: Dict[str, Any]):
    key = inputs.get("scenario") or "baseline"
    if key not in STANDARD_SCENARIOS:
        raise ValueError(f"unknown scenario {key!r}; "
                         f"choose from {_SCENARIO_KEYS}")
    return STANDARD_SCENARIOS[key]


def _summarise(flow, rain, catchment: Catchment) -> Dict[str, Any]:
    analysis = HydrographAnalysis(flow, rain)
    threshold = catchment.flood_threshold_mm_h
    return {
        "hydrograph_mm_h": flow.values,
        "rainfall_mm_h": rain.values,
        "dt_seconds": flow.dt,
        "peak_mm_h": analysis.peak(),
        "peak_time_hours": flow.argmax_time() / 3600.0,
        "volume_mm": analysis.total_volume(),
        "threshold_mm_h": threshold,
        "threshold_exceeded": analysis.peak() > threshold,
        "exceedance_fraction": analysis.exceedance_fraction(threshold),
        "events_above_threshold": len(analysis.events_above(threshold)),
    }


def make_topmodel_process(catchment: Catchment, warehouse=None) -> WpsProcess:
    """TOPMODEL as a WPS process for ``catchment``.

    Slider-facing model parameters (``m``, ``srmax``, ``q0_mm_h``,
    ``td``) override the scenario defaults, mirroring the widget where
    "sliders default to the settings for each scenario".  With a
    ``warehouse`` attached, the ``rainfall_dataset`` input lets users run
    the model on data they uploaded themselves.
    """
    description = ProcessDescription(
        identifier=f"topmodel-{catchment.name}",
        title=f"TOPMODEL ({catchment.display_name})",
        abstract=("Saturation-excess rainfall-runoff model driven by the "
                  "catchment's topographic index distribution."),
        inputs=_common_inputs() + [
            InputSpec("m", "float", required=False,
                      minimum=TopmodelParameters.RANGES["m"][0],
                      maximum=TopmodelParameters.RANGES["m"][1]),
            InputSpec("srmax", "float", required=False,
                      minimum=TopmodelParameters.RANGES["srmax"][0],
                      maximum=TopmodelParameters.RANGES["srmax"][1]),
            InputSpec("td", "float", required=False,
                      minimum=TopmodelParameters.RANGES["td"][0],
                      maximum=TopmodelParameters.RANGES["td"][1]),
            InputSpec("q0_mm_h", "float", required=False, default=0.3,
                      minimum=TopmodelParameters.RANGES["q0_mm_h"][0],
                      maximum=TopmodelParameters.RANGES["q0_mm_h"][1]),
        ],
        outputs=["hydrograph_mm_h", "peak_mm_h", "peak_time_hours",
                 "volume_mm", "threshold_exceeded", "saturated_fraction_max"],
    )
    model = catchment.topmodel()

    def run(inputs: Dict[str, Any]) -> Dict[str, Any]:
        rain, pet = _storm_rainfall(catchment, inputs, warehouse)
        scenario = _scenario(inputs)
        base = TopmodelParameters(q0_mm_h=float(inputs["q0_mm_h"]))
        overrides = {name: float(inputs[name])
                     for name in ("m", "srmax", "td")
                     if inputs.get(name) is not None}
        if overrides:
            base = base.with_updates(**overrides)
        result = scenario.run(model, rain, pet=pet, base_parameters=base)
        outputs = _summarise(result.flow, rain, catchment)
        outputs["saturated_fraction_max"] = result.saturated_fraction.maximum()
        outputs["scenario"] = scenario.key
        outputs["model"] = "topmodel"
        return outputs

    def cost(inputs: Dict[str, Any]) -> float:
        return _COST_OVERHEAD + _COST_PER_HOUR * float(inputs["duration_hours"])

    return WpsProcess(description, run=run, cost=cost)


def make_water_quality_process(catchment: Catchment,
                               warehouse=None) -> WpsProcess:
    """Water quality as a WPS process — the stakeholders' next storyboard.

    Runs TOPMODEL under the chosen land-use scenario, then the
    export-coefficient water-quality model on top, reporting sediment
    and nutrient concentrations and loads at the outlet.
    """
    from repro.hydrology.water_quality import WaterQualityModel

    description = ProcessDescription(
        identifier=f"water-quality-{catchment.name}",
        title=f"Catchment water quality ({catchment.display_name})",
        abstract=("Sediment rating-curve and export-coefficient nutrient "
                  "model driven by the catchment's TOPMODEL simulation."),
        inputs=_common_inputs() + [
            InputSpec("sediment_a", "float", required=False,
                      minimum=1.0, maximum=500.0,
                      abstract="Sediment rating coefficient"),
        ],
        outputs=["sediment_mgl", "nitrate_mgl", "phosphorus_mgl",
                 "peak_sediment_mgl", "sediment_load_kg",
                 "nitrate_load_kg", "phosphorus_load_kg"],
    )
    model = catchment.topmodel()

    def run(inputs: Dict[str, Any]) -> Dict[str, Any]:
        rain, pet = _storm_rainfall(catchment, inputs, warehouse)
        scenario = _scenario(inputs)
        hydrology = scenario.run(model, rain, pet=pet,
                                 base_parameters=TopmodelParameters(
                                     q0_mm_h=0.3))
        quality_model = WaterQualityModel()
        if inputs.get("sediment_a") is not None:
            quality_model = WaterQualityModel(
                quality_model.parameters.with_updates(
                    sediment_a=float(inputs["sediment_a"])))
        result = quality_model.run(hydrology, scenario=scenario.key)
        outputs: Dict[str, Any] = result.summary(catchment.area_km2)
        outputs["sediment_mgl"] = result.sediment_mgl.values
        outputs["nitrate_mgl"] = result.nitrate_mgl.values
        outputs["phosphorus_mgl"] = result.phosphorus_mgl.values
        outputs["dt_seconds"] = result.flow.dt
        outputs["model"] = "water-quality"
        return outputs

    def cost(inputs: Dict[str, Any]) -> float:
        # a flow simulation plus the chemistry pass
        return (_COST_OVERHEAD
                + 1.3 * _COST_PER_HOUR * float(inputs["duration_hours"]))

    return WpsProcess(description, run=run, cost=cost)


def make_fuse_process(catchment: Catchment, warehouse=None) -> WpsProcess:
    """The FUSE ensemble as a WPS process for ``catchment``.

    Runs all 16 structures and returns the ensemble mean and spread —
    the uncertainty presentation the stakeholders asked for.
    """
    description = ProcessDescription(
        identifier=f"fuse-{catchment.name}",
        title=f"FUSE ensemble ({catchment.display_name})",
        abstract=("Multi-model ensemble over the FUSE structural decision "
                  "space; reports the mean hydrograph and the 10-90% "
                  "structure spread."),
        inputs=_common_inputs() + [
            InputSpec("smax_upper", "float", required=False,
                      minimum=FuseParameters.RANGES["smax_upper"][0],
                      maximum=FuseParameters.RANGES["smax_upper"][1]),
            InputSpec("k_base", "float", required=False,
                      minimum=FuseParameters.RANGES["k_base"][0],
                      maximum=FuseParameters.RANGES["k_base"][1]),
        ],
        outputs=["hydrograph_mm_h", "lower_mm_h", "upper_mm_h",
                 "peak_mm_h", "members"],
    )

    def run(inputs: Dict[str, Any]) -> Dict[str, Any]:
        from repro.hydrology.fuse import fuse_ensemble
        rain, pet = _storm_rainfall(catchment, inputs, warehouse)
        overrides = {name: float(inputs[name])
                     for name in ("smax_upper", "k_base")
                     if inputs.get(name) is not None}
        params = FuseParameters().with_updates(**overrides) if overrides \
            else FuseParameters()
        # scenarios adjust TOPMODEL parameters; for FUSE the equivalent
        # knob is rainfall interception, applied as a pre-filter
        scenario = _scenario(inputs)
        if scenario.parameter_updates.get("interception_mm"):
            depth = scenario.parameter_updates["interception_mm"]
            rain = rain.map(lambda v: max(0.0, v - depth))
        ensemble = fuse_ensemble(rain, pet=pet, parameters=params)
        outputs = _summarise(ensemble.mean, rain, catchment)
        outputs["lower_mm_h"] = ensemble.lower.values
        outputs["upper_mm_h"] = ensemble.upper.values
        outputs["members"] = ensemble.member_labels()
        outputs["scenario"] = scenario.key
        outputs["model"] = "fuse"
        return outputs

    def cost(inputs: Dict[str, Any]) -> float:
        # 16 structures: an ensemble costs what 16 single runs cost
        single = _COST_OVERHEAD + _COST_PER_HOUR * float(inputs["duration_hours"])
        return single * 16

    return WpsProcess(description, run=run, cost=cost)

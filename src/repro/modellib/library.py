"""The model catalogue: published models, images, calibration records.

Publishing a *streamlined* model bakes a new machine-image generation
bundling the model and its datasets; publishing an *experimental* model
authors a provisioning recipe to be applied on an incubator.  Both paths
record the offline calibration that preceded publication ("the outcome
of this process is a VM image optimised to run a fine tuned set of
models"), so the provenance of every deployed model is queryable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cloud.images import ImageKind, ImageStore, MachineImage
from repro.cloud.provisioning import ProvisioningRecipe
from repro.cloud.storage import Container
from repro.data.catchments import Catchment
from repro.services.wps import WpsProcess, WpsService
from repro.sim import Simulator


class ModelKind(enum.Enum):
    """How a model is packaged for execution."""

    STREAMLINED = "streamlined"
    EXPERIMENTAL = "experimental"


@dataclass(frozen=True)
class CalibrationRecord:
    """Provenance of a model's offline calibration."""

    catchment: str
    objective: str
    score: float
    parameters: Dict[str, float]
    iterations: int
    calibrated_at: float = 0.0

    def is_behavioural(self, threshold: float = 0.5) -> bool:
        """Whether the calibration met the behavioural bar."""
        return self.score >= threshold


@dataclass
class ModelEntry:
    """One published model."""

    name: str
    kind: ModelKind
    catchment: str
    process_factory: Callable[[Catchment], WpsProcess]
    image_id: Optional[str] = None        # streamlined path
    recipe: Optional[ProvisioningRecipe] = None   # experimental path
    calibration: Optional[CalibrationRecord] = None


class ModelLibrary:
    """Registry of published models plus their execution packaging."""

    #: Run-speed advantage of a fine-tuned streamlined bundle.
    STREAMLINED_SPEED = 1.25
    #: Run-speed penalty of an experimental install on a generic base.
    INCUBATOR_SPEED = 0.8

    def __init__(self, images: ImageStore):
        self.images = images
        self._entries: Dict[str, ModelEntry] = {}
        self._incubator_base: Optional[MachineImage] = None

    # -- packaging -------------------------------------------------------------

    def incubator_base(self) -> MachineImage:
        """The shared generic incubator image (created lazily)."""
        if self._incubator_base is None:
            self._incubator_base = self.images.create(
                "model-incubator", ImageKind.INCUBATOR, size_gb=2.5,
                run_speed_factor=self.INCUBATOR_SPEED)
        return self._incubator_base

    def publish_streamlined(self, name: str, catchment: Catchment,
                            process_factory: Callable[[Catchment], WpsProcess],
                            calibration: Optional[CalibrationRecord] = None,
                            dataset_ids: tuple = (),
                            bundle_size_gb: float = 6.0) -> ModelEntry:
        """Bake a streamlined bundle image and register the model."""
        self._check_name(name)
        image = self.images.create(
            f"bundle-{name}", ImageKind.STREAMLINED,
            size_gb=bundle_size_gb,
            run_speed_factor=self.STREAMLINED_SPEED,
            bundled_models=(name,),
            bundled_datasets=tuple(dataset_ids),
        )
        entry = ModelEntry(name=name, kind=ModelKind.STREAMLINED,
                           catchment=catchment.name,
                           process_factory=process_factory,
                           image_id=image.image_id,
                           calibration=calibration)
        self._entries[name] = entry
        return entry

    def publish_experimental(self, name: str, catchment: Catchment,
                             process_factory: Callable[[Catchment], WpsProcess],
                             install_minutes: float = 8.0,
                             calibration: Optional[CalibrationRecord] = None
                             ) -> ModelEntry:
        """Author an incubator recipe and register the model."""
        self._check_name(name)
        recipe = (ProvisioningRecipe(f"install-{name}")
                  .add_step("install runtime dependencies",
                            install_minutes * 60.0 * 0.5)
                  .add_step(f"stage {name} code and parameter sets",
                            install_minutes * 60.0 * 0.3)
                  .add_step(f"expose {name} as a WPS service",
                            install_minutes * 60.0 * 0.2,
                            installs_model=name))
        entry = ModelEntry(name=name, kind=ModelKind.EXPERIMENTAL,
                           catchment=catchment.name,
                           process_factory=process_factory,
                           recipe=recipe,
                           calibration=calibration)
        self._entries[name] = entry
        return entry

    def update_bundle(self, name: str, extra_dataset_ids: tuple = (),
                      size_increase_gb: float = 0.5) -> MachineImage:
        """Rebake a streamlined model's image with more data.

        The paper: "An image could be updated to include more historical
        data or to adjust the implementation of a model in some way."
        """
        entry = self.get(name)
        if entry.kind != ModelKind.STREAMLINED or entry.image_id is None:
            raise ValueError(f"{name!r} is not a streamlined model")
        image = self.images.rebake(entry.image_id,
                                   extra_datasets=tuple(extra_dataset_ids),
                                   size_increase_gb=size_increase_gb)
        entry.image_id = image.image_id
        return image

    # -- lookup -------------------------------------------------------------------

    def get(self, name: str) -> ModelEntry:
        """Look a model up by name."""
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(f"no model {name!r} in the library") from None

    def list(self, kind: Optional[ModelKind] = None) -> List[ModelEntry]:
        """Published models, optionally filtered by kind."""
        entries = list(self._entries.values())
        if kind is not None:
            entries = [e for e in entries if e.kind == kind]
        return entries

    def image_for(self, name: str) -> MachineImage:
        """The image a deployment of ``name`` should boot.

        Streamlined models boot their bundle; experimental ones boot the
        shared incubator base (the recipe runs post-boot).
        """
        entry = self.get(name)
        if entry.kind == ModelKind.STREAMLINED:
            assert entry.image_id is not None
            return self.images.get(entry.image_id)
        return self.incubator_base()

    # -- service construction ---------------------------------------------------------

    def build_service(self, sim: Simulator, service_name: str,
                      model_names: List[str],
                      status_container: Container,
                      catchments: Dict[str, Catchment]) -> WpsService:
        """A WPS service publishing the named models' processes."""
        service = WpsService(sim, service_name, status_container)
        for name in model_names:
            entry = self.get(name)
            catchment = catchments[entry.catchment]
            service.add_process(entry.process_factory(catchment))
        return service

    def _check_name(self, name: str) -> None:
        if name in self._entries:
            raise ValueError(f"model {name!r} already published")

"""Model deployment: streamlined bundle vs incubator paths, measured.

Section IV-D describes the two execution-unit paths and notes the
incubator "has some effect on execution performance when compared to a
streamlined execution unit, but is a useful testing ground".  The
deployer runs either path end-to-end — launch, boot, (provision), serve,
first model run — and reports the timing split, which
``benchmarks/bench_model_deployment.py`` turns into the comparison
table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.cloud.instance import Instance, Job
from repro.cloud.multicloud import MultiCloud, NodeTemplate
from repro.cloud.flavors import Flavor, MEDIUM
from repro.modellib.library import ModelEntry, ModelKind, ModelLibrary
from repro.sim import Signal, Simulator


@dataclass
class DeploymentReport:
    """Timing breakdown of one deployment + first run."""

    model: str
    path: str                 # "streamlined" | "incubator"
    launched_at: float
    booted_at: float
    provisioned_at: float     # == booted_at on the streamlined path
    first_result_at: float
    instance: Optional[Instance] = None

    @property
    def boot_seconds(self) -> float:
        """Launch to RUNNING."""
        return self.booted_at - self.launched_at

    @property
    def provision_seconds(self) -> float:
        """RUNNING to model-ready (zero for pre-baked bundles)."""
        return self.provisioned_at - self.booted_at

    @property
    def time_to_first_result(self) -> float:
        """Launch to first model output."""
        return self.first_result_at - self.launched_at

    @property
    def run_seconds(self) -> float:
        """Model-ready to first output — the per-run cost."""
        return self.first_result_at - self.provisioned_at


class ModelDeployer:
    """Executes one deployment path as a simulator process."""

    def __init__(self, sim: Simulator, multicloud: MultiCloud,
                 library: ModelLibrary):
        self.sim = sim
        self.multicloud = multicloud
        self.library = library

    def deploy(self, model_name: str, location: Optional[str] = None,
               flavor: Flavor = MEDIUM,
               first_run_cost: float = 2.0) -> Signal:
        """Deploy ``model_name`` and execute one model run.

        Returns a signal fired with a :class:`DeploymentReport` (or
        ``None`` if the instance died along the way).
        """
        entry = self.library.get(model_name)
        image = self.library.image_for(model_name)
        done = self.sim.signal(f"deploy.{model_name}")
        launched_at = self.sim.now
        instance = self.multicloud.create_node(
            NodeTemplate(image=image, flavor=flavor, location=location))

        def pipeline():
            booted = yield instance.ready
            if booted is None:
                done.fire(None)
                return
            booted_at = self.sim.now
            if entry.kind == ModelKind.EXPERIMENTAL:
                assert entry.recipe is not None
                provision_done = entry.recipe.apply(self.sim, instance)
                outcome = yield provision_done
                if outcome is None:
                    done.fire(None)
                    return
            provisioned_at = self.sim.now
            run_done = instance.submit(Job(cost=first_run_cost,
                                           name=f"first-run:{model_name}"))
            outcome = yield run_done
            if not outcome.succeeded:
                done.fire(None)
                return
            done.fire(DeploymentReport(
                model=model_name,
                path=entry.kind.value,
                launched_at=launched_at,
                booted_at=booted_at,
                provisioned_at=provisioned_at,
                first_result_at=self.sim.now,
                instance=instance,
            ))

        self.sim.spawn(pipeline(), name=f"deploy.{model_name}")
        return done

"""The Model Library (ML) of Figure 1.

"The Model Library is populated by domain specialists in liaison with
data providers ... The outcome of this process is a VM image optimised
to run a fine tuned set of models that are exposed as web services ...
The alternative path is to use a generic image from the ML to serve as a
model incubator."

This package holds the catalogue of published models (with their offline
calibration records), bakes streamlined images / authors incubator
recipes, exposes models as OGC WPS processes, and measures the two
deployment paths the paper contrasts.
"""

from repro.modellib.library import (
    CalibrationRecord,
    ModelEntry,
    ModelKind,
    ModelLibrary,
)
from repro.modellib.processes import (
    make_fuse_process,
    make_topmodel_process,
    make_water_quality_process,
)
from repro.modellib.deployment import DeploymentReport, ModelDeployer

__all__ = [
    "CalibrationRecord",
    "DeploymentReport",
    "ModelDeployer",
    "ModelEntry",
    "ModelKind",
    "ModelLibrary",
    "make_fuse_process",
    "make_topmodel_process",
    "make_water_quality_process",
]

"""Workflow execution with caching and provenance.

The replay/tweak properties the paper promises come from
content-addressed stage caching: a stage's cache key hashes its node id,
the parameters it declares it uses, and the cache keys of its
dependencies.  Re-running an identical workflow is a full cache hit;
tweaking one parameter recomputes only the stages downstream of the
nodes that read it.  Every run leaves a :class:`RunRecord` provenance
trail.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.perf.keys import CanonicalisationError, canonical
from repro.workflow.dag import Workflow, WorkflowNode

_run_ids = itertools.count()


@dataclass
class StageRecord:
    """Provenance of one stage in one run."""

    node_id: str
    cache_key: str
    cached: bool
    output_repr: str
    started_at: float
    finished_at: float


@dataclass
class RunRecord:
    """Provenance of one workflow run.

    ``trace_id`` links the record to its distributed trace when the run
    executed under a tracer — provenance says *what* ran, the trace says
    *where the time went*.
    """

    run_id: str
    workflow: str
    parameters: Dict[str, Any]
    stages: List[StageRecord] = field(default_factory=list)
    outputs: Dict[str, Any] = field(default_factory=dict)
    trace_id: Optional[str] = None
    #: set on failed runs: a :class:`~repro.workflow.cloud.StageFailure`
    #: (or similar typed error) instead of a bare exception
    failure: Optional[Any] = None

    def cache_hits(self) -> int:
        """Stages served from cache."""
        return sum(1 for s in self.stages if s.cached)

    def recomputed(self) -> List[str]:
        """Node ids that actually executed."""
        return [s.node_id for s in self.stages if not s.cached]


class WorkflowEngine:
    """Runs workflows, caching stage outputs across runs.

    ``clock`` is any zero-arg callable returning the current time — pass
    ``sim.now``-reading lambda to timestamp provenance in simulated
    time, or leave the default monotonic counter for pure library use.
    """

    def __init__(self, clock=None, tracer=None, store=None,
                 executor_id: str = "local"):
        self._cache: Dict[str, Any] = {}
        self._runs: List[RunRecord] = []
        self._counter = itertools.count()
        self._clock = clock or (lambda: float(next(self._counter)))
        #: optional :class:`~repro.obs.tracer.Tracer`; when set, each run
        #: produces a ``workflow.run`` span with per-stage children,
        #: parented under whatever span is active (e.g. the instance job
        #: whose ``compute`` invoked this engine)
        self.tracer = tracer
        #: optional :class:`~repro.durable.journal.JournalStore`; when
        #: set, runs are journaled (SCHEDULED/STARTED/CHECKPOINT/DONE)
        #: so a crashed executor's progress can be recovered
        self.store = store
        self.executor_id = executor_id

    def run(self, workflow: Workflow,
            parameters: Optional[Dict[str, Any]] = None,
            run_id: Optional[str] = None) -> RunRecord:
        """Execute ``workflow`` with ``parameters``; returns provenance.

        Pass ``run_id`` to resume (or re-execute) a journaled run under
        its original identity — recovery uses this so the journal stays
        one stream per logical run.
        """
        workflow.validate()
        params = dict(parameters or {})
        record = RunRecord(
            run_id=run_id or f"run-{next(_run_ids):05d}",
            workflow=workflow.name,
            parameters=params,
        )
        journal = self._open_journal(record, params)
        run_span = None
        if self.tracer is not None:
            run_span = self.tracer.start_span(
                f"workflow.run {workflow.name}", kind="workflow",
                attributes={"run_id": record.run_id})
            record.trace_id = run_span.trace_id
        keys: Dict[str, str] = {}
        outputs: Dict[str, Any] = {}
        for node in workflow.topological_order():
            key = self._cache_key(node, params, keys)
            keys[node.node_id] = key
            started = self._clock()
            stage_span = None
            if run_span is not None:
                stage_span = self.tracer.start_span(
                    f"workflow.stage {node.node_id}", parent=run_span,
                    kind="stage", attributes={"cache_key": key})
            if key in self._cache:
                output = self._cache[key]
                cached = True
            else:
                upstream = {dep: outputs[dep] for dep in node.depends_on}
                output = node.fn(params, upstream)
                self._cache[key] = output
                cached = False
            if stage_span is not None:
                stage_span.set_attribute("cached", cached)
                stage_span.finish()
            outputs[node.node_id] = output
            record.stages.append(StageRecord(
                node_id=node.node_id,
                cache_key=key,
                cached=cached,
                output_repr=_short_repr(output),
                started_at=started,
                finished_at=self._clock(),
            ))
            self._journal_stage(journal, record.stages[-1], output)
        record.outputs = outputs
        if journal is not None:
            journal.append("DONE", outputs_repr=_short_repr(outputs))
        if run_span is not None:
            run_span.set_attribute("cache_hits", record.cache_hits())
            run_span.finish()
        self._runs.append(record)
        return record

    def _open_journal(self, record: RunRecord, params: Dict[str, Any]):
        """Write-ahead SCHEDULED + STARTED before any stage executes."""
        if self.store is None:
            return None
        from repro.durable.journal import jsonable
        journal = self.store.open_or_create(record.run_id)
        if not journal.records():
            ok, clean = jsonable(params)
            journal.append("SCHEDULED", sync=False, workflow=record.workflow,
                           parameters=clean if ok else {})
        journal.append("STARTED", owner=self.executor_id)
        return journal

    def _journal_stage(self, journal, stage: StageRecord,
                       output: Any) -> None:
        """CHECKPOINT a completed stage, with its output when JSON-able."""
        if journal is None:
            return
        from repro.durable.journal import jsonable
        ok, clean = jsonable(output)
        journal.append("CHECKPOINT", node_id=stage.node_id,
                       cache_key=stage.cache_key, cached=stage.cached,
                       replayable=ok, output=clean if ok else None,
                       output_repr=stage.output_repr)

    def runs(self) -> List[RunRecord]:
        """Every run executed by this engine, oldest first."""
        return list(self._runs)

    def invalidate(self) -> None:
        """Drop the stage cache (force full recomputation)."""
        self._cache.clear()

    def seed_cache(self, entries) -> int:
        """Pre-load ``(cache_key, output)`` pairs (journal replay).

        Recovery seeds a replacement engine's cache from the crashed
        run's durable CHECKPOINT records, so completed stages replay as
        cache hits and only in-flight work re-executes.
        """
        count = 0
        for key, output in entries:
            if key not in self._cache:
                self._cache[key] = output
                count += 1
        return count

    def _cache_key(self, node: WorkflowNode, params: Dict[str, Any],
                   upstream_keys: Dict[str, str]) -> str:
        return stage_cache_key({
            "node": node.node_id,
            "params": {name: params.get(name) for name in node.params_used},
            "deps": [upstream_keys[dep] for dep in node.depends_on],
        }, node.node_id)


def stage_cache_key(basis: Dict[str, Any], node_id: str) -> str:
    """Hash a stage's cache basis into its content-addressed key.

    The basis is canonicalised first — nested dicts are key-sorted and
    tuples/lists unified — so a parameter dict built in a different
    insertion order still hits the cache.  Values with no canonical JSON
    form (objects, sets, ...) raise a clear error naming the stage and
    parameter path rather than being silently keyed by ``repr`` (which
    can embed memory addresses, making every run a miss).
    """
    try:
        normalised = canonical(basis, f"stage {node_id!r}")
    except CanonicalisationError as err:
        raise CanonicalisationError(
            f"workflow cache key for {err}") from None
    text = json.dumps(normalised, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def _short_repr(value: Any, limit: int = 120) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[:limit - 3] + "..."

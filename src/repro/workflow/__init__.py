"""Workflow composition — the paper's future-work feature, implemented.

"A workflow is a conglomerate scientific process composed of a directed
acyclic graph of basic execution units (e.g. executables, scripts, web
services, etc.).  Workflows allow 'advanced' users ... to create complex
experiments that can be easily tweaked and replayed, offering
reproducibility and traceability."

This package provides the DAG model, an execution engine with
content-addressed stage caching (tweak one parameter, re-run, and only
the downstream stages recompute), and a provenance trail per run.
"""

from repro.workflow.dag import CycleError, Workflow, WorkflowNode
from repro.workflow.engine import RunRecord, StageRecord, WorkflowEngine
from repro.workflow.cloud import CloudWorkflowEngine, ServiceCall, service_node
from repro.workflow.compose import compose_wps_process

__all__ = [
    "CloudWorkflowEngine",
    "CycleError",
    "RunRecord",
    "ServiceCall",
    "StageRecord",
    "Workflow",
    "WorkflowEngine",
    "WorkflowNode",
    "compose_wps_process",
    "service_node",
]

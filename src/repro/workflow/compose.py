"""Service composition: publish a workflow as a new WPS process.

The XaaS promise includes "to compose new services" from existing ones
(Sections III-A and VI: a "mashup culture where resources can be shared,
reused, and combined to create more sophisticated assets").  This module
closes that loop: a validated :class:`~repro.workflow.dag.Workflow`
becomes a first-class :class:`~repro.services.wps.WpsProcess` — the
composite runs behind the same Execute operation, deployable on the same
replicas, and other workflows can call *it* in turn.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.services.wps import InputSpec, ProcessDescription, WpsProcess
from repro.workflow.dag import Workflow
from repro.workflow.engine import WorkflowEngine


def compose_wps_process(workflow: Workflow,
                        identifier: str,
                        title: str,
                        inputs: Sequence[InputSpec],
                        output_node: str,
                        engine: Optional[WorkflowEngine] = None,
                        cost_per_stage: float = 0.5,
                        abstract: str = "") -> WpsProcess:
    """Wrap ``workflow`` as a WPS process.

    ``inputs`` declare the process interface; they are passed through as
    the workflow's parameters.  ``output_node``'s output becomes the
    Execute response (it must be a dict).  The engine is shared across
    invocations, so repeated Executes with identical parameters enjoy the
    workflow cache — a composed service inherits replay-cheapness.
    """
    workflow.validate()
    if output_node not in {n.node_id for n in workflow.nodes()}:
        raise ValueError(f"unknown output node {output_node!r}")
    shared_engine = engine if engine is not None else WorkflowEngine()

    description = ProcessDescription(
        identifier=identifier,
        title=title,
        abstract=abstract or (f"Composite process over workflow "
                              f"{workflow.name!r}"),
        inputs=list(inputs),
        outputs=[output_node],
    )

    def run(validated_inputs: Dict[str, Any]) -> Dict[str, Any]:
        record = shared_engine.run(workflow, validated_inputs)
        output = record.outputs[output_node]
        if not isinstance(output, dict):
            output = {"value": output}
        result = dict(output)
        result["provenance"] = {
            "workflow": workflow.name,
            "run_id": record.run_id,
            "stages": [s.node_id for s in record.stages],
            "cache_hits": record.cache_hits(),
        }
        return result

    def cost(validated_inputs: Dict[str, Any]) -> float:
        return cost_per_stage * len(workflow.nodes())

    return WpsProcess(description, run=run, cost=cost)

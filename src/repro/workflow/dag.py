"""Workflow DAG model.

A :class:`Workflow` is a named set of :class:`WorkflowNode` execution
units with explicit dependencies.  Nodes compute
``fn(params, upstream_outputs) -> output``; validation rejects cycles,
unknown dependencies and duplicate ids at construction time so the
engine can assume a well-formed graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence


class CycleError(ValueError):
    """The dependency graph contains a cycle."""


@dataclass
class WorkflowNode:
    """One basic execution unit.

    ``fn(params, upstream)`` receives the workflow parameters and a dict
    of dependency outputs keyed by node id.  ``params_used`` names the
    workflow parameters the node's output depends on — the cache key
    honours only those, so tweaking an unrelated parameter doesn't
    invalidate the stage.
    """

    node_id: str
    fn: Callable[[Dict[str, Any], Dict[str, Any]], Any]
    depends_on: Sequence[str] = ()
    params_used: Sequence[str] = ()
    description: str = ""
    cost: float = 0.1           # CPU charge when run on an instance


class Workflow:
    """A named DAG of execution units."""

    def __init__(self, name: str):
        self.name = name
        self._nodes: Dict[str, WorkflowNode] = {}

    def add(self, node: WorkflowNode) -> "Workflow":
        """Add a node; returns self for chaining."""
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node {node.node_id!r}")
        self._nodes[node.node_id] = node
        return self

    def node(self, node_id: str) -> WorkflowNode:
        """Look a node up by id."""
        return self._nodes[node_id]

    def nodes(self) -> List[WorkflowNode]:
        """All nodes, insertion order."""
        return list(self._nodes.values())

    def validate(self) -> None:
        """Check dependencies exist and the graph is acyclic."""
        for node in self._nodes.values():
            for dep in node.depends_on:
                if dep not in self._nodes:
                    raise ValueError(
                        f"node {node.node_id!r} depends on unknown {dep!r}")
        self.topological_order()

    def topological_order(self) -> List[WorkflowNode]:
        """Nodes in dependency order (Kahn's algorithm).

        Raises :class:`CycleError` if the graph has a cycle.
        """
        indegree = {nid: 0 for nid in self._nodes}
        dependents: Dict[str, List[str]] = {nid: [] for nid in self._nodes}
        for node in self._nodes.values():
            for dep in node.depends_on:
                if dep not in self._nodes:
                    raise ValueError(f"unknown dependency {dep!r}")
                indegree[node.node_id] += 1
                dependents[dep].append(node.node_id)
        ready = [nid for nid, deg in indegree.items() if deg == 0]
        order: List[WorkflowNode] = []
        while ready:
            nid = ready.pop(0)
            order.append(self._nodes[nid])
            for child in dependents[nid]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(child)
        if len(order) != len(self._nodes):
            stuck = sorted(nid for nid, deg in indegree.items() if deg > 0)
            raise CycleError(f"cycle involving {stuck}")
        return order

    def downstream_of(self, node_id: str) -> List[str]:
        """Ids of every node transitively depending on ``node_id``."""
        result = set()
        frontier = [node_id]
        while frontier:
            current = frontier.pop()
            for node in self._nodes.values():
                if current in node.depends_on and node.node_id not in result:
                    result.add(node.node_id)
                    frontier.append(node.node_id)
        return sorted(result)

"""Cloud-executed workflows: execution units as web services.

Section VIII defines workflow nodes as "basic execution units (e.g.
executables, scripts, web services, etc.)".  The plain
:class:`~repro.workflow.engine.WorkflowEngine` runs callables locally;
this module runs a workflow *against the deployment*: nodes marked as
service calls are dispatched to WPS endpoints over the simulated
network, so a composed experiment pays real queueing, shares the cache
semantics, and leaves the same provenance.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.obs.context import SpanContext, inject_context
from repro.obs.hub import obs_of
from repro.services.transport import HttpRequest, HttpResponse, Network
from repro.sim import Signal, Simulator
from repro.workflow.dag import Workflow, WorkflowNode
from repro.workflow.engine import (
    RunRecord,
    StageRecord,
    _short_repr,
    stage_cache_key,
)

_run_ids = itertools.count()


@dataclass(frozen=True)
class ServiceCall:
    """Marks a node as a WPS Execute against the live deployment.

    ``address_of`` resolves the endpoint at dispatch time (sessions
    migrate; reading the address late follows them);
    ``build_inputs(params, upstream)`` produces the Execute inputs.
    """

    process_id: str
    address_of: Callable[[], Optional[str]]
    build_inputs: Callable[[Dict[str, Any], Dict[str, Any]], Dict[str, Any]]


def service_node(node_id: str, call: ServiceCall,
                 depends_on=(), params_used=(),
                 description: str = "") -> WorkflowNode:
    """A :class:`WorkflowNode` whose execution is a web-service call."""
    node = WorkflowNode(node_id=node_id, fn=lambda p, u: None,
                        depends_on=depends_on, params_used=params_used,
                        description=description or f"WPS {call.process_id}")
    node.service_call = call  # type: ignore[attr-defined]
    return node


class CloudWorkflowEngine:
    """Runs workflows whose nodes may be remote service calls.

    Execution happens inside the simulator (``run`` returns a signal
    fired with the :class:`RunRecord`), because service calls take
    simulated time.  Stage caching matches the local engine: replaying
    an identical workflow re-issues no service calls at all.
    """

    def __init__(self, sim: Simulator, network: Network,
                 request_timeout: float = 600.0,
                 client=None):
        self.sim = sim
        self.network = network
        self.request_timeout = request_timeout
        #: optional shared ResilientClient; with one attached, stage
        #: dispatch rides the fabric (retry/breaker/admission) and uses
        #: the canonical v1 route, surviving mid-workflow crashes
        self.client = client
        self._cache: Dict[str, Any] = {}
        self._runs: list = []

    def runs(self) -> list:
        """Provenance of every run, oldest first."""
        return list(self._runs)

    def run(self, workflow: Workflow,
            parameters: Optional[Dict[str, Any]] = None,
            parent: Optional[SpanContext] = None) -> Signal:
        """Execute ``workflow``; returns a signal fired with the record.

        A failed service call (refused, timeout, non-2xx) fires the
        signal with ``None`` after recording the partial provenance.
        The run is always traced: pass ``parent`` (e.g. a session's
        trace context) to join an existing trace, else a fresh trace is
        started.  Stage spans propagate over the wire to the replicas
        the service calls land on.
        """
        workflow.validate()
        params = dict(parameters or {})
        record = RunRecord(run_id=f"cwf-{next(_run_ids):05d}",
                           workflow=workflow.name, parameters=params)
        done = self.sim.signal(f"workflow.{workflow.name}")
        tracer = obs_of(self.sim).tracer
        run_span = tracer.start_span(
            f"workflow.run {workflow.name}", parent=parent, kind="workflow",
            attributes={"run_id": record.run_id})
        record.trace_id = run_span.trace_id

        def runner():
            keys: Dict[str, str] = {}
            outputs: Dict[str, Any] = {}
            for node in workflow.topological_order():
                key = self._cache_key(node, params, keys)
                keys[node.node_id] = key
                started = self.sim.now
                stage_span = tracer.start_span(
                    f"workflow.stage {node.node_id}", parent=run_span,
                    kind="stage", attributes={"cache_key": key})
                if key in self._cache:
                    output = self._cache[key]
                    cached = True
                else:
                    cached = False
                    call: Optional[ServiceCall] = getattr(
                        node, "service_call", None)
                    if call is None:
                        upstream = {dep: outputs[dep]
                                    for dep in node.depends_on}
                        output = node.fn(params, upstream)
                    else:
                        upstream = {dep: outputs[dep]
                                    for dep in node.depends_on}
                        inputs = call.build_inputs(params, upstream)
                        if self.client is not None:
                            # resilient dispatch: canonical v1 route,
                            # retries/breakers/admission via the fabric;
                            # Execute is replayable, hence safe=True
                            request = HttpRequest(
                                "POST",
                                f"/v1/wps/processes/{call.process_id}"
                                f"/execute",
                                body={"inputs": inputs})
                            reply = yield self.client.call(
                                call.address_of, request, safe=True,
                                timeout=self.request_timeout,
                                trace=stage_span.context)
                        else:
                            address = call.address_of()
                            if address is None:
                                stage_span.finish(error="no address")
                                self._finish(record, done, run_span,
                                             failed=True)
                                return
                            request = HttpRequest(
                                "POST",
                                f"/wps/processes/{call.process_id}/execute",
                                body={"inputs": inputs})
                            inject_context(stage_span.context,
                                           request.headers)
                            reply = yield self.network.request(
                                address, request,
                                timeout=self.request_timeout)
                        if not (isinstance(reply, HttpResponse) and reply.ok):
                            stage_span.finish(error=f"service call failed: "
                                                    f"{reply!r}")
                            self._finish(record, done, run_span, failed=True)
                            return
                        output = reply.body["outputs"]
                    self._cache[key] = output
                stage_span.set_attribute("cached", cached)
                stage_span.finish()
                outputs[node.node_id] = output
                record.stages.append(StageRecord(
                    node_id=node.node_id, cache_key=key, cached=cached,
                    output_repr=_short_repr(output),
                    started_at=started, finished_at=self.sim.now))
            record.outputs = outputs
            self._finish(record, done, run_span, failed=False)

        self.sim.spawn(runner(), name=f"workflow.{workflow.name}")
        return done

    def _finish(self, record: RunRecord, done: Signal, run_span,
                failed: bool) -> None:
        run_span.finish(error="workflow failed" if failed else None)
        self._runs.append(record)
        done.fire(None if failed else record)

    def _cache_key(self, node: WorkflowNode, params: Dict[str, Any],
                   upstream_keys: Dict[str, str]) -> str:
        call: Optional[ServiceCall] = getattr(node, "service_call", None)
        return stage_cache_key({
            "node": node.node_id,
            "process": call.process_id if call else None,
            "params": {name: params.get(name) for name in node.params_used},
            "deps": [upstream_keys[dep] for dep in node.depends_on],
        }, node.node_id)

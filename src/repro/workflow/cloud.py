"""Cloud-executed workflows: execution units as web services.

Section VIII defines workflow nodes as "basic execution units (e.g.
executables, scripts, web services, etc.)".  The plain
:class:`~repro.workflow.engine.WorkflowEngine` runs callables locally;
this module runs a workflow *against the deployment*: nodes marked as
service calls are dispatched to WPS endpoints over the simulated
network, so a composed experiment pays real queueing, shares the cache
semantics, and leaves the same provenance.

With a :class:`~repro.durable.journal.JournalStore` attached the engine
is *durable*: every run writes ahead SCHEDULED/STARTED records, each
completed stage is journaled as a CHECKPOINT, ownership is held via a
journal lease renewed by a heartbeat process, and an executor crash
(the hosting :class:`~repro.cloud.instance.Instance` failing) leaves an
orphaned journal that a
:class:`~repro.durable.recovery.RecoveryManager` can re-adopt on a
replacement executor — replaying completed stages from cache so only
the in-flight stage re-executes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.obs.context import SpanContext, inject_context
from repro.obs.hub import obs_of
from repro.services.transport import HttpRequest, HttpResponse, Network
from repro.sim import Interrupt, Signal, Simulator
from repro.workflow.dag import Workflow, WorkflowNode
from repro.workflow.engine import (
    RunRecord,
    StageRecord,
    _short_repr,
    stage_cache_key,
)

_run_ids = itertools.count()


@dataclass(frozen=True)
class ServiceCall:
    """Marks a node as a WPS Execute against the live deployment.

    ``address_of`` resolves the endpoint at dispatch time (sessions
    migrate; reading the address late follows them);
    ``build_inputs(params, upstream)`` produces the Execute inputs.
    """

    process_id: str
    address_of: Callable[[], Optional[str]]
    build_inputs: Callable[[Dict[str, Any], Dict[str, Any]], Dict[str, Any]]


@dataclass(frozen=True)
class StageFailure:
    """Typed description of why a workflow stage failed.

    ``kind`` is one of ``"no-address"`` (the session the stage targeted
    migrated away and no endpoint resolves any more), ``"service-error"``
    (the call completed with refusal/timeout/non-2xx) or
    ``"executor-lost"`` (the hosting instance died or lost its lease
    mid-run).  Failed runs carry this on ``RunRecord.failure`` instead
    of letting a bare exception escape the engine.
    """

    node_id: str
    kind: str
    detail: str = ""

    def __str__(self) -> str:
        return f"stage {self.node_id!r} failed ({self.kind}): {self.detail}"


def service_node(node_id: str, call: ServiceCall,
                 depends_on=(), params_used=(),
                 description: str = "") -> WorkflowNode:
    """A :class:`WorkflowNode` whose execution is a web-service call."""
    node = WorkflowNode(node_id=node_id, fn=lambda p, u: None,
                        depends_on=depends_on, params_used=params_used,
                        description=description or f"WPS {call.process_id}")
    node.service_call = call  # type: ignore[attr-defined]
    return node


class CloudWorkflowEngine:
    """Runs workflows whose nodes may be remote service calls.

    Execution happens inside the simulator (``run`` returns a signal
    fired with the :class:`RunRecord`), because service calls take
    simulated time.  Stage caching matches the local engine: replaying
    an identical workflow re-issues no service calls at all.

    Durable-execution knobs (all optional):

    * ``store`` — a :class:`~repro.durable.journal.JournalStore`; runs
      are journaled and leased.
    * ``executor`` — the :class:`~repro.cloud.instance.Instance` this
      engine runs on.  If it dies mid-run the runner is interrupted and
      the run becomes an orphan; while it is blackholed journal writes
      buffer locally (they cannot reach the store) and the lease is not
      renewed — so a healed executor that lost its lease gets *fenced*
      rather than scribbling over the adopter's records.
    * ``lease_ttl`` — lease duration; the heartbeat renews every third
      of it.
    * ``scheduler`` — a :class:`~repro.sched.router.ShardedRouter`;
      with one attached every non-cached service-call stage is admitted
      through the scheduling plane (``sched.submit`` span at workflow
      class, in-flight gating when the plane bounds concurrency).
    """

    def __init__(self, sim: Simulator, network: Network,
                 request_timeout: float = 600.0,
                 client=None, store=None, executor=None,
                 executor_id: Optional[str] = None,
                 lease_ttl: float = 60.0,
                 scheduler=None):
        self.sim = sim
        self.network = network
        self.request_timeout = request_timeout
        #: optional shared ResilientClient; with one attached, stage
        #: dispatch rides the fabric (retry/breaker/admission) and uses
        #: the canonical v1 route, surviving mid-workflow crashes
        self.client = client
        self.scheduler = scheduler
        self.store = store
        self.executor = executor
        self.executor_id = executor_id or (
            executor.instance_id if executor is not None else "cwf-local")
        self.lease_ttl = lease_ttl
        self._cache: Dict[str, Any] = {}
        self._runs: list = []

    def runs(self) -> list:
        """Provenance of every run, oldest first."""
        return list(self._runs)

    def seed_cache(self, entries) -> int:
        """Pre-load ``(cache_key, output)`` pairs (journal replay)."""
        count = 0
        for key, output in entries:
            if key not in self._cache:
                self._cache[key] = output
                count += 1
        return count

    # -- executor state ------------------------------------------------------

    def _executor_gone(self) -> bool:
        return self.executor is not None and self.executor.is_gone

    def _executor_dark(self) -> bool:
        """Blackholed: alive, but nothing it sends leaves the NIC."""
        return self.executor is not None and self.executor.network_blackholed

    # -- run -----------------------------------------------------------------

    def run(self, workflow: Workflow,
            parameters: Optional[Dict[str, Any]] = None,
            parent: Optional[SpanContext] = None,
            run_id: Optional[str] = None) -> Signal:
        """Execute ``workflow``; returns a signal fired with the record.

        A failed service call (refused, timeout, non-2xx) or a resolver
        that yields no address fires the signal with ``None`` after
        recording partial provenance with a typed
        :class:`StageFailure` on ``record.failure`` (and a FAILED
        journal record when journaled).  Pass ``run_id`` to resume a
        journaled run under its original identity (recovery adoption).
        The run is always traced: pass ``parent`` (e.g. a session's
        trace context) to join an existing trace, else a fresh trace is
        started.  Stage spans propagate over the wire to the replicas
        the service calls land on.
        """
        workflow.validate()
        params = dict(parameters or {})
        adopting = run_id is not None
        record = RunRecord(run_id=run_id or f"cwf-{next(_run_ids):05d}",
                           workflow=workflow.name, parameters=params)
        done = self.sim.signal(f"workflow.{workflow.name}")
        tracer = obs_of(self.sim).tracer
        run_span = tracer.start_span(
            f"workflow.run {workflow.name}", parent=parent, kind="workflow",
            attributes={"run_id": record.run_id, "adopted": adopting})
        record.trace_id = run_span.trace_id

        journal = None
        journaled_stages: set = set()
        if self.store is not None:
            from repro.durable import journal as j
            from repro.durable.state import replay
            journal = self.store.open_or_create(record.run_id)
            prior = replay(journal.records(), run_id=record.run_id)
            journaled_stages = set(prior.completed)
            self.seed_cache(prior.cache_entries())
            journal.acquire(self.executor_id, self.lease_ttl)
            if adopting and prior.attempts:
                journal.append(j.ADOPTED, owner=self.executor_id,
                               previous=prior.owner)
            else:
                ok, clean = j.jsonable(params)
                if not journal.records() or not prior.workflow:
                    journal.append(j.SCHEDULED, sync=False,
                                   workflow=workflow.name,
                                   parameters=clean if ok else {})
                journal.append(j.STARTED, owner=self.executor_id)

        flags = {"finished": False}

        def fail(node_id: str, kind: str, detail: str, stage_span) -> None:
            failure = StageFailure(node_id=node_id, kind=kind, detail=detail)
            record.failure = failure
            stage_span.finish(error=str(failure))
            self._journal_failed(journal, failure)
            self._finish(record, done, run_span, failed=True, flags=flags,
                         journal=journal)

        def runner():
            try:
                keys: Dict[str, str] = {}
                outputs: Dict[str, Any] = {}
                for node in workflow.topological_order():
                    key = self._cache_key(node, params, keys)
                    keys[node.node_id] = key
                    started = self.sim.now
                    stage_span = tracer.start_span(
                        f"workflow.stage {node.node_id}", parent=run_span,
                        kind="stage", attributes={"cache_key": key})
                    if key in self._cache:
                        output = self._cache[key]
                        cached = True
                    else:
                        cached = False
                        call: Optional[ServiceCall] = getattr(
                            node, "service_call", None)
                        upstream = {dep: outputs[dep]
                                    for dep in node.depends_on}
                        if call is None:
                            output = node.fn(params, upstream)
                        else:
                            inputs = call.build_inputs(params, upstream)
                            # every non-cached stage dispatch is admitted
                            # through the scheduling plane (when attached)
                            ticket = (self.scheduler.admit_call(
                                record.run_id, node.node_id,
                                parent=stage_span.context)
                                if self.scheduler is not None else None)
                            if ticket is not None and ticket.wait is not None:
                                yield ticket.wait
                            try:
                                if self.client is not None:
                                    # resilient dispatch: canonical v1
                                    # route, retries/breakers/admission
                                    # via the fabric; Execute is
                                    # replayable, hence safe=True
                                    request = HttpRequest(
                                        "POST",
                                        f"/v1/wps/processes/"
                                        f"{call.process_id}/execute",
                                        body={"inputs": inputs})
                                    reply = yield self.client.call(
                                        call.address_of, request, safe=True,
                                        timeout=self.request_timeout,
                                        trace=stage_span.context)
                                else:
                                    address = call.address_of()
                                    if address is None:
                                        fail(node.node_id, "no-address",
                                             f"no endpoint resolves for WPS "
                                             f"process {call.process_id!r} "
                                             f"(session migrated away?)",
                                             stage_span)
                                        return
                                    request = HttpRequest(
                                        "POST",
                                        f"/wps/processes/{call.process_id}"
                                        f"/execute",
                                        body={"inputs": inputs})
                                    inject_context(stage_span.context,
                                                   request.headers)
                                    reply = yield self.network.request(
                                        address, request,
                                        timeout=self.request_timeout)
                                if not (isinstance(reply, HttpResponse)
                                        and reply.ok):
                                    fail(node.node_id, "service-error",
                                         f"service call failed: {reply!r}",
                                         stage_span)
                                    return
                                output = reply.body["outputs"]
                            finally:
                                if ticket is not None:
                                    self.scheduler.release_call(
                                        ticket,
                                        error=(str(record.failure)
                                               if record.failure is not None
                                               else None))
                        self._cache[key] = output
                    stage_span.set_attribute("cached", cached)
                    stage_span.finish()
                    outputs[node.node_id] = output
                    record.stages.append(StageRecord(
                        node_id=node.node_id, cache_key=key, cached=cached,
                        output_repr=_short_repr(output),
                        started_at=started, finished_at=self.sim.now))
                    if node.node_id not in journaled_stages:
                        if not self._journal_stage(journal,
                                                   record.stages[-1],
                                                   output):
                            # fenced: another executor owns this run now
                            self._finish(record, done, run_span,
                                         failed=True, flags=flags,
                                         journal=None)
                            return
                record.outputs = outputs
                if journal is not None:
                    from repro.durable import journal as j
                    try:
                        journal.append(j.DONE,
                                       outputs_repr=_short_repr(outputs))
                        journal.release(self.executor_id)
                    except j.LeaseError:
                        self._finish(record, done, run_span, failed=True,
                                     flags=flags, journal=None)
                        return
                self._finish(record, done, run_span, failed=False,
                             flags=flags, journal=journal)
            except Interrupt as stop:
                # the executor died (or lost its lease) mid-stage: the
                # journal's synced prefix survives, everything in memory
                # is gone.  The run becomes an orphan for recovery.
                if journal is not None:
                    journal.crash()
                record.failure = StageFailure(
                    node_id="?", kind="executor-lost",
                    detail=str(stop.cause))
                self._finish(record, done, run_span, failed=True,
                             flags=flags, journal=None)

        runner_proc = self.sim.spawn(
            runner(), name=f"workflow.{workflow.name}")

        if self.executor is not None:
            def executor_watch():
                yield self.executor.terminated
                if not flags["finished"] and runner_proc.alive:
                    runner_proc.interrupt("executor crashed")
            self.sim.spawn(executor_watch(),
                           name=f"workflow.watch.{record.run_id}")

        if journal is not None:
            self.sim.spawn(self._heartbeat(journal, flags, runner_proc),
                           name=f"workflow.lease.{record.run_id}")
        return done

    def _heartbeat(self, journal, flags, runner_proc):
        """Renew the run lease until the run finishes.

        A blackholed executor skips renewal (its writes cannot leave the
        NIC), so its lease expires and recovery can take over; when it
        heals, the failed renewal tells it it lost ownership and the
        runner is stopped — exactly one owner survives.
        """
        from repro.durable import journal as j
        interval = max(self.lease_ttl / 3.0, 0.001)
        while not flags["finished"]:
            yield interval
            if flags["finished"] or self._executor_gone():
                return
            if self._executor_dark():
                continue
            try:
                journal.renew(self.executor_id, self.lease_ttl)
            except j.LeaseError as err:
                obs_of(self.sim).events.emit(
                    "durable.lease.lost", run=journal.run_id,
                    owner=self.executor_id)
                if not flags["finished"] and runner_proc.alive:
                    runner_proc.interrupt(f"lease lost: {err}")
                return

    def _journal_stage(self, journal, stage: StageRecord,
                       output: Any) -> bool:
        """CHECKPOINT a completed stage; ``False`` when fenced out."""
        if journal is None:
            return True
        from repro.durable import journal as j
        ok, clean = j.jsonable(output)
        try:
            journal.append(j.CHECKPOINT, sync=not self._executor_dark(),
                           node_id=stage.node_id, cache_key=stage.cache_key,
                           cached=stage.cached, replayable=ok,
                           output=clean if ok else None,
                           output_repr=stage.output_repr)
        except j.Fenced:
            return False
        return True

    def _journal_failed(self, journal, failure: StageFailure) -> None:
        if journal is None:
            return
        from repro.durable import journal as j
        try:
            journal.append(j.FAILED, error=str(failure),
                           stage=failure.node_id,
                           failure_kind=failure.kind)
            journal.release(self.executor_id)
        except j.LeaseError:
            pass  # fenced: the adopter owns the journal now

    def _finish(self, record: RunRecord, done: Signal, run_span,
                failed: bool, flags: Optional[dict] = None,
                journal=None) -> None:
        if flags is not None:
            if flags["finished"]:
                return
            flags["finished"] = True
        run_span.finish(error="workflow failed" if failed else None)
        self._runs.append(record)
        if not done.fired:
            done.fire(None if failed else record)

    def _cache_key(self, node: WorkflowNode, params: Dict[str, Any],
                   upstream_keys: Dict[str, str]) -> str:
        call: Optional[ServiceCall] = getattr(node, "service_call", None)
        return stage_cache_key({
            "node": node.node_id,
            "process": call.process_id if call else None,
            "params": {name: params.get(name) for name in node.params_used},
            "deps": [upstream_keys[dep] for dep in node.depends_on],
        }, node.node_id)

"""repro — a reproduction of the Environmental Virtual Observatory pilot.

Reproduces "Widening the Circle of Engagement Around Environmental
Issues using Cloud-based Tools" (Elkhatib et al., ICDCS 2019) as a
simulated-but-complete system: hybrid cloud substrate, XaaS/REST/OGC
service fabric, Resource Broker and Load Balancer, the Model Library,
TOPMODEL and FUSE hydrology, the data/portal layers, workflow
composition and the participatory-design process.

Quickstart::

    from repro import Evop

    evop = Evop().bootstrap()
    evop.run_for(600)                       # let the services boot
    widget = evop.left().open_modelling_widget("alice")
    evop.run_for(10)
    widget.load(); evop.run_for(10)
    run = widget.run(); evop.run_for(120)
    print(run.value.outputs["peak_mm_h"])
"""

from repro.core import Evop, EvopConfig

__version__ = "1.0.0"

__all__ = ["Evop", "EvopConfig", "__version__"]

"""Rendezvous-hash routing of placements onto control-plane shards.

One Load Balancer object is a scaling choke point: every placement,
drain pass and autoscale decision walks *all* of its replica and
session state.  The :class:`ShardedRouter` splits the control plane
into N shards — each a slimmed per-shard Load Balancer owning a slice
of every service — and routes each session/run to its shard by
**rendezvous (highest-random-weight) hashing**, which is deterministic
(pure SHA-256, no RNG), uniform, and minimally disruptive: adding or
removing a shard only moves the keys that land on it.

The router is also the one front door the upper layers submit through:
``submit_session`` (broker), ``admit_call`` (workflow stage dispatch)
and ``batch_submission`` (ensemble sweeps) — so priority classes,
admission gates and ``sched.submit`` spans attach in exactly one place.
"""

from __future__ import annotations

import dataclasses
import hashlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.hub import obs_of
from repro.sched.core import InFlightGate, PriorityClass
from repro.sched.ledger import CapacityLedger
from repro.sim import MetricsRegistry, Simulator


def _score(key: str, shard_id: int) -> int:
    digest = hashlib.sha256(f"{shard_id}|{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def rendezvous_shard(key: str, shard_ids: Sequence[int]) -> int:
    """The shard that wins the rendezvous for ``key``.

    Every shard scores the key independently; the highest score wins.
    Removing a shard therefore only re-homes the keys it was winning,
    and adding one only claims the keys it now outscores everyone on —
    the minimal-movement property the property tests pin.
    """
    if not shard_ids:
        raise ValueError("no shards to route onto")
    return max(shard_ids, key=lambda sid: (_score(key, sid), sid))


@dataclass
class CallTicket:
    """One admitted (or waiting) workflow-stage dispatch."""

    shard: int
    span: Any
    wait: Optional[Any] = None      # Signal to yield on when gated
    released: bool = False


class ShardedRouter:
    """The scheduling plane: N shard Load Balancers behind one door.

    ``lbs`` are already-constructed Load Balancers (shard id = list
    index) sharing one simulator, session table and (usually) one
    :class:`~repro.sched.ledger.CapacityLedger`.  At ``shards == 1``
    every call delegates straight to the single LB with the same
    arguments the pre-refactor call sites used — behaviour-identical by
    construction, which the shard-scaling bench asserts bit-for-bit.
    """

    def __init__(self, sim: Simulator, lbs: Sequence[Any],
                 ledger: Optional[CapacityLedger] = None,
                 multicloud=None,
                 workflow_inflight: Optional[int] = None,
                 metrics: Optional[MetricsRegistry] = None):
        if not lbs:
            raise ValueError("need at least one shard LB")
        self.sim = sim
        self.lbs: List[Any] = list(lbs)
        self.ledger = ledger
        self.multicloud = (multicloud if multicloud is not None
                           else getattr(lbs[0], "multicloud", None))
        self.metrics = metrics if metrics is not None else MetricsRegistry(
            sim, namespace="sched")
        self._workflow_gate = InFlightGate(sim, workflow_inflight,
                                           name="sched.workflow")
        #: tenancy registry shared by every shard (attach_tenants)
        self.tenants: Optional[Any] = None
        #: service name -> shard ids hosting a slice of it
        self._service_shards: Dict[str, List[int]] = {}

    # -- topology ------------------------------------------------------------

    @property
    def shards(self) -> int:
        """Number of control-plane shards."""
        return len(self.lbs)

    def shard_ids(self) -> List[int]:
        """All shard ids, ascending."""
        return list(range(len(self.lbs)))

    def shard_of(self, key: str,
                 service_name: Optional[str] = None) -> int:
        """The shard ``key`` rendezvous-routes to.

        With ``service_name`` given, only shards hosting a slice of
        that service participate in the rendezvous.
        """
        ids = self._service_shards.get(service_name) if service_name else None
        return rendezvous_shard(key, ids or self.shard_ids())

    def lb_of(self, key: str, service_name: Optional[str] = None):
        """The shard LB ``key`` routes to."""
        return self.lbs[self.shard_of(key, service_name)]

    # -- service management --------------------------------------------------

    def manage(self, service, initial_replicas: Optional[int] = None):
        """Manage ``service``, splitting its slices across the shards.

        At one shard the service object is handed to the LB untouched.
        With N shards each participating shard gets its own
        ``ManagedService`` clone whose replica floors/ceilings split the
        originals as evenly as possible; shards whose slice would have
        ``max_replicas == 0`` do not host the service and are excluded
        from its rendezvous.
        """
        if len(self.lbs) == 1:
            self._service_shards[service.name] = [0]
            return self.lbs[0].manage(service, initial_replicas)
        mins = _distribute(service.min_replicas, len(self.lbs))
        maxes = _distribute(service.max_replicas, len(self.lbs))
        initials = (_distribute(initial_replicas, len(self.lbs))
                    if initial_replicas is not None
                    else [None] * len(self.lbs))
        hosting: List[int] = []
        slices = []
        for shard, lb in enumerate(self.lbs):
            if maxes[shard] == 0:
                continue
            piece = dataclasses.replace(
                service, replicas=[], pending_launches=0,
                min_replicas=min(mins[shard], maxes[shard]),
                max_replicas=maxes[shard])
            lb.manage(piece, initials[shard])
            hosting.append(shard)
            slices.append(piece)
        self._service_shards[service.name] = hosting
        return slices

    def services(self) -> List[Any]:
        """Every managed service slice across all shards."""
        out: List[Any] = []
        for lb in self.lbs:
            out.extend(lb.services())
        return out

    def service_slices(self, name: str) -> List[Any]:
        """The per-shard slices of one service, shard order."""
        return [lb.service(name)
                for shard, lb in enumerate(self.lbs)
                if shard in self._service_shards.get(name, [])]

    def slices(self, name: str) -> List[Any]:
        """``(lb, service_slice)`` pairs for one service, shard order.

        The hook capacity warm-up paths (RB ``preboot``) use to grow
        each shard's slice through its own Load Balancer.
        """
        return [(self.lbs[shard], self.lbs[shard].service(name))
                for shard in self._service_shards.get(name, [0])]

    # -- session placement (broker layer) ------------------------------------

    def submit_session(self, session, service_name: str,
                       priority: PriorityClass = PriorityClass.INTERACTIVE
                       ) -> int:
        """Place ``session`` on its rendezvous shard; returns the shard."""
        shard = self.shard_of(session.session_id, service_name)
        self.metrics.counter(
            f"submit.{priority.name.lower()}").increment()
        tenant = getattr(session, "tenant", None)
        if tenant is not None:
            self.metrics.counter(f"submit.tenant.{tenant}").increment()
        self.lbs[shard].place_session(session, service_name,
                                      priority=priority)
        return shard

    def submit_many(self, sessions, service_name: str,
                    priority: PriorityClass = PriorityClass.INTERACTIVE
                    ) -> Dict[int, int]:
        """Batch submission; returns placements per shard."""
        per_shard: Dict[int, int] = {}
        for session in sessions:
            shard = self.submit_session(session, service_name,
                                        priority=priority)
            per_shard[shard] = per_shard.get(shard, 0) + 1
        return per_shard

    # -- workflow stage dispatch ---------------------------------------------

    def admit_call(self, run_id: str, node_id: str = "",
                   parent=None) -> CallTicket:
        """Admit one workflow-stage service call through the plane.

        Returns a :class:`CallTicket`; when ``ticket.wait`` is not
        ``None`` the caller must ``yield`` it before dispatching (the
        in-flight gate is full).  ``release_call`` must follow the
        dispatch, success or not.
        """
        shard = self.shard_of(run_id)
        span = obs_of(self.sim).tracer.start_span(
            "sched.submit", parent=parent, kind="sched",
            attributes={"shard": shard, "class": "workflow",
                        "run_id": run_id, "node": node_id})
        self.metrics.counter("submit.workflow").increment()
        wait = self._workflow_gate.acquire()
        if wait is not None:
            span.annotate("gated", waiting=self._workflow_gate.waiting())
            self.metrics.counter("gated.workflow").increment()
        return CallTicket(shard=shard, span=span, wait=wait)

    def release_call(self, ticket: CallTicket,
                     error: Optional[str] = None) -> None:
        """Finish a stage dispatch: close its span, free its slot."""
        if ticket.released:
            return
        ticket.released = True
        ticket.span.finish(error=error)
        self._workflow_gate.release()

    # -- batch / ensemble sweeps ---------------------------------------------

    @contextmanager
    def batch_submission(self, model_id: str, runs: int, workers: int = 1):
        """Scope one ensemble batch as a BATCH-class submission.

        Opens a ``sched.submit`` span (class ``batch``, shard by model
        id) around the batch; the ensemble runner wraps ``run_many``
        with this so sweeps are visible on the same substrate as
        sessions and stages.
        """
        shard = self.shard_of(model_id)
        span = obs_of(self.sim).tracer.start_span(
            "sched.submit", kind="sched",
            attributes={"shard": shard, "class": "batch",
                        "model": model_id, "runs": runs,
                        "workers": workers})
        self.metrics.counter("submit.batch").increment()
        try:
            yield span
        finally:
            span.finish()

    # -- tenancy -------------------------------------------------------------

    def attach_tenants(self, registry: Any) -> None:
        """Install a tenancy registry on every shard dispatcher.

        Each dispatcher starts weighting its DRR lanes by the
        registry's per-tenant weights and reporting service back into
        the registry's fairness accounting.
        """
        self.tenants = registry
        for lb in self.lbs:
            lb.dispatcher.attach_tenants(registry)

    def tenant_depths(self) -> Dict[str, int]:
        """Per-tenant waiting items, summed over shards and services."""
        merged: Dict[str, int] = {}
        for lb in self.lbs:
            for tenant, depth in lb.dispatcher.tenant_depths().items():
                merged[tenant] = merged.get(tenant, 0) + depth
        return merged

    def shed_by_tenant(self) -> Dict[str, int]:
        """Sheds attributed per tenant, summed across the shards."""
        merged: Dict[str, int] = {}
        for lb in self.lbs:
            for tenant, count in lb.dispatcher.shed_by_tenant().items():
                merged[tenant] = merged.get(tenant, 0) + count
        return merged

    # -- estate views --------------------------------------------------------

    def location_of(self, instance, default: str = "unknown") -> str:
        """Public location lookup (the admin console's view)."""
        if self.multicloud is None:
            return default
        return self.multicloud.location_of(instance, default=default)

    @property
    def cloudbursting(self) -> bool:
        """Whether any shard currently holds public capacity."""
        if self.ledger is not None:
            return self.ledger.bursting
        return any(lb.cloudbursting for lb in self.lbs)

    def depth(self, service_name: str,
              priority: Optional[PriorityClass] = None) -> int:
        """Waiting items for a service, summed across its shards."""
        return sum(lb.dispatcher.depth(service_name, priority)
                   for lb in self.lbs)

    def depths(self) -> Dict[int, Dict[str, Dict[str, int]]]:
        """Per-shard, per-service, per-class queue depths."""
        return {shard: lb.dispatcher.depths()
                for shard, lb in enumerate(self.lbs)}

    def probes(self) -> List[Any]:
        """Telemetry probes: ``(series_name, labels, fn)`` triples.

        One ``sched.queue.depth`` probe per (shard, priority class),
        summed across that shard's services — the saturation dimension
        of the scheduling plane's USE view, labeled so dashboards can
        slice by shard or class.  The telemetry scraper samples these on
        its own clock; the closures read live dispatcher state.
        """
        out: List[Any] = []
        for shard in self.shard_ids():
            for cls in PriorityClass:
                def depth(s=shard, p=cls) -> float:
                    per_service = self.lbs[s].dispatcher.depths()
                    return float(sum(
                        counts.get(p.name.lower(), 0)
                        for counts in per_service.values()))
                out.append(("sched.queue.depth",
                            {"service": "sched", "shard": str(shard),
                             "priority": cls.name.lower()},
                            depth))
        return out

    def drain(self, instance):
        """Route an operator drain to the shard owning ``instance``."""
        for lb in self.lbs:
            if lb._service_of(instance) is not None:
                return lb.drain(instance)
        return self.lbs[0].drain(instance)


def _distribute(total: int, shards: int) -> List[int]:
    """Split ``total`` into ``shards`` near-equal non-negative parts."""
    base, extra = divmod(total, shards)
    return [base + (1 if i < extra else 0) for i in range(shards)]

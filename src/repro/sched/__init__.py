"""The scheduling plane: one placement/dispatch substrate.

Every dispatch path in the deployment — portal session placement
(broker), workflow stage dispatch, ensemble/batch sweeps — funnels
through this package instead of bolting onto a single FIFO inside the
Load Balancer:

* :class:`~repro.sched.core.Dispatcher` — the provider-neutral core:
  priority classes (interactive portal sessions > workflow stages >
  batch sweeps), per-class bounded queues with per-tenant
  deficit-round-robin lanes (weighted-fair within each class), batch
  dequeue, and the ``sched.submit``/``sched.place`` spans that make
  every queueing decision observable;
* :class:`~repro.sched.ledger.CapacityLedger` — global capacity and
  cloudburst accounting shared by every control-plane shard, so
  quota decisions stay correct when the plane is sharded;
* :class:`~repro.sched.router.ShardedRouter` — rendezvous-hashes
  sessions and runs onto N control-plane shards (each a slimmed
  per-shard Load Balancer), the scaling move the hybrid-cloud EVO
  experience paper calls for when one broker becomes the choke point.

Import order matters: :mod:`repro.broker.load_balancer` imports
``repro.sched.core``, and :mod:`repro.sched.router` is imported last so
the cycle never bites.
"""

from repro.sched.core import (
    ClassedQueue,
    Dispatcher,
    InFlightGate,
    PlacementPolicy,
    PriorityClass,
)
from repro.sched.ledger import CapacityLedger
from repro.sched.router import ShardedRouter, rendezvous_shard

__all__ = [
    "CapacityLedger",
    "ClassedQueue",
    "Dispatcher",
    "InFlightGate",
    "PlacementPolicy",
    "PriorityClass",
    "ShardedRouter",
    "rendezvous_shard",
]

"""Provider-neutral dispatch core: priority classes and class queues.

The substrate everything places through.  A :class:`Dispatcher` owns one
:class:`ClassedQueue` per managed service: three priority classes
(interactive portal sessions ahead of workflow stages ahead of batch
sweeps), deficit-round-robin weighted-fair service across tenant lanes
within a class (plain FIFO when only the default tenant exists),
optional per-class bounds that shed the lowest-value work instead of
queueing it forever, and batch dequeue so a freshly booted replica can
claim several waiters in one pass.

This module deliberately imports nothing from :mod:`repro.broker` — the
broker's Load Balancer imports *it*, and the layering (broker, workflow
and ensemble layers above; one scheduling substrate below) is the point
of the refactor.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.obs.hub import obs_of
from repro.sim import Simulator
from repro.tenancy.context import DEFAULT_TENANT


class PriorityClass(enum.IntEnum):
    """Dispatch priority; lower value wins the next free slot.

    The ordering encodes the paper's QoS stance: a stakeholder waiting
    at the portal outranks a composed workflow stage, which outranks a
    parameter-sweep evaluation that nobody is watching in real time.
    """

    INTERACTIVE = 0
    WORKFLOW = 1
    BATCH = 2


class PlacementPolicy:
    """Maps a placement context to an ordered location preference.

    The provider-neutral base the broker's scheduling policies extend
    (see :mod:`repro.broker.policies`).  Lives here so the dispatch
    substrate can be typed against policies without importing the
    broker layer above it.
    """

    name: str = "abstract"

    def locations(self, context: Any) -> List[str]:
        """Locations to try, most preferred first."""
        raise NotImplementedError


class _DrrLanes:
    """One priority class's deficit-round-robin state.

    ``lanes`` holds a FIFO deque per tenant, ``active`` the round-robin
    rotation of tenants with queued work, ``deficit`` each tenant's
    accumulated service credit (in unit-cost items).
    """

    __slots__ = ("lanes", "active", "deficit")

    def __init__(self):
        self.lanes: Dict[str, Deque[Any]] = {}
        self.active: Deque[str] = deque()
        self.deficit: Dict[str, float] = {}

    def depth(self) -> int:
        return sum(len(lane) for lane in self.lanes.values())


class ClassedQueue:
    """Per-priority-class queues: FIFO per tenant, DRR across tenants.

    ``bounds`` maps a :class:`PriorityClass` to its maximum depth;
    classes without a bound queue without limit (the pre-refactor FIFO
    behaviour).  A push against a full class is *shed* — the caller is
    told, the shed counter ticks, and nothing is enqueued.

    *Within* each class, dequeue is deficit round robin across tenant
    lanes: each visit to the tenant at the head of the rotation adds
    its ``weight`` to a deficit counter, one unit of deficit buys one
    dequeue, and a weight-w tenant therefore gets w dequeues per round
    while every lane stays backlogged.  Items pushed without a tenant
    share the :data:`~repro.tenancy.context.DEFAULT_TENANT` lane; with
    only that lane present every visit serves its head — byte-for-byte
    the old single-principal FIFO.
    """

    def __init__(self, bounds: Optional[Dict[PriorityClass, int]] = None,
                 weights: Optional[Dict[str, float]] = None):
        self._lanes: Dict[PriorityClass, _DrrLanes] = {
            cls: _DrrLanes() for cls in PriorityClass}
        self._bounds: Dict[PriorityClass, int] = dict(bounds or {})
        self._weights: Dict[str, float] = dict(weights or {})
        self.shed: Dict[PriorityClass, int] = {cls: 0 for cls in PriorityClass}
        self.shed_by_tenant: Dict[str, int] = {}

    # -- tenant policy -------------------------------------------------------

    def set_weight(self, tenant: str, weight: float) -> None:
        """Set a tenant's DRR quantum (service share per round)."""
        if weight <= 0:
            raise ValueError("tenant weight must be positive")
        self._weights[tenant] = float(weight)

    def weight_of(self, tenant: str) -> float:
        return self._weights.get(tenant, 1.0)

    # -- enqueue -------------------------------------------------------------

    def push(self, item: Any,
             priority: PriorityClass = PriorityClass.INTERACTIVE,
             front: bool = False, tenant: Optional[str] = None,
             weight: Optional[float] = None) -> bool:
        """Enqueue ``item``; returns ``False`` if its class is full.

        ``front`` re-enters the item at the *head* of its tenant's lane
        — the migration path: a displaced session has already waited
        its turn once and must not queue behind fresh arrivals.  Its
        tenant is also promoted to the head of the rotation with enough
        deficit for one immediate dequeue.
        """
        tenant = tenant if tenant is not None else DEFAULT_TENANT
        if weight is not None:
            self.set_weight(tenant, weight)
        state = self._lanes[priority]
        bound = self._bounds.get(priority)
        if bound is not None and state.depth() >= bound and not front:
            self.shed[priority] += 1
            self.shed_by_tenant[tenant] = \
                self.shed_by_tenant.get(tenant, 0) + 1
            return False
        lane = state.lanes.get(tenant)
        if lane is None:
            lane = state.lanes[tenant] = deque()
        if tenant not in state.deficit:
            state.deficit[tenant] = 0.0
        if not lane and tenant not in state.active:
            if front:
                state.active.appendleft(tenant)
            else:
                state.active.append(tenant)
        if front:
            lane.appendleft(item)
            if state.active and state.active[0] != tenant:
                state.active.remove(tenant)
                state.active.appendleft(tenant)
            state.deficit[tenant] = max(state.deficit[tenant], 1.0)
        else:
            lane.append(item)
        return True

    def push_front_many(self, items: List[Any], priority: PriorityClass,
                        tenants: Optional[List[Optional[str]]] = None
                        ) -> None:
        """Re-enter ``items`` at the head, preserving their order."""
        if tenants is None:
            tenants = [None] * len(items)
        for item, tenant in zip(reversed(items), reversed(tenants)):
            self.push(item, priority, front=True, tenant=tenant)

    # -- dequeue -------------------------------------------------------------

    def next_class(self) -> Optional[PriorityClass]:
        """The class the next :meth:`pop` will serve (``None`` if empty)."""
        for cls in PriorityClass:
            if self._lanes[cls].active:
                return cls
        return None

    def _pop_class(self, state: _DrrLanes) -> Tuple[Any, str]:
        """One DRR dequeue from a class known to have queued work."""
        while True:
            tenant = state.active[0]
            if state.deficit[tenant] < 1.0:
                state.deficit[tenant] += self.weight_of(tenant)
                if state.deficit[tenant] < 1.0:
                    # a weight<1 lane keeps accruing across rounds and
                    # is skipped until a full unit is banked
                    state.active.rotate(-1)
                    continue
            lane = state.lanes[tenant]
            item = lane.popleft()
            state.deficit[tenant] -= 1.0
            if not lane:
                # an emptied lane leaves the rotation and forfeits its
                # leftover deficit: credit never outlives a backlog
                del state.lanes[tenant]
                state.active.popleft()
                state.deficit.pop(tenant, None)
            elif state.deficit[tenant] < 1.0:
                state.active.rotate(-1)
            return item, tenant

    def pop(self) -> Optional[Tuple[Any, PriorityClass]]:
        """Dequeue the highest-priority item, weighted-fair in class."""
        entry = self.pop_ex()
        if entry is None:
            return None
        item, cls, _ = entry
        return item, cls

    def pop_ex(self) -> Optional[Tuple[Any, PriorityClass, str]]:
        """Like :meth:`pop` but also reports the served tenant."""
        for cls in PriorityClass:
            state = self._lanes[cls]
            if state.active:
                item, tenant = self._pop_class(state)
                return item, cls, tenant
        return None

    def pop_batch(self, count: int) -> List[Tuple[Any, PriorityClass]]:
        """Dequeue up to ``count`` items in priority order."""
        out: List[Tuple[Any, PriorityClass]] = []
        while len(out) < count:
            entry = self.pop()
            if entry is None:
                break
            out.append(entry)
        return out

    # -- introspection -------------------------------------------------------

    def depth(self, priority: Optional[PriorityClass] = None) -> int:
        """Queued items in one class, or in all classes."""
        if priority is not None:
            return self._lanes[priority].depth()
        return sum(state.depth() for state in self._lanes.values())

    def counts(self) -> Dict[str, int]:
        """Depth per class, keyed by lowercase class name."""
        return {cls.name.lower(): self._lanes[cls].depth()
                for cls in PriorityClass}

    def tenant_depths(self) -> Dict[str, int]:
        """Queued items per tenant, across all classes."""
        totals: Dict[str, int] = {}
        for state in self._lanes.values():
            for tenant, lane in state.lanes.items():
                totals[tenant] = totals.get(tenant, 0) + len(lane)
        return totals

    def items(self, priority: PriorityClass) -> List[Any]:
        """One class's queued items in projected service order.

        Computed on a copy of the DRR state — peeking never perturbs
        the deficits or the rotation.  With a single lane this is the
        lane itself: the plain FIFO order.
        """
        state = self._lanes[priority]
        if len(state.lanes) <= 1:
            return [item for lane in state.lanes.values() for item in lane]
        shadow = _DrrLanes()
        shadow.lanes = {t: deque(lane) for t, lane in state.lanes.items()}
        shadow.active = deque(state.active)
        shadow.deficit = dict(state.deficit)
        out: List[Any] = []
        while shadow.active:
            item, _ = self._pop_class(shadow)
            out.append(item)
        return out

    def __len__(self) -> int:
        return self.depth()

    def __bool__(self) -> bool:
        return self.depth() > 0


class InFlightGate:
    """Bounded in-flight admission for dispatched calls.

    ``acquire()`` returns ``None`` when a slot is free (taken
    immediately), else a :class:`~repro.sim.kernel.Signal` the caller
    must yield on; slots hand over to waiters FIFO on ``release()``.
    With ``limit=None`` the gate is wide open and never makes anyone
    wait — the behaviour-compatible default.
    """

    def __init__(self, sim: Simulator, limit: Optional[int] = None,
                 name: str = "gate"):
        self.sim = sim
        self.limit = limit
        self.name = name
        self.in_flight = 0
        self._waiters: Deque[Any] = deque()

    def acquire(self):
        """Take a slot now (``None``) or get a signal to wait on."""
        if self.limit is None or self.in_flight < self.limit:
            self.in_flight += 1
            return None
        ticket = self.sim.signal(f"{self.name}.wait")
        self._waiters.append(ticket)
        return ticket

    def release(self) -> None:
        """Free a slot; the oldest waiter (if any) inherits it."""
        if self._waiters:
            # the slot transfers: in_flight stays constant
            self._waiters.popleft().fire(True)
            return
        self.in_flight = max(0, self.in_flight - 1)

    def waiting(self) -> int:
        """Callers currently parked on the gate."""
        return len(self._waiters)


class Dispatcher:
    """The per-shard dispatch substrate one Load Balancer runs on.

    Owns the per-service class queues, the shed/placement counters and
    the ``sched.submit`` spans that cover an item's whole queue wait
    (opened at enqueue, finished at dequeue with ``shard`` and
    ``class`` attributes).  The Load Balancer asks it *who waits next*;
    the Dispatcher never talks to the cloud itself — provider-neutral
    by construction.
    """

    def __init__(self, sim: Simulator, shard_id: int = 0,
                 metrics=None,
                 bounds: Optional[Dict[PriorityClass, int]] = None,
                 tenants=None):
        self.sim = sim
        self.shard_id = shard_id
        self.metrics = metrics
        self.bounds = dict(bounds or {})
        #: optional :class:`~repro.tenancy.registry.TenantRegistry` —
        #: the source of DRR weights and the sink of service accounting;
        #: ``None`` keeps the single-principal FIFO path bit-identical
        self.tenants = tenants
        self._queues: Dict[str, ClassedQueue] = {}
        #: open sched.submit spans per queued traceable item id
        self._submit_spans: Dict[str, Any] = {}

    # -- service registration ------------------------------------------------

    def register(self, service_name: str) -> None:
        """Create the class queue for a newly managed service."""
        if service_name not in self._queues:
            self._queues[service_name] = ClassedQueue(bounds=self.bounds)

    def attach_tenants(self, registry) -> None:
        """Install the tenant registry (weights + fairness accounting)."""
        self.tenants = registry

    def queue(self, service_name: str) -> ClassedQueue:
        """The class queue of one service."""
        return self._queues[service_name]

    # -- enqueue / dequeue ---------------------------------------------------

    def enqueue(self, service_name: str, item: Any,
                priority: PriorityClass = PriorityClass.INTERACTIVE,
                front: bool = False,
                item_id: Optional[str] = None,
                trace_parent=None,
                tenant: Optional[str] = None) -> bool:
        """Queue ``item``; returns ``False`` when its class shed it.

        ``item_id``/``trace_parent`` open a ``sched.submit`` span that
        stays open for the queue wait; the span closes (with shard and
        class attributes) when the item is dequeued or shed.  ``tenant``
        selects the item's DRR lane (and stamps the shed event / span).
        """
        weight = (self.tenants.weight_of(tenant)
                  if self.tenants is not None and tenant is not None
                  else None)
        accepted = self._queues[service_name].push(item, priority,
                                                   front=front,
                                                   tenant=tenant,
                                                   weight=weight)
        self._count(f"enqueue.{priority.name.lower()}" if accepted
                    else f"shed.{priority.name.lower()}")
        if not accepted:
            obs_of(self.sim).events.emit(
                "sched.shed", service=service_name, shard=self.shard_id,
                priority=priority.name.lower(),
                tenant=tenant if tenant is not None else DEFAULT_TENANT)
            return False
        if item_id is not None and trace_parent is not None:
            attributes = {"service": service_name,
                          "shard": self.shard_id,
                          "class": priority.name.lower(),
                          "queued": True}
            if tenant is not None:
                attributes["tenant"] = tenant
            span = obs_of(self.sim).tracer.start_span(
                "sched.submit", parent=trace_parent, kind="sched",
                attributes=attributes)
            self._submit_spans[item_id] = span
        return True

    def next_class(self, service_name: str) -> Optional[PriorityClass]:
        """Class of the next item :meth:`dequeue` would serve."""
        return self._queues[service_name].next_class()

    def dequeue(self, service_name: str
                ) -> Optional[Tuple[Any, PriorityClass]]:
        """Pop the next item in priority order (``None`` when empty)."""
        entry = self._queues[service_name].pop_ex()
        if entry is None:
            return None
        item, cls, tenant = entry
        self._count(f"place.{cls.name.lower()}")
        self._record_service(tenant)
        return item, cls

    def dequeue_batch(self, service_name: str, count: int
                      ) -> List[Tuple[Any, PriorityClass]]:
        """Pop up to ``count`` items in priority order in one pass."""
        out: List[Tuple[Any, PriorityClass]] = []
        while len(out) < count:
            entry = self.dequeue(service_name)
            if entry is None:
                break
            out.append(entry)
        return out

    def requeue_front(self, service_name: str, items: List[Any],
                      priority: PriorityClass,
                      tenants: Optional[List[Optional[str]]] = None
                      ) -> None:
        """Displaced items re-enter at the head of their class, in order."""
        self._queues[service_name].push_front_many(items, priority,
                                                   tenants=tenants)
        self._count(f"requeue.{priority.name.lower()}", len(items))

    # -- bookkeeping ---------------------------------------------------------

    def finish_submit_span(self, item_id: str, error: Optional[str] = None,
                           **attributes) -> None:
        """Close the open queue-wait span of ``item_id`` (if traced)."""
        span = self._submit_spans.pop(item_id, None)
        if span is None:
            return
        for key, value in attributes.items():
            span.set_attribute(key, value)
        span.finish(error=error)

    def placed_now(self, service_name: str, priority: PriorityClass,
                   tenant: Optional[str] = None) -> None:
        """Record an immediate (queue-bypassing) placement."""
        self._count(f"place.{priority.name.lower()}")
        self._record_service(tenant)

    def _record_service(self, tenant: Optional[str]) -> None:
        if self.tenants is not None:
            self.tenants.record_service(tenant)

    def depth(self, service_name: str,
              priority: Optional[PriorityClass] = None) -> int:
        """Queue depth for one service (optionally one class)."""
        queue = self._queues.get(service_name)
        return 0 if queue is None else queue.depth(priority)

    def depths(self) -> Dict[str, Dict[str, int]]:
        """Per-service, per-class queue depths (the admin view)."""
        return {name: queue.counts()
                for name, queue in self._queues.items()}

    def tenant_depths(self) -> Dict[str, int]:
        """Queued items per tenant across all services and classes."""
        totals: Dict[str, int] = {}
        for queue in self._queues.values():
            for tenant, n in queue.tenant_depths().items():
                totals[tenant] = totals.get(tenant, 0) + n
        return totals

    def shed_counts(self) -> Dict[str, int]:
        """Total sheds per class across all services."""
        totals = {cls.name.lower(): 0 for cls in PriorityClass}
        for queue in self._queues.values():
            for cls, n in queue.shed.items():
                totals[cls.name.lower()] += n
        return totals

    def shed_by_tenant(self) -> Dict[str, int]:
        """Total sheds per tenant across all services."""
        totals: Dict[str, int] = {}
        for queue in self._queues.values():
            for tenant, n in queue.shed_by_tenant.items():
                totals[tenant] = totals.get(tenant, 0) + n
        return totals

    def _count(self, name: str, by: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).increment(by)

"""Provider-neutral dispatch core: priority classes and class queues.

The substrate everything places through.  A :class:`Dispatcher` owns one
:class:`ClassedQueue` per managed service: three priority classes
(interactive portal sessions ahead of workflow stages ahead of batch
sweeps), FIFO within a class, optional per-class bounds that shed the
lowest-value work instead of queueing it forever, and batch dequeue so a
freshly booted replica can claim several waiters in one pass.

This module deliberately imports nothing from :mod:`repro.broker` — the
broker's Load Balancer imports *it*, and the layering (broker, workflow
and ensemble layers above; one scheduling substrate below) is the point
of the refactor.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.obs.hub import obs_of
from repro.sim import Simulator


class PriorityClass(enum.IntEnum):
    """Dispatch priority; lower value wins the next free slot.

    The ordering encodes the paper's QoS stance: a stakeholder waiting
    at the portal outranks a composed workflow stage, which outranks a
    parameter-sweep evaluation that nobody is watching in real time.
    """

    INTERACTIVE = 0
    WORKFLOW = 1
    BATCH = 2


class PlacementPolicy:
    """Maps a placement context to an ordered location preference.

    The provider-neutral base the broker's scheduling policies extend
    (see :mod:`repro.broker.policies`).  Lives here so the dispatch
    substrate can be typed against policies without importing the
    broker layer above it.
    """

    name: str = "abstract"

    def locations(self, context: Any) -> List[str]:
        """Locations to try, most preferred first."""
        raise NotImplementedError


class ClassedQueue:
    """Per-priority-class FIFO queues with optional bounds.

    ``bounds`` maps a :class:`PriorityClass` to its maximum depth;
    classes without a bound queue without limit (the pre-refactor FIFO
    behaviour).  A push against a full class is *shed* — the caller is
    told, the shed counter ticks, and nothing is enqueued.
    """

    def __init__(self, bounds: Optional[Dict[PriorityClass, int]] = None):
        self._queues: Dict[PriorityClass, Deque[Any]] = {
            cls: deque() for cls in PriorityClass}
        self._bounds: Dict[PriorityClass, int] = dict(bounds or {})
        self.shed: Dict[PriorityClass, int] = {cls: 0 for cls in PriorityClass}

    def push(self, item: Any,
             priority: PriorityClass = PriorityClass.INTERACTIVE,
             front: bool = False) -> bool:
        """Enqueue ``item``; returns ``False`` if its class is full.

        ``front`` re-enters the item at the *head* of its class queue —
        the migration path: a displaced session has already waited its
        turn once and must not queue behind fresh arrivals.
        """
        queue = self._queues[priority]
        bound = self._bounds.get(priority)
        if bound is not None and len(queue) >= bound and not front:
            self.shed[priority] += 1
            return False
        if front:
            queue.appendleft(item)
        else:
            queue.append(item)
        return True

    def push_front_many(self, items: List[Any],
                        priority: PriorityClass) -> None:
        """Re-enter ``items`` at the head, preserving their order."""
        self._queues[priority].extendleft(reversed(items))

    def next_class(self) -> Optional[PriorityClass]:
        """The class the next :meth:`pop` will serve (``None`` if empty)."""
        for cls in PriorityClass:
            if self._queues[cls]:
                return cls
        return None

    def pop(self) -> Optional[Tuple[Any, PriorityClass]]:
        """Dequeue the highest-priority item, FIFO within its class."""
        for cls in PriorityClass:
            if self._queues[cls]:
                return self._queues[cls].popleft(), cls
        return None

    def pop_batch(self, count: int) -> List[Tuple[Any, PriorityClass]]:
        """Dequeue up to ``count`` items in priority order."""
        out: List[Tuple[Any, PriorityClass]] = []
        while len(out) < count:
            entry = self.pop()
            if entry is None:
                break
            out.append(entry)
        return out

    def depth(self, priority: Optional[PriorityClass] = None) -> int:
        """Queued items in one class, or in all classes."""
        if priority is not None:
            return len(self._queues[priority])
        return sum(len(q) for q in self._queues.values())

    def counts(self) -> Dict[str, int]:
        """Depth per class, keyed by lowercase class name."""
        return {cls.name.lower(): len(self._queues[cls])
                for cls in PriorityClass}

    def __len__(self) -> int:
        return self.depth()

    def __bool__(self) -> bool:
        return self.depth() > 0


class InFlightGate:
    """Bounded in-flight admission for dispatched calls.

    ``acquire()`` returns ``None`` when a slot is free (taken
    immediately), else a :class:`~repro.sim.kernel.Signal` the caller
    must yield on; slots hand over to waiters FIFO on ``release()``.
    With ``limit=None`` the gate is wide open and never makes anyone
    wait — the behaviour-compatible default.
    """

    def __init__(self, sim: Simulator, limit: Optional[int] = None,
                 name: str = "gate"):
        self.sim = sim
        self.limit = limit
        self.name = name
        self.in_flight = 0
        self._waiters: Deque[Any] = deque()

    def acquire(self):
        """Take a slot now (``None``) or get a signal to wait on."""
        if self.limit is None or self.in_flight < self.limit:
            self.in_flight += 1
            return None
        ticket = self.sim.signal(f"{self.name}.wait")
        self._waiters.append(ticket)
        return ticket

    def release(self) -> None:
        """Free a slot; the oldest waiter (if any) inherits it."""
        if self._waiters:
            # the slot transfers: in_flight stays constant
            self._waiters.popleft().fire(True)
            return
        self.in_flight = max(0, self.in_flight - 1)

    def waiting(self) -> int:
        """Callers currently parked on the gate."""
        return len(self._waiters)


class Dispatcher:
    """The per-shard dispatch substrate one Load Balancer runs on.

    Owns the per-service class queues, the shed/placement counters and
    the ``sched.submit`` spans that cover an item's whole queue wait
    (opened at enqueue, finished at dequeue with ``shard`` and
    ``class`` attributes).  The Load Balancer asks it *who waits next*;
    the Dispatcher never talks to the cloud itself — provider-neutral
    by construction.
    """

    def __init__(self, sim: Simulator, shard_id: int = 0,
                 metrics=None,
                 bounds: Optional[Dict[PriorityClass, int]] = None):
        self.sim = sim
        self.shard_id = shard_id
        self.metrics = metrics
        self.bounds = dict(bounds or {})
        self._queues: Dict[str, ClassedQueue] = {}
        #: open sched.submit spans per queued traceable item id
        self._submit_spans: Dict[str, Any] = {}

    # -- service registration ------------------------------------------------

    def register(self, service_name: str) -> None:
        """Create the class queue for a newly managed service."""
        if service_name not in self._queues:
            self._queues[service_name] = ClassedQueue(bounds=self.bounds)

    def queue(self, service_name: str) -> ClassedQueue:
        """The class queue of one service."""
        return self._queues[service_name]

    # -- enqueue / dequeue ---------------------------------------------------

    def enqueue(self, service_name: str, item: Any,
                priority: PriorityClass = PriorityClass.INTERACTIVE,
                front: bool = False,
                item_id: Optional[str] = None,
                trace_parent=None) -> bool:
        """Queue ``item``; returns ``False`` when its class shed it.

        ``item_id``/``trace_parent`` open a ``sched.submit`` span that
        stays open for the queue wait; the span closes (with shard and
        class attributes) when the item is dequeued or shed.
        """
        accepted = self._queues[service_name].push(item, priority,
                                                  front=front)
        self._count(f"enqueue.{priority.name.lower()}" if accepted
                    else f"shed.{priority.name.lower()}")
        if not accepted:
            obs_of(self.sim).events.emit(
                "sched.shed", service=service_name, shard=self.shard_id,
                priority=priority.name.lower())
            return False
        if item_id is not None and trace_parent is not None:
            span = obs_of(self.sim).tracer.start_span(
                "sched.submit", parent=trace_parent, kind="sched",
                attributes={"service": service_name,
                            "shard": self.shard_id,
                            "class": priority.name.lower(),
                            "queued": True})
            self._submit_spans[item_id] = span
        return True

    def next_class(self, service_name: str) -> Optional[PriorityClass]:
        """Class of the next item :meth:`dequeue` would serve."""
        return self._queues[service_name].next_class()

    def dequeue(self, service_name: str
                ) -> Optional[Tuple[Any, PriorityClass]]:
        """Pop the next item in priority order (``None`` when empty)."""
        entry = self._queues[service_name].pop()
        if entry is not None:
            self._count(f"place.{entry[1].name.lower()}")
        return entry

    def dequeue_batch(self, service_name: str, count: int
                      ) -> List[Tuple[Any, PriorityClass]]:
        """Pop up to ``count`` items in priority order in one pass."""
        entries = self._queues[service_name].pop_batch(count)
        for _, cls in entries:
            self._count(f"place.{cls.name.lower()}")
        return entries

    def requeue_front(self, service_name: str, items: List[Any],
                      priority: PriorityClass) -> None:
        """Displaced items re-enter at the head of their class, in order."""
        self._queues[service_name].push_front_many(items, priority)
        self._count(f"requeue.{priority.name.lower()}", len(items))

    # -- bookkeeping ---------------------------------------------------------

    def finish_submit_span(self, item_id: str, error: Optional[str] = None,
                           **attributes) -> None:
        """Close the open queue-wait span of ``item_id`` (if traced)."""
        span = self._submit_spans.pop(item_id, None)
        if span is None:
            return
        for key, value in attributes.items():
            span.set_attribute(key, value)
        span.finish(error=error)

    def placed_now(self, service_name: str, priority: PriorityClass) -> None:
        """Record an immediate (queue-bypassing) placement."""
        self._count(f"place.{priority.name.lower()}")

    def depth(self, service_name: str,
              priority: Optional[PriorityClass] = None) -> int:
        """Queue depth for one service (optionally one class)."""
        queue = self._queues.get(service_name)
        return 0 if queue is None else queue.depth(priority)

    def depths(self) -> Dict[str, Dict[str, int]]:
        """Per-service, per-class queue depths (the admin view)."""
        return {name: queue.counts()
                for name, queue in self._queues.items()}

    def shed_counts(self) -> Dict[str, int]:
        """Total sheds per class across all services."""
        totals = {cls.name.lower(): 0 for cls in PriorityClass}
        for queue in self._queues.values():
            for cls, n in queue.shed.items():
                totals[cls.name.lower()] += n
        return totals

    def _count(self, name: str, by: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).increment(by)

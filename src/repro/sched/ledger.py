"""Global capacity and cloudburst accounting across control-plane shards.

With the scheduling plane sharded, no single Load Balancer sees the
whole estate any more — yet quota ("no more than X public vCPUs,
deployment-wide") and cloudburst state ("are we paying for public
capacity right now?") are global facts.  The :class:`CapacityLedger` is
the one shared book every shard writes its launches and retirements
into, so those decisions stay correct at any shard count.

The ledger is advisory bookkeeping plus optional hard caps: with no
``capacity`` configured, :meth:`admit` always says yes and the ledger
only observes (the behaviour-compatible default); with caps set, a
shard about to launch past the deployment-wide budget is refused before
it ever reaches a provider.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.hub import obs_of
from repro.sim import Simulator


class CapacityLedger:
    """Deployment-wide committed-capacity book shared by shard LBs.

    ``capacity`` maps a location label to its vCPU budget; locations
    without an entry are unbudgeted.  ``commit``/``release`` must be
    called symmetrically around an instance's lifetime (the Load
    Balancer does this on launch, retirement, drain completion and
    boot failure).
    """

    def __init__(self, sim: Simulator,
                 capacity: Optional[Dict[str, int]] = None,
                 metrics=None,
                 tenant_quotas: Optional[Dict[str, float]] = None):
        self.sim = sim
        self.capacity: Dict[str, int] = dict(capacity or {})
        self.metrics = metrics
        #: optional per-tenant vCPU caps, estate-wide (all locations);
        #: tenants without an entry are uncapped
        self.tenant_quotas: Dict[str, float] = dict(tenant_quotas or {})
        self._committed: Dict[str, int] = {}
        self._tenant_committed: Dict[str, int] = {}
        self._public_nodes = 0
        self.bursting = False
        self.refusals = 0
        self.tenant_refusals = 0

    def set_tenant_quota(self, tenant: str,
                         vcpus: Optional[float]) -> None:
        """Cap (or uncap, with ``None``) one tenant's committed vCPUs."""
        if vcpus is None:
            self.tenant_quotas.pop(tenant, None)
        else:
            self.tenant_quotas[tenant] = vcpus

    # -- admission -----------------------------------------------------------

    def admit(self, location: str, vcpus: int,
              tenant: Optional[str] = None) -> bool:
        """Would committing ``vcpus`` at ``location`` stay in budget?

        Checks the location budget first, then — when the launch is
        attributed to a tenant with a quota — that tenant's estate-wide
        vCPU cap.
        """
        budget = self.capacity.get(location)
        if budget is not None and \
                self._committed.get(location, 0) + vcpus > budget:
            self.refusals += 1
            self._count(f"refused.{location}")
            obs_of(self.sim).events.emit(
                "sched.quota.refused",
                location=location, vcpus=vcpus,
                committed=self._committed.get(location, 0))
            return False
        quota = self.tenant_quotas.get(tenant) if tenant is not None else None
        if quota is not None and \
                self._tenant_committed.get(tenant, 0) + vcpus > quota:
            self.refusals += 1
            self.tenant_refusals += 1
            self._count(f"refused.tenant.{tenant}")
            obs_of(self.sim).events.emit(
                "sched.quota.refused",
                location=location, vcpus=vcpus, tenant=tenant,
                committed=self._tenant_committed.get(tenant, 0),
                quota=quota)
            return False
        return True

    # -- accounting ----------------------------------------------------------

    def commit(self, location: str, vcpus: int, public: bool = False,
               tenant: Optional[str] = None) -> None:
        """Record a launch at ``location``."""
        self._committed[location] = self._committed.get(location, 0) + vcpus
        self._count(f"commit.{location}", vcpus)
        if tenant is not None:
            self._tenant_committed[tenant] = \
                self._tenant_committed.get(tenant, 0) + vcpus
        if public:
            self._public_nodes += 1
            self._update_burst()

    def release(self, location: str, vcpus: int, public: bool = False,
                tenant: Optional[str] = None) -> None:
        """Record a retirement (or failed boot) at ``location``."""
        self._committed[location] = max(
            0, self._committed.get(location, 0) - vcpus)
        self._count(f"release.{location}", vcpus)
        if tenant is not None:
            self._tenant_committed[tenant] = max(
                0, self._tenant_committed.get(tenant, 0) - vcpus)
        if public:
            self._public_nodes = max(0, self._public_nodes - 1)
            self._update_burst()

    def committed(self, location: str) -> int:
        """vCPUs currently committed at ``location``, across all shards."""
        return self._committed.get(location, 0)

    def committed_by_tenant(self) -> Dict[str, int]:
        """vCPUs currently committed per attributed tenant (a copy)."""
        return dict(self._tenant_committed)

    def public_nodes(self) -> int:
        """Public-cloud nodes currently committed, across all shards."""
        return self._public_nodes

    def snapshot(self) -> Dict[str, int]:
        """Committed vCPUs per location (a copy)."""
        return dict(self._committed)

    # -- cloudburst state ----------------------------------------------------

    def _update_burst(self) -> None:
        bursting_now = self._public_nodes > 0
        if bursting_now and not self.bursting:
            self.bursting = True
            self._count("cloudburst.activations")
            obs_of(self.sim).events.emit("sched.cloudburst.enter",
                                         public_nodes=self._public_nodes)
        elif not bursting_now and self.bursting:
            self.bursting = False
            self._count("cloudburst.reversals")
            obs_of(self.sim).events.emit("sched.cloudburst.exit")

    def _count(self, name: str, by: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).increment(by)

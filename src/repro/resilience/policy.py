"""Retry policy: when to try again, and how long to wait.

Three questions, answered in one place:

* *Is a retry permitted?* — :meth:`RetryPolicy.should_retry` classifies
  transport outcomes.  A :class:`ConnectionRefused` never reached the
  server, so it is always replayable.  A :class:`RequestTimeout` is
  ambiguous — the server may have done the work — so only requests the
  caller declared *safe* (GET, or replayable executes) retry on it.  An
  :class:`HttpResponse` defers to the problem document: a body-level
  ``retryable: true`` is an explicit server promise that replaying is
  harmless (e.g. the request was shed before any work happened), and it
  overrides the idempotency rule; without the flag, only safe requests
  retry on the transient status classes.
* *How long to wait?* — :meth:`RetryPolicy.backoff` is exponential with
  *full jitter* drawn from a named :class:`~repro.sim.rng.RandomStreams`
  stream, so concurrent clients decorrelate without losing determinism
  across runs.
* *When to give up?* — ``max_attempts`` bounds tries and ``deadline``
  bounds wall-clock; whichever is hit first ends the call.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List

from repro.services.envelope import RETRYABLE_STATUSES, retryable_from_body
from repro.services.transport import (
    ConnectionRefused,
    HttpResponse,
    RequestTimeout,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule and retry classification for one client."""

    #: Total tries, the first included.
    max_attempts: int = 4
    #: First backoff ceiling, seconds; doubles each retry.
    base_delay: float = 0.5
    #: Upper bound on any single backoff, seconds.
    max_delay: float = 30.0
    #: Geometric growth factor between retries.
    multiplier: float = 2.0
    #: Overall wall-clock budget for the whole call, seconds.
    deadline: float = 180.0
    #: Per-attempt transport timeout, seconds.
    attempt_timeout: float = 30.0

    def backoff(self, retry_index: int, rng: random.Random) -> float:
        """Delay before retry ``retry_index`` (0 = first retry).

        Full jitter: uniform in ``[0, ceiling]`` where the ceiling grows
        geometrically.  Jitter over the whole interval (rather than a
        +/- band) is what breaks up retry synchronisation when a burst
        of clients fails at the same instant.
        """
        ceiling = min(self.max_delay,
                      self.base_delay * (self.multiplier ** retry_index))
        return rng.uniform(0.0, ceiling)

    def schedule(self, rng: random.Random) -> List[float]:
        """The full backoff schedule this policy would draw from ``rng``."""
        return [self.backoff(i, rng) for i in range(self.max_attempts - 1)]

    def should_retry(self, outcome: Any, safe: bool) -> bool:
        """Whether ``outcome`` warrants another attempt of this request."""
        if isinstance(outcome, ConnectionRefused):
            # the connection was refused: no server ever saw the request
            return True
        if isinstance(outcome, RequestTimeout):
            # ambiguous — the work may have happened; replay only if safe
            return safe
        if isinstance(outcome, HttpResponse):
            if outcome.ok:
                return False
            verdict = retryable_from_body(outcome.body)
            if verdict is not None:
                # an explicit server verdict overrides the idempotency
                # rule: retryable=True promises the request was not acted
                # on (shed, overloaded), retryable=False is permanent
                return verdict
            return safe and outcome.status in RETRYABLE_STATUSES
        return False

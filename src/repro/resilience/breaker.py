"""Circuit breakers: stop sending traffic a target will drop.

A breaker guards one *target* — a service at a location or address —
and summarises its recent history into three states:

* ``closed`` — traffic flows; outcomes are recorded into a sliding
  failure-rate window.
* ``open`` — the window crossed the failure threshold; calls fast-fail
  locally (no wire traffic, no timeout burned) until ``reset_timeout``
  elapses.
* ``half_open`` — after the cooldown, a bounded number of probe calls
  go through; enough successes close the breaker, any failure re-opens
  it.

The broker uses one breaker per service×location (via
:class:`BreakerRegistry`), which is what turns "eu-west keeps refusing
launches" from a per-call discovery into shared state: the first caller
pays for the discovery, everyone else routes around it.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.sim import Simulator

#: State names, used in metrics/events and asserted by tests.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class BreakerOpen(Exception):
    """Raised by :meth:`CircuitBreaker.check` when the circuit is open."""

    def __init__(self, target: str, retry_after: float):
        super().__init__(f"circuit open for {target!r}")
        self.target = target
        self.retry_after = retry_after


class CircuitBreaker:
    """Failure-rate breaker for one target."""

    def __init__(self, sim: Simulator, target: str,
                 failure_threshold: float = 0.5,
                 window_seconds: float = 60.0,
                 min_calls: int = 4,
                 reset_timeout: float = 30.0,
                 half_open_probes: int = 2,
                 on_transition: Optional[Callable[[str, str, str], None]] = None):
        self.sim = sim
        self.target = target
        self.failure_threshold = failure_threshold
        self.window_seconds = window_seconds
        self.min_calls = min_calls
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self._on_transition = on_transition
        self._state = CLOSED
        self._outcomes: Deque[Tuple[float, bool]] = deque()
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0
        self.trips = 0

    @property
    def state(self) -> str:
        """Current state (cooldown expiry is applied on :meth:`allow`)."""
        return self._state

    def allow(self) -> bool:
        """Whether a call to the target may proceed right now."""
        if self._state == OPEN:
            if self.sim.now - self._opened_at >= self.reset_timeout:
                self._transition(HALF_OPEN)
                self._probes_in_flight = 0
                self._probe_successes = 0
            else:
                return False
        if self._state == HALF_OPEN:
            if self._probes_in_flight >= self.half_open_probes:
                return False
            self._probes_in_flight += 1
        return True

    def check(self) -> None:
        """Like :meth:`allow` but raises :class:`BreakerOpen` on refusal."""
        if not self.allow():
            remaining = max(0.0, self.reset_timeout
                            - (self.sim.now - self._opened_at))
            raise BreakerOpen(self.target, retry_after=remaining)

    def record_success(self) -> None:
        """Record a successful call outcome."""
        if self._state == HALF_OPEN:
            self._probe_successes += 1
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            if self._probe_successes >= self.half_open_probes:
                self._transition(CLOSED)
                self._outcomes.clear()
            return
        self._observe(True)

    def record_failure(self) -> None:
        """Record a failed call outcome; may trip the breaker."""
        if self._state == HALF_OPEN:
            # the probe proved the target is still broken: full cooldown
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            self._trip()
            return
        self._observe(False)
        if self._state != CLOSED:
            return
        total = len(self._outcomes)
        if total < self.min_calls:
            return
        failures = sum(1 for _t, ok in self._outcomes if not ok)
        if failures / total >= self.failure_threshold:
            self._trip()

    # -- internals ---------------------------------------------------------

    def _observe(self, ok: bool) -> None:
        now = self.sim.now
        self._outcomes.append((now, ok))
        horizon = now - self.window_seconds
        while self._outcomes and self._outcomes[0][0] < horizon:
            self._outcomes.popleft()

    def _trip(self) -> None:
        self._opened_at = self.sim.now
        self.trips += 1
        self._outcomes.clear()
        self._transition(OPEN)

    def _transition(self, new_state: str) -> None:
        old, self._state = self._state, new_state
        if old != new_state and self._on_transition is not None:
            self._on_transition(self.target, old, new_state)


class BreakerRegistry:
    """Shared per-target breakers, created on first use.

    One registry is shared by everything dispatching to the same fleet
    (client fabric, load balancer, multi-cloud provisioner) so that a
    trip observed by one caller protects all of them.  ``on_transition``
    is invoked for every state change of every breaker — the obs/metrics
    bridge hangs off it.
    """

    def __init__(self, sim: Simulator,
                 on_transition: Optional[Callable[[str, str, str], None]] = None,
                 **breaker_kwargs):
        self.sim = sim
        self._kwargs = breaker_kwargs
        self._on_transition = on_transition
        self._breakers: Dict[str, CircuitBreaker] = {}

    @staticmethod
    def key(service: str, location: str) -> str:
        """The canonical service×location breaker key."""
        return f"{service}@{location}"

    def get(self, target: str) -> CircuitBreaker:
        """The breaker for ``target``, created on first use."""
        breaker = self._breakers.get(target)
        if breaker is None:
            breaker = CircuitBreaker(self.sim, target,
                                     on_transition=self._on_transition,
                                     **self._kwargs)
            self._breakers[target] = breaker
        return breaker

    def states(self) -> Dict[str, str]:
        """Current state of every known breaker."""
        return {target: breaker.state
                for target, breaker in self._breakers.items()}

    def total_trips(self) -> int:
        """Trips across every breaker in the registry."""
        return sum(breaker.trips for breaker in self._breakers.values())

"""Client-side fault handling: retries, breakers, admission, hedging.

The paper's broker "masks transient cloud failures from the portal
user"; detection alone (health heuristics, fault injection) cannot do
that — callers need policy for what to do *about* a failure.  This
package is that policy, hung off one entry point:

* :class:`~repro.resilience.policy.RetryPolicy` — exponential backoff
  with deterministic jitter, attempt/overall deadline budgets, and
  idempotency awareness (only safe/replayable requests retry on
  ambiguous failures);
* :class:`~repro.resilience.breaker.CircuitBreaker` — per
  service×location closed/open/half-open state over a failure-rate
  window, so a flapping location stops receiving traffic it will drop;
* :class:`~repro.resilience.bulkhead.Bulkhead` — bounded in-flight per
  target with a small wait queue; overflow is shed immediately as a
  retryable 429 instead of queueing into collapse;
* :class:`~repro.resilience.client.ResilientClient` — wraps
  :meth:`~repro.services.transport.Network.request` with all of the
  above plus hedged requests for safe routes.

Every retry, trip, shed and hedge emits ``repro.obs`` events and
metrics counters, so benches can show the before/after under an
identical fault schedule.
"""

from repro.resilience.breaker import BreakerOpen, BreakerRegistry, CircuitBreaker
from repro.resilience.bulkhead import Bulkhead, Ticket
from repro.resilience.client import ResilientClient
from repro.resilience.policy import RetryPolicy

__all__ = [
    "BreakerOpen",
    "BreakerRegistry",
    "Bulkhead",
    "CircuitBreaker",
    "ResilientClient",
    "RetryPolicy",
    "Ticket",
]

"""The resilient request path: one wrapper around ``Network.request``.

:class:`ResilientClient` composes the fabric — per-target circuit
breakers, per-target bulkheads, retry with deterministic jittered
backoff, and hedging for safe routes — behind a single ``call`` whose
contract is deliberately boring: *it always fires its signal with an*
:class:`~repro.services.transport.HttpResponse`.  Transport-level
failures that survive every retry are synthesised into problem-document
responses (504 for timeouts, 503 for refusals and open circuits, 429
for local sheds), so callers branch on status and ``retryable`` instead
of type-switching on transport artefacts.

Addresses may be given as a callable — re-resolved before every attempt
and every hedge — which is what lets a retry after a crash land on the
replacement instance rather than hammering the corpse.

Every decision the fabric takes is observable: a ``resilience`` span
per call (annotated with retries/hedges/sheds), ``repro.obs`` events
per incident, and metrics counters a bench snapshot can print.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Union

from repro.obs.context import inject_context
from repro.obs.hub import obs_of
from repro.resilience.breaker import BreakerRegistry
from repro.resilience.bulkhead import BulkheadGroup
from repro.resilience.policy import RetryPolicy
from repro.services.envelope import problem
from repro.services.transport import (
    ConnectionRefused,
    HttpRequest,
    HttpResponse,
    Network,
    RequestTimeout,
)
from repro.sim import RandomStreams, Signal, Simulator

#: Hedge delay used until enough latency samples exist for a p95.
DEFAULT_HEDGE_DELAY = 1.0
#: Latency samples needed before the hedge delay adapts to observed p95.
HEDGE_MIN_SAMPLES = 20
#: How long a request waits for an address to appear before giving up
#: on this poll (the overall deadline still bounds the total wait).
ADDRESS_POLL = 5.0
#: Cap on how long a queued request waits for a bulkhead slot.
QUEUE_WAIT = 10.0

AddressLike = Union[str, Callable[[], Optional[str]]]


def observed_breakers(sim: Simulator, metrics=None) -> BreakerRegistry:
    """A :class:`BreakerRegistry` wired into obs events and metrics.

    Use one shared registry per fleet: the client fabric, the load
    balancer and the provisioner all consult the same trip state.
    """

    def on_transition(target: str, old: str, new: str) -> None:
        obs_of(sim).events.emit("resilience.breaker", target=target,
                               from_state=old, to_state=new)
        if metrics is not None:
            if new == "open":
                metrics.counter("breaker.trips").increment()
            elif new == "closed":
                metrics.counter("breaker.recoveries").increment()

    return BreakerRegistry(sim, on_transition=on_transition)


class ResilientClient:
    """Retries, breakers, admission and hedging around one network."""

    def __init__(self, sim: Simulator, network: Network, *,
                 service: str = "service",
                 policy: Optional[RetryPolicy] = None,
                 streams: Optional[RandomStreams] = None,
                 breakers: Optional[BreakerRegistry] = None,
                 metrics=None,
                 max_in_flight: int = 8, max_queue: int = 16,
                 hedge: bool = True,
                 hedge_after: Optional[float] = None):
        self.sim = sim
        self.network = network
        self.service = service
        self.policy = policy or RetryPolicy()
        self.streams = streams or RandomStreams()
        self.metrics = metrics if metrics is not None else None
        self.breakers = breakers if breakers is not None \
            else observed_breakers(sim, metrics)
        self.bulkheads = BulkheadGroup(sim, max_in_flight=max_in_flight,
                                       max_queue=max_queue)
        self.hedge = hedge
        self.hedge_after = hedge_after

    # -- public API --------------------------------------------------------

    def call(self, address: AddressLike, request: HttpRequest, *,
             safe: Optional[bool] = None,
             timeout: Optional[float] = None,
             deadline: Optional[float] = None,
             trace: Any = None,
             service: Optional[str] = None) -> Signal:
        """Send ``request`` resiliently; the signal always gets a response.

        ``safe`` marks the request replayable (defaults to GET-ness);
        ``timeout`` bounds each attempt and ``deadline`` the whole call;
        ``trace`` parents the resilience span so retries show up inside
        the caller's trace.
        """
        if safe is None:
            safe = request.method == "GET"
        done = self.sim.signal(f"resilience.{request.method}.{request.path}")
        resolve = address if callable(address) else (lambda: address)
        self.sim.spawn(
            self._run(done, resolve, request, safe,
                      timeout if timeout is not None
                      else self.policy.attempt_timeout,
                      deadline if deadline is not None
                      else self.policy.deadline,
                      trace, service or self.service),
            name=f"resilience.call.{request.path}")
        return done

    # -- the retry loop ----------------------------------------------------

    def _run(self, done: Signal, resolve: Callable[[], Optional[str]],
             base_request: HttpRequest, safe: bool, timeout: float,
             deadline: float, trace: Any, service: str):
        start = self.sim.now
        rng = self.streams.get("resilience.backoff")
        events = obs_of(self.sim).events
        span = obs_of(self.sim).tracer.start_span(
            f"resilience {base_request.method} {base_request.path}",
            parent=trace, kind="client",
            attributes={"service": service, "safe": safe})
        self._count("requests")
        attempt = 0
        address: Optional[str] = None
        outcome: Any = None
        exhausted = "attempts"
        while True:
            remaining = deadline - (self.sim.now - start)
            if remaining <= 0:
                exhausted = "deadline"
                break
            address = resolve()
            if address is None:
                # the target is still provisioning; waiting costs budget
                # but no attempt — there is nothing to talk to yet
                span.annotate("no address yet")
                yield min(ADDRESS_POLL, remaining)
                continue
            breaker = self.breakers.get(BreakerRegistry.key(service, address))
            if not breaker.allow():
                self._count("breaker.fastfail")
                events.emit("resilience.fastfail", target=address,
                            path=base_request.path)
                span.annotate("breaker open", target=address)
                outcome = HttpResponse(status=503, body=problem(
                    503, "circuit open",
                    f"circuit open for {service}@{address}",
                    retryable=True))
            else:
                admitted = yield from self._admit(address, remaining, events,
                                                  span)
                if not admitted:
                    outcome = HttpResponse(status=429, body=problem(
                        429, "admission shed",
                        f"bulkhead full for {address}", retryable=True))
                else:
                    outcome = yield from self._wire(
                        resolve, address, base_request,
                        min(timeout, remaining), safe, span, events)
                    if self._target_failure(outcome):
                        breaker.record_failure()
                    else:
                        breaker.record_success()
            attempt += 1
            self._count("attempts")
            if self._target_failure(outcome):
                # attempt-level failures are the operator's early signal:
                # retries and failover can still save the *request*, so
                # final-status error counters stay flat while the fleet
                # is actually impaired — availability SLOs watch this
                self._count("attempt.failures")
            if isinstance(outcome, HttpResponse) and outcome.ok:
                exhausted = ""
                break
            if not self.policy.should_retry(outcome, safe):
                exhausted = ""
                break
            if attempt >= self.policy.max_attempts:
                exhausted = "attempts"
                break
            delay = self.policy.backoff(attempt - 1, rng)
            remaining = deadline - (self.sim.now - start)
            if delay >= remaining:
                exhausted = "deadline"
                break
            self._count("retries")
            events.emit("resilience.retry", target=address,
                        path=base_request.path, attempt=attempt,
                        backoff=round(delay, 4))
            span.annotate("retry", attempt=attempt, backoff=round(delay, 4))
            yield delay

        response = self._as_response(outcome, address, deadline, exhausted)
        span.set_attribute("attempts", attempt)
        span.set_attribute("status", response.status)
        span.finish(error=None if response.status < 500
                    else f"http {response.status}")
        self._count("success" if response.ok else "errors")
        if self.metrics is not None:
            # end-to-end duration with a trace exemplar: a bad bucket
            # keeps the trace id of a request that actually landed there
            self.metrics.histogram("request.duration").observe(
                self.sim.now - start,
                exemplar={"trace_id": span.trace_id, "t": self.sim.now,
                          "status": response.status})
        if not done.fired:
            done.fire(response)

    # -- admission ---------------------------------------------------------

    def _admit(self, address: str, budget: float, events, span):
        bulkhead = self.bulkheads.get(address)
        ticket = bulkhead.acquire()
        if ticket.admitted:
            return True
        if ticket.shed:
            self._count("shed")
            events.emit("resilience.shed", target=address,
                        queue_depth=bulkhead.queue_depth)
            span.annotate("shed", target=address)
            return False
        # queued: race the admission gate against the wait cap
        self._count("queued")
        decided = self.sim.signal(f"resilience.admit.{address}")
        timer = self.sim.schedule(min(QUEUE_WAIT, budget),
                                  self._fire_unset, decided, False)

        def on_gate():
            granted = yield ticket.gate
            if granted and not decided.fired:
                decided.fire(True)

        self.sim.spawn(on_gate(), name="resilience.gate")
        admitted = yield decided
        timer.cancel()
        if admitted:
            return True
        if not bulkhead.abandon(ticket):
            # the slot was granted in the same instant the timer popped;
            # it is ours, so use it rather than leak it
            return True
        self._count("shed")
        events.emit("resilience.shed", target=address, timed_out=True)
        span.annotate("admission timeout", target=address)
        return False

    # -- the wire (with hedging) -------------------------------------------

    def _wire(self, resolve: Callable[[], Optional[str]], address: str,
              base_request: HttpRequest, timeout: float, safe: bool,
              span, events):
        bulkhead = self.bulkheads.get(address)
        started = self.sim.now
        # hedging is for read-only routes: a GET duplicated costs header
        # bytes, a replayable POST duplicated costs a second model run
        hedge_delay = (self._hedge_delay()
                       if (safe and self.hedge
                           and base_request.method == "GET") else None)
        primary = self._send(address, base_request, timeout, span)
        if hedge_delay is None or hedge_delay >= timeout:
            outcome = yield primary
            bulkhead.release()
            self._observe_latency(outcome, started)
            return outcome

        decided = self.sim.signal("resilience.hedge")
        state = {"pending": 1}

        def watch(sig: Signal, label: str, slot_owner) -> None:
            def waiter():
                out = yield sig
                slot_owner.release()
                self._observe_latency(out, started)
                state["pending"] -= 1
                won = isinstance(out, HttpResponse) and out.ok
                if decided.fired:
                    return
                # first success wins; a failure only settles the race
                # once nothing else is still in flight
                if won or state["pending"] == 0:
                    if label == "hedge" and won:
                        self._count("hedge.wins")
                    decided.fire(out)
            self.sim.spawn(waiter(), name=f"resilience.hedge.{label}")

        watch(primary, "primary", bulkhead)

        def launch_hedge() -> None:
            if decided.fired:
                return
            # hedges re-resolve: after a failover the second attempt
            # should go to the replacement, not the same slow target
            hedge_address = resolve() or address
            hedge_bulkhead = self.bulkheads.get(hedge_address)
            if not hedge_bulkhead.try_acquire():
                return  # never displace demand traffic for a hedge
            self._count("hedges")
            events.emit("resilience.hedge", target=hedge_address,
                        path=base_request.path)
            span.annotate("hedged", target=hedge_address)
            state["pending"] += 1
            hedge_signal = self._send(hedge_address, base_request,
                                      max(0.1, timeout - hedge_delay), span)
            watch(hedge_signal, "hedge", hedge_bulkhead)

        hedge_timer = self.sim.schedule(hedge_delay, launch_hedge)
        outcome = yield decided
        hedge_timer.cancel()
        return outcome

    def _send(self, address: str, base_request: HttpRequest,
              timeout: float, span) -> Signal:
        # each attempt gets fresh headers: the traceparent of *this*
        # attempt, never a stale one from a previous try
        headers = dict(base_request.headers)
        inject_context(span.context, headers)
        request = HttpRequest(base_request.method, base_request.path,
                              base_request.body, dict(base_request.query),
                              headers)
        return self.network.request(address, request, timeout=timeout)

    # -- helpers -----------------------------------------------------------

    def _hedge_delay(self) -> Optional[float]:
        if self.hedge_after is not None:
            return self.hedge_after
        if self.metrics is None:
            return DEFAULT_HEDGE_DELAY
        recorder = self.metrics.recorder("attempt_latency")
        if recorder.count < HEDGE_MIN_SAMPLES:
            return DEFAULT_HEDGE_DELAY
        return max(0.05, recorder.percentile(95))

    def _observe_latency(self, outcome: Any, started: float) -> None:
        if self.metrics is not None and isinstance(outcome, HttpResponse):
            self.metrics.recorder("attempt_latency").record(
                self.sim.now - started)

    @staticmethod
    def _target_failure(outcome: Any) -> bool:
        if isinstance(outcome, (ConnectionRefused, RequestTimeout)):
            return True
        return isinstance(outcome, HttpResponse) and outcome.status >= 500

    def _as_response(self, outcome: Any, address: Optional[str],
                     deadline: float, exhausted: str) -> HttpResponse:
        if isinstance(outcome, HttpResponse):
            return outcome
        if isinstance(outcome, ConnectionRefused):
            return HttpResponse(status=503, body=problem(
                503, "connection refused",
                f"{outcome.address} refused the connection", retryable=True))
        if isinstance(outcome, RequestTimeout):
            return HttpResponse(status=504, body=problem(
                504, "upstream timeout",
                f"no response from {outcome.address} within "
                f"{outcome.after_seconds:.1f}s", retryable=True))
        detail = ("deadline exhausted before any attempt completed"
                  if exhausted == "deadline"
                  else f"no address for target within {deadline:.1f}s")
        return HttpResponse(status=504, body=problem(
            504, "resilience budget exhausted", detail, retryable=True))

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).increment()

    @staticmethod
    def _fire_unset(signal: Signal, value: Any) -> None:
        if not signal.fired:
            signal.fire(value)

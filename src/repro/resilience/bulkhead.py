"""Bulkheads: bounded in-flight work per target, shed on overflow.

Admission control is the half of resilience that protects the *healthy*
part of the system: when one target slows down, an unbounded client
happily parks its whole concurrency budget against it.  A
:class:`Bulkhead` caps in-flight requests per target, keeps a short FIFO
wait queue for bursts, and *sheds* anything beyond that immediately —
the caller gets a retryable 429 in microseconds instead of a timeout in
tens of seconds, and the backoff machinery spreads the re-offered load.

The API is signal-based to fit the simulator: :meth:`Bulkhead.acquire`
returns a :class:`Ticket` that is either admitted now, queued (wait on
``ticket.gate``, which fires ``True`` when a slot frees and ``False``
if abandoned), or shed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

from repro.sim import Signal, Simulator


@dataclass
class Ticket:
    """Outcome of an admission attempt."""

    #: A slot is held right now; call :meth:`Bulkhead.release` when done.
    admitted: bool = False
    #: The request was shed: no slot, no queue position.
    shed: bool = False
    #: When queued: fires ``True`` on admission (the slot is then held),
    #: ``False`` if the wait was abandoned.
    gate: Optional[Signal] = None


class Bulkhead:
    """In-flight cap plus a bounded wait queue for one target."""

    def __init__(self, sim: Simulator, target: str,
                 max_in_flight: int = 8, max_queue: int = 16):
        self.sim = sim
        self.target = target
        self.max_in_flight = max_in_flight
        self.max_queue = max_queue
        self.in_flight = 0
        self.admitted_total = 0
        self.shed_total = 0
        self.queued_total = 0
        self._queue: Deque[Signal] = deque()

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a slot."""
        return len(self._queue)

    def acquire(self) -> Ticket:
        """Try to take a slot: admitted, queued, or shed."""
        if self.in_flight < self.max_in_flight:
            self.in_flight += 1
            self.admitted_total += 1
            return Ticket(admitted=True)
        if len(self._queue) >= self.max_queue:
            self.shed_total += 1
            return Ticket(shed=True)
        gate = self.sim.signal(f"bulkhead.{self.target}.gate")
        self._queue.append(gate)
        self.queued_total += 1
        return Ticket(gate=gate)

    def try_acquire(self) -> bool:
        """Take a slot only if one is free now (no queueing, no shed count).

        Used by opportunistic work — hedge attempts — that should never
        displace demand-driven traffic.
        """
        if self.in_flight < self.max_in_flight:
            self.in_flight += 1
            self.admitted_total += 1
            return True
        return False

    def abandon(self, ticket: Ticket) -> bool:
        """Give up a queued wait.

        Returns ``True`` if the ticket was still queued (it is removed
        and its gate fired ``False``).  Returns ``False`` if the ticket
        was already granted — the caller then holds a slot and must
        :meth:`release` it (or use it).
        """
        if ticket.gate is None or ticket.gate.fired:
            return False
        try:
            self._queue.remove(ticket.gate)
        except ValueError:
            return False
        ticket.gate.fire(False)
        return True

    def release(self) -> None:
        """Return a slot; hands it to the oldest queued waiter if any."""
        while self._queue:
            gate = self._queue.popleft()
            if gate.fired:  # defensive: abandoned gates leave the queue
                continue
            # the slot transfers to the waiter: in_flight is unchanged
            self.admitted_total += 1
            gate.fire(True)
            return
        self.in_flight = max(0, self.in_flight - 1)


class BulkheadGroup:
    """Per-target bulkheads sharing one configuration."""

    def __init__(self, sim: Simulator, max_in_flight: int = 8,
                 max_queue: int = 16):
        self.sim = sim
        self.max_in_flight = max_in_flight
        self.max_queue = max_queue
        self._bulkheads: Dict[str, Bulkhead] = {}

    def get(self, target: str) -> Bulkhead:
        """The bulkhead for ``target``, created on first use."""
        bulkhead = self._bulkheads.get(target)
        if bulkhead is None:
            bulkhead = Bulkhead(self.sim, target,
                                max_in_flight=self.max_in_flight,
                                max_queue=self.max_queue)
            self._bulkheads[target] = bulkhead
        return bulkhead

    def shed_total(self) -> int:
        """Requests shed across every target."""
        return sum(b.shed_total for b in self._bulkheads.values())

"""Named, independently seeded random streams.

Every stochastic subsystem draws from its own stream derived from a root
seed and a stable name (``streams.get("weather.rain")``), so adding a new
consumer never perturbs the draws of existing ones — the property that
keeps benchmark results comparable across code revisions.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """Factory of :class:`random.Random` instances keyed by stream name."""

    def __init__(self, seed: int = 0):
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """Root seed all named streams are derived from."""
        return self._seed

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically.

        The per-stream seed is a SHA-256 digest of ``(root_seed, name)`` so
        that streams are statistically independent and stable across runs
        and platforms.
        """
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RandomStreams":
        """Derive a child factory whose streams are namespaced by ``name``.

        Useful when replicating a whole subsystem (e.g. one
        ``RandomStreams`` per simulated catchment).
        """
        digest = hashlib.sha256(f"{self._seed}:fork:{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))

"""Discrete-event simulation kernel underpinning the EVOp substrate.

Every simulated subsystem (cloud providers, service transports, sensor
feeds, the broker) is driven by a single :class:`~repro.sim.kernel.Simulator`
instance: a classic event-calendar DES with generator-based processes,
seeded named random streams and a metrics recorder.

The kernel is deliberately small and deterministic: given the same seed and
the same workload, a simulation replays identically, which is what makes
the benchmark harness reproducible.
"""

from repro.sim.kernel import EventHandle, Interrupt, Process, Signal, Simulator
from repro.sim.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeriesRecorder,
)
from repro.sim.rng import RandomStreams

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "EventHandle",
    "Gauge",
    "Histogram",
    "Interrupt",
    "MetricsRegistry",
    "Process",
    "RandomStreams",
    "Signal",
    "Simulator",
    "TimeSeriesRecorder",
]

"""Lightweight metrics for simulated subsystems.

Three primitives cover everything the benches report:

* :class:`Counter` — monotonically increasing totals (requests served,
  bytes on the wire, cloudburst events).
* :class:`Gauge` — instantaneous values with time-weighted averaging
  (instances running, CPU utilisation).
* :class:`TimeSeriesRecorder` — raw ``(t, value)`` samples with percentile
  summaries (request latency, session wait).
* :class:`Histogram` — fixed-bucket distribution for high-volume series
  where keeping raw samples would be wasteful; percentiles are estimated
  by linear interpolation inside the owning bucket.

A :class:`MetricsRegistry` namespaces them per subsystem and renders a
plain-dict snapshot the benchmark harness prints.  Child registries
created with :meth:`MetricsRegistry.sub` are folded into their parent's
snapshot under the child namespace.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.kernel import Simulator


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current total."""
        return self._value

    def increment(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self._value += amount


class Gauge:
    """An instantaneous value with a time-weighted mean.

    The time-weighted mean is what capacity questions need: "how many
    instances were running *on average*" is the integral of the gauge over
    the observation window divided by its length, not the mean of the set
    values.
    """

    __slots__ = ("name", "_sim", "_value", "_last_change", "_area", "_start",
                 "_peak")

    def __init__(self, name: str, sim: Simulator, initial: float = 0.0):
        self.name = name
        self._sim = sim
        self._value = initial
        self._last_change = sim.now
        self._start = sim.now
        self._area = 0.0
        self._peak = initial

    @property
    def value(self) -> float:
        """Current gauge value."""
        return self._value

    @property
    def peak(self) -> float:
        """Maximum value ever set."""
        return self._peak

    def set(self, value: float) -> None:
        """Set the gauge, accruing area for the elapsed interval."""
        now = self._sim.now
        self._area += self._value * (now - self._last_change)
        self._last_change = now
        self._value = value
        if value > self._peak:
            self._peak = value

    def add(self, delta: float) -> None:
        """Adjust the gauge by ``delta``."""
        self.set(self._value + delta)

    def time_weighted_mean(self) -> float:
        """Mean value weighted by how long each value was held."""
        now = self._sim.now
        span = now - self._start
        if span <= 0:
            return self._value
        area = self._area + self._value * (now - self._last_change)
        return area / span


class TimeSeriesRecorder:
    """Raw samples with summary statistics.

    Stores every ``(t, value)`` pair; the simulated workloads are small
    enough (tens of thousands of samples) that exact percentiles beat the
    complexity of a sketch.
    """

    __slots__ = ("name", "_sim", "_samples", "_sum", "_ordered_values",
                 "_summary_cache")

    def __init__(self, name: str, sim: Simulator):
        self.name = name
        self._sim = sim
        self._samples: List[Tuple[float, float]] = []
        self._sum = 0.0
        # sorted-value cache: extended lazily with whatever arrived since
        # the last percentile call, then re-sorted — Timsort recognises
        # the sorted prefix, so the periodic scraper asking for
        # p50/p95/p99 every tick costs O(new samples), not O(n log n)
        self._ordered_values: List[float] = []
        # (count, items) snapshot-fragment memo: a scraper polling an
        # idle recorder pays one len() check, not three percentiles
        self._summary_cache: Optional[Tuple[int, Dict[str, float]]] = None

    def record(self, value: float) -> None:
        """Record ``value`` at the current simulated time."""
        self._samples.append((self._sim.now, value))
        self._sum += value

    @property
    def count(self) -> int:
        """Number of samples recorded."""
        return len(self._samples)

    @property
    def samples(self) -> List[Tuple[float, float]]:
        """Copy of the raw ``(time, value)`` samples."""
        return list(self._samples)

    def values(self) -> List[float]:
        """Just the sample values, in recording order."""
        return [v for _t, v in self._samples]

    def mean(self) -> float:
        """Arithmetic mean of the values (0.0 when empty)."""
        if not self._samples:
            return 0.0
        return self._sum / len(self._samples)

    def _ordered(self) -> List[float]:
        done = len(self._ordered_values)
        fresh = len(self._samples) - done
        if fresh > 0:
            if fresh <= 32:
                # a few new values insort in C-speed memmoves; a full
                # re-sort would pay O(n) Python comparisons every time
                # the periodic scraper asks for percentiles
                for _t, v in self._samples[done:]:
                    bisect.insort(self._ordered_values, v)
            else:
                self._ordered_values.extend(
                    v for _t, v in self._samples[done:])
                self._ordered_values.sort()
        return self._ordered_values

    def percentile(self, q: float) -> float:
        """Exact percentile ``q`` in [0, 100] by linear interpolation."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile out of range: {q}")
        if not self._samples:
            return 0.0
        ordered = self._ordered()
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return ordered[lo]
        frac = rank - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def maximum(self) -> float:
        """Largest recorded value (0.0 when empty)."""
        if not self._samples:
            return 0.0
        return self._ordered()[-1]

    def summary_items(self, prefix: str) -> Dict[str, float]:
        """Headline stats keyed ``<prefix>.<stat>``, memoised on count.

        This is the fragment :meth:`MetricsRegistry.snapshot` merges in;
        the memo means a periodic scraper only recomputes percentiles
        for recorders that actually received samples since last scrape.
        """
        cached = self._summary_cache
        if cached is not None and cached[0] == len(self._samples):
            return cached[1]
        items = {
            f"{prefix}.mean": self.mean(),
            f"{prefix}.p50": self.percentile(50),
            f"{prefix}.p95": self.percentile(95),
            f"{prefix}.p99": self.percentile(99),
            f"{prefix}.count": float(len(self._samples)),
        }
        self._summary_cache = (len(self._samples), items)
        return items

    def window(self, start: float, end: float) -> List[float]:
        """Values recorded in the half-open time window ``[start, end)``."""
        return [v for t, v in self._samples if start <= t < end]


#: Default latency-shaped bucket bounds (seconds), roughly logarithmic.
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
                   5.0, 10.0, 30.0, 60.0, 120.0, 300.0)


class Histogram:
    """A fixed-bucket histogram: O(buckets) memory at any sample volume.

    ``buckets`` are the finite upper bounds, ascending; an implicit
    overflow bucket catches everything above the last bound.  Quantile
    estimates interpolate linearly within the owning bucket, using the
    observed maximum to close the overflow bucket — exact enough for the
    p50/p95/p99 tables benches print, and immune to the unbounded-memory
    failure mode of recording raw samples on hot paths.

    Each bucket can additionally retain one *exemplar*: an arbitrary
    dict (by convention carrying ``trace_id``) describing the most
    recent observation that landed there.  Exemplars are what link a bad
    p99 back to a concrete trace — O(buckets) extra memory, replaced in
    place, never a sample log.
    """

    __slots__ = ("name", "_bounds", "_counts", "_overflow", "_count",
                 "_sum", "_min", "_max", "_exemplars", "_summary_cache")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        if not buckets:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        bounds = list(buckets)
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name!r} buckets must be "
                             f"strictly ascending")
        self.name = name
        self._bounds = bounds
        self._counts = [0] * len(bounds)
        self._overflow = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        # one slot per bucket plus one for overflow, filled lazily
        self._exemplars: List[Optional[Dict[str, object]]] = \
            [None] * (len(bounds) + 1)
        # (count, items) snapshot-fragment memo, same contract as
        # TimeSeriesRecorder.summary_items
        self._summary_cache: Optional[Tuple[int, Dict[str, float]]] = None

    def observe(self, value: float,
                exemplar: Optional[Dict[str, object]] = None) -> None:
        """Record one observation, optionally tagging its bucket.

        ``exemplar`` (typically ``{"trace_id": ...}``) replaces the
        owning bucket's retained exemplar; the observed value is stored
        alongside it under ``"value"``.
        """
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        lo = bisect.bisect_left(self._bounds, value)
        if lo < len(self._bounds):
            self._counts[lo] += 1
        else:
            self._overflow += 1
        if exemplar is not None:
            slot = dict(exemplar)
            slot["value"] = value
            self._exemplars[min(lo, len(self._bounds))] = slot

    @property
    def count(self) -> int:
        """Total observations."""
        return self._count

    @property
    def total(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        if self._count == 0:
            return 0.0
        return self._sum / self._count

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """(upper_bound, count) pairs; the overflow bound is ``inf``."""
        pairs = list(zip(self._bounds, self._counts))
        pairs.append((math.inf, self._overflow))
        return pairs

    def exemplars(self) -> List[Tuple[float, Dict[str, object]]]:
        """(upper_bound, exemplar) pairs for buckets holding one.

        The overflow bucket's bound is ``inf``; buckets that never saw a
        tagged observation are omitted.
        """
        bounds = self._bounds + [math.inf]
        return [(bounds[i], dict(ex))
                for i, ex in enumerate(self._exemplars) if ex is not None]

    def quantile(self, q: float) -> float:
        """Estimate percentile ``q`` in [0, 100] from the buckets."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile out of range: {q}")
        if self._count == 0:
            return 0.0
        target = (q / 100.0) * self._count
        cumulative = 0
        previous_bound = self._min
        for bound, count in self.bucket_counts():
            lower = max(previous_bound, self._min)
            upper = min(self._max if math.isinf(bound) else bound, self._max)
            upper = max(upper, lower)
            if count > 0 and cumulative + count >= target:
                frac = (target - cumulative) / count
                return lower + (upper - lower) * frac
            cumulative += count
            previous_bound = bound
        return self._max

    def summary_items(self, prefix: str) -> Dict[str, float]:
        """Headline stats keyed ``<prefix>.<stat>``, memoised on count."""
        cached = self._summary_cache
        if cached is not None and cached[0] == self._count:
            return cached[1]
        items = {
            f"{prefix}.mean": self.mean(),
            f"{prefix}.p50": self.quantile(50),
            f"{prefix}.p95": self.quantile(95),
            f"{prefix}.p99": self.quantile(99),
            f"{prefix}.count": float(self._count),
        }
        self._summary_cache = (self._count, items)
        return items


class MetricsRegistry:
    """Namespace of counters, gauges and recorders for one subsystem."""

    def __init__(self, sim: Simulator, namespace: str = ""):
        self._sim = sim
        self.namespace = namespace
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._recorders: Dict[str, TimeSeriesRecorder] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._children: Dict[str, "MetricsRegistry"] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        if name not in self._counters:
            self._counters[name] = Counter(self._qualify(name))
        return self._counters[name]

    def gauge(self, name: str, initial: float = 0.0) -> Gauge:
        """Get or create the gauge ``name``."""
        if name not in self._gauges:
            self._gauges[name] = Gauge(self._qualify(name), self._sim, initial)
        return self._gauges[name]

    def recorder(self, name: str) -> TimeSeriesRecorder:
        """Get or create the time-series recorder ``name``."""
        if name not in self._recorders:
            self._recorders[name] = TimeSeriesRecorder(self._qualify(name), self._sim)
        return self._recorders[name]

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """Get or create the fixed-bucket histogram ``name``."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(self._qualify(name), buckets)
        return self._histograms[name]

    def snapshot(self) -> Dict[str, float]:
        """Flat dict of every metric's headline number.

        Counters report their total, gauges their current value plus
        ``<name>.mean`` and ``<name>.peak``, recorders and histograms
        their mean plus ``<name>.p50``/``.p95``/``.p99`` and
        ``<name>.count``.  Child registries created via :meth:`sub` are
        merged in under their relative namespace.
        """
        out: Dict[str, float] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
            out[f"{name}.mean"] = gauge.time_weighted_mean()
            out[f"{name}.peak"] = gauge.peak
        for name, rec in self._recorders.items():
            out.update(rec.summary_items(name))
        for name, hist in self._histograms.items():
            out.update(hist.summary_items(name))
        for relative, child in self._children.items():
            for key, value in child.snapshot().items():
                out[f"{relative}.{key}"] = value
        return out

    def each_histogram(self) -> List[Tuple[str, Histogram]]:
        """Every histogram in this registry and its children.

        Names are qualified relative to *this* registry (matching the
        keys :meth:`snapshot` uses), so a scraper labelling series by
        source registry gets consistent naming either way.
        """
        out: List[Tuple[str, Histogram]] = [
            (name, hist) for name, hist in self._histograms.items()]
        for relative, child in self._children.items():
            out.extend((f"{relative}.{name}", hist)
                       for name, hist in child.each_histogram())
        return out

    def _qualify(self, name: str) -> str:
        return f"{self.namespace}.{name}" if self.namespace else name

    def sub(self, namespace: str) -> "MetricsRegistry":
        """The child registry at ``namespace``, created on first use.

        Children share the simulator, nest their metric names under the
        parent namespace, and are merged into the parent's
        :meth:`snapshot` — asking for the same namespace twice returns
        the same child, so a subsystem handing registries to its parts
        never silently orphans their metrics.
        """
        if namespace not in self._children:
            self._children[namespace] = MetricsRegistry(
                self._sim, self._qualify(namespace))
        return self._children[namespace]

"""Event-calendar simulator with generator-based processes.

The design follows the classic SimPy shape but is trimmed to what the EVOp
substrate needs:

* ``Simulator.schedule(delay, fn, *args)`` — plain callback events.
* ``Simulator.spawn(gen)`` — a *process*: a generator that yields either a
  non-negative number (sleep that many simulated seconds), a
  :class:`Signal` (block until fired), or another :class:`Process` (join).
* ``Signal`` — a one-shot level-triggered event carrying a value.

Time is a float in seconds; the unit is a convention shared by all
subsystems.  Determinism is guaranteed by a monotonically increasing
sequence number used to break ties between events scheduled for the same
instant.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the kernel (bad yields, time travel, ...)."""


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting.

    The interrupting party may attach a ``cause`` describing why (e.g. the
    instance a session was pinned to has crashed).
    """

    def __init__(self, cause: Any = None):
        super().__init__(f"interrupted: {cause!r}")
        self.cause = cause


class EventHandle:
    """Handle to a scheduled event, allowing cancellation.

    Cancellation is lazy: the entry stays in the calendar but is skipped by
    the run loop *without advancing the clock*, so cancelling a far-future
    timer never stretches the simulated horizon.  When cancelled entries
    pile up (long soaks cancel timers constantly) the owning simulator
    compacts the calendar rather than letting it grow without bound.
    """

    __slots__ = ("when", "fn", "args", "cancelled", "_sim")

    def __init__(self, when: float, fn: Callable, args: tuple,
                 sim: Optional["Simulator"] = None):
        self.when = when
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing; idempotent."""
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._note_cancelled()


class Signal:
    """A one-shot event processes can wait on.

    Firing a signal wakes every process currently waiting on it and makes
    the signal *set*: any later waiter resumes immediately with the same
    value.  This level-triggered behaviour avoids lost-wakeup races between
    subsystems that are composed loosely (e.g. a session waiting for an
    instance that already booted).
    """

    __slots__ = ("_sim", "name", "_fired", "_value", "_waiters")

    def __init__(self, sim: "Simulator", name: str = ""):
        self._sim = sim
        self.name = name
        self._fired = False
        self._value: Any = None
        self._waiters: List["Process"] = []

    @property
    def fired(self) -> bool:
        """Whether the signal has been fired."""
        return self._fired

    @property
    def value(self) -> Any:
        """The value the signal was fired with (``None`` before firing)."""
        return self._value

    def fire(self, value: Any = None) -> None:
        """Fire the signal, waking all waiters with ``value``.

        Firing twice is an error: signals are one-shot by design so that a
        stale waiter can never observe two different values.
        """
        if self._fired:
            raise SimulationError(f"signal {self.name!r} fired twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self._sim._resume(proc, value)

    def _add_waiter(self, proc: "Process") -> None:
        self._waiters.append(proc)

    def _discard_waiter(self, proc: "Process") -> None:
        if proc in self._waiters:
            self._waiters.remove(proc)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self._fired else f"{len(self._waiters)} waiting"
        return f"<Signal {self.name!r} {state}>"


class Process:
    """A running generator inside the simulator.

    Created via :meth:`Simulator.spawn`.  A process is *alive* until its
    generator returns or raises; other processes may ``yield`` it to join,
    and may :meth:`interrupt` it.
    """

    __slots__ = ("_sim", "name", "_gen", "_alive", "_result", "_error",
                 "_done_signal", "_waiting_on", "_pending_timer")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        self._sim = sim
        self.name = name or getattr(gen, "__name__", "process")
        self._gen = gen
        self._alive = True
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self._done_signal = Signal(sim, name=f"{self.name}.done")
        self._waiting_on: Optional[Signal] = None
        self._pending_timer: Optional[EventHandle] = None

    @property
    def alive(self) -> bool:
        """Whether the process generator has not yet finished."""
        return self._alive

    @property
    def result(self) -> Any:
        """Return value of the generator (``None`` until it finishes)."""
        return self._result

    @property
    def error(self) -> Optional[BaseException]:
        """Exception that terminated the process, if any."""
        return self._error

    @property
    def done_signal(self) -> Signal:
        """Signal fired with the process result when it finishes."""
        return self._done_signal

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current wait.

        Interrupting a dead process is a no-op — by the time a supervisor
        decides to cancel work, the work may have legitimately finished.
        """
        if not self._alive:
            return
        if self._waiting_on is not None:
            self._waiting_on._discard_waiter(self)
            self._waiting_on = None
        if self._pending_timer is not None:
            self._pending_timer.cancel()
            self._pending_timer = None
        self._sim._schedule_now(self._throw, Interrupt(cause))

    # -- internal stepping -------------------------------------------------

    def _throw(self, exc: BaseException) -> None:
        if not self._alive:
            return
        try:
            item = self._gen.throw(exc)
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None))
        except Interrupt as unhandled:
            self._fail(unhandled)
        except BaseException as err:  # noqa: BLE001 - surfaced via .error
            self._fail(err)
        else:
            self._wait_on(item)

    def _step(self, sent_value: Any) -> None:
        if not self._alive:
            return
        self._pending_timer = None
        try:
            item = self._gen.send(sent_value)
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None))
        except BaseException as err:  # noqa: BLE001 - surfaced via .error
            self._fail(err)
        else:
            self._wait_on(item)

    def _wait_on(self, item: Any) -> None:
        if isinstance(item, (int, float)):
            if item < 0:
                self._fail(SimulationError(f"negative sleep: {item}"))
                return
            self._pending_timer = self._sim.schedule(item, self._step, None)
        elif isinstance(item, Signal):
            if item.fired:
                self._sim._schedule_now(self._step, item.value)
            else:
                self._waiting_on = item
                item._add_waiter(self)
        elif isinstance(item, Process):
            self._wait_on(item.done_signal)
        else:
            self._fail(SimulationError(
                f"process {self.name!r} yielded unsupported {item!r}"))

    def _finish(self, result: Any) -> None:
        self._alive = False
        self._result = result
        self._done_signal.fire(result)

    def _fail(self, err: BaseException) -> None:
        self._alive = False
        self._error = err
        self._sim._record_failure(self, err)
        self._done_signal.fire(None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self._alive else "done"
        return f"<Process {self.name!r} {state}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()
        def worker():
            yield 5.0              # sleep 5 simulated seconds
            ready.fire("ok")
        ready = sim.signal("ready")
        sim.spawn(worker())
        sim.run()

    ``strict`` (the default) makes process failures raise at ``run`` time
    instead of being silently recorded, which is what tests want.
    """

    #: compact the calendar once this many cancelled entries linger *and*
    #: they make up at least half the queue — rare enough to amortise the
    #: O(n) rebuild, soon enough that cancel-heavy soaks stay bounded
    COMPACT_THRESHOLD = 256

    def __init__(self, strict: bool = True):
        self._now = 0.0
        self._seq = 0
        self._queue: list = []
        self._strict = strict
        self._failures: list = []
        self._processes: List[Process] = []
        self._cancelled = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def calendar_size(self) -> int:
        """Entries currently in the calendar, cancelled ones included."""
        return len(self._queue)

    @property
    def failures(self) -> List[Tuple["Process", BaseException]]:
        """Processes that terminated with an unhandled exception."""
        return list(self._failures)

    # -- scheduling --------------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> EventHandle:
        """Run ``fn(*args)`` after ``delay`` simulated seconds.

        Returns an :class:`EventHandle` whose ``cancel()`` prevents the
        event from firing (and from advancing the clock).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        self._seq += 1
        handle = EventHandle(self._now + delay, fn, args, sim=self)
        heapq.heappush(self._queue, (handle.when, self._seq, handle))
        return handle

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if (self._cancelled >= self.COMPACT_THRESHOLD
                and self._cancelled * 2 >= len(self._queue)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and restore the heap invariant."""
        self._queue = [entry for entry in self._queue
                       if not entry[2].cancelled]
        heapq.heapify(self._queue)
        self._cancelled = 0

    def _schedule_now(self, fn: Callable, *args: Any) -> EventHandle:
        return self.schedule(0.0, fn, *args)

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a generator as a process; it takes its first step at now."""
        proc = Process(self, gen, name=name)
        self._processes.append(proc)
        self._schedule_now(proc._step, None)
        return proc

    def signal(self, name: str = "") -> Signal:
        """Create a fresh :class:`Signal` bound to this simulator."""
        return Signal(self, name=name)

    def _resume(self, proc: Process, value: Any) -> None:
        proc._waiting_on = None
        self._schedule_now(proc._step, value)

    def _record_failure(self, proc: Process, err: BaseException) -> None:
        self._failures.append((proc, err))

    # -- running -----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queue drains or ``until`` is reached.

        Returns the simulated time at which the run stopped.  With
        ``until`` set, the clock is advanced exactly to ``until`` even if
        the last event fires earlier, so periodic measurements line up.
        """
        while self._queue:
            when, _seq, handle = self._queue[0]
            if handle.cancelled:
                heapq.heappop(self._queue)
                if self._cancelled > 0:
                    self._cancelled -= 1
                continue
            if until is not None and when > until:
                break
            heapq.heappop(self._queue)
            self._now = when
            handle.fn(*handle.args)
            if self._strict and self._failures:
                proc, err = self._failures[0]
                raise SimulationError(
                    f"process {proc.name!r} failed at t={self._now:.3f}"
                ) from err
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_process(self, gen: Generator, name: str = "",
                    until: Optional[float] = None) -> Any:
        """Spawn ``gen``, run the simulation, and return the process result.

        Convenience for tests and benches that model one top-level driver.
        """
        proc = self.spawn(gen, name=name)
        self.run(until=until)
        if proc.error is not None:
            raise SimulationError(f"process {proc.name!r} failed") from proc.error
        return proc.result

    def all_of(self, signals: Iterable[Signal], name: str = "all") -> Signal:
        """Return a signal that fires once every input signal has fired.

        The combined signal's value is the list of individual values in the
        order the inputs were given.
        """
        pending = list(signals)
        combined = self.signal(name)
        if not pending:
            self._schedule_now(combined.fire, [])
            return combined
        remaining = {"n": len(pending)}

        def arm(sig: Signal) -> None:
            def waiter():
                yield sig
                remaining["n"] -= 1
                if remaining["n"] == 0:
                    combined.fire([s.value for s in pending])
            self.spawn(waiter(), name=f"{name}.wait")

        for sig in pending:
            arm(sig)
        return combined

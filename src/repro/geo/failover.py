"""Whole-region failover: verdicts, session evacuation, re-adoption.

The :class:`FailoverCoordinator` turns the estate's instance-level
health machinery into *region* verdicts and drives the failover
sequence when one flips to DOWN:

1. **detect** — every ``check_interval`` the coordinator folds each
   region's :class:`~repro.broker.health.HealthMonitor` samples,
   serving-instance count and blob-store state into a
   :class:`~repro.geo.topology.RegionStatus` verdict and records it in
   the shared topology (which the router, replicator, election and
   REST guards all read);
2. **evacuate** — sessions homed in the lost region are detached and
   re-placed in survivors through
   :meth:`~repro.geo.routing.GeoRouter.replace` (stickiness loses to a
   DOWN home);
3. **re-adopt** — one surviving region (the nearest, fixed at
   detection time so two survivors never race for the same run) keeps
   sweeping its :class:`~repro.durable.recovery.RecoveryManager` for
   orphaned runs; the replicated journals let it resume work the lost
   region owned, losing at most one replication interval of progress
   (the RPO);
4. **restore** — when the region's storage and capacity come back the
   verdict heals, the topology flips back, and stickiness resumes.

Everything is measured: each failover produces a
:class:`FailoverReport` with detection, evacuation and restoration
timestamps, which ``benchmarks/bench_multi_region.py`` folds into the
end-to-end RTO.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.geo.routing import GeoRouter
from repro.geo.topology import RegionStatus, RegionTopology
from repro.obs.hub import obs_of
from repro.sim import Simulator


@dataclass
class FailoverReport:
    """One region loss, timestamped end to end."""

    region: str
    detected_at: float
    adopter: Optional[str] = None
    sessions_detached: int = 0
    sessions_replaced: int = 0
    #: when every evacuated session was ACTIVE again (None = pending)
    resettled_at: Optional[float] = None
    restored_at: Optional[float] = None
    runs_recovered: List[str] = field(default_factory=list)
    #: the evacuated sessions themselves (for resettlement tracking)
    evacuated: List[object] = field(default_factory=list)


@dataclass
class _RegionCell:
    """The per-region components the coordinator watches and drives."""

    region: str
    monitor: object
    providers: List[object]
    store: object
    recovery: Optional[object] = None
    adopter: Optional[str] = None


class FailoverCoordinator:
    """Folds health signals into region verdicts and drives failover."""

    #: fraction of watched replicas that must be faulty before a region
    #: with working storage is declared DEGRADED
    DEGRADED_FRACTION = 0.5

    def __init__(self, sim: Simulator, topology: RegionTopology,
                 georouter: GeoRouter, sessions,
                 check_interval: float = 2.0):
        self.sim = sim
        self.topology = topology
        self.georouter = georouter
        self.sessions = sessions
        self.check_interval = check_interval
        self._cells: Dict[str, _RegionCell] = {}
        self.reports: List[FailoverReport] = []
        self._started = False

    # -- wiring --------------------------------------------------------------

    def add_region(self, region: str, monitor, providers, store,
                   recovery=None) -> None:
        """Attach one region's monitor, providers, store and recovery."""
        if region not in self.topology.regions():
            raise ValueError(f"region {region!r} not in topology")
        if region in self._cells:
            raise ValueError(f"region {region!r} already attached")
        self._cells[region] = _RegionCell(
            region=region, monitor=monitor, providers=list(providers),
            store=store, recovery=recovery)

    def start(self) -> "FailoverCoordinator":
        """Begin the verdict loop."""
        if self._started:
            return self
        self._started = True

        def loop():
            while True:
                yield self.check_interval
                self.step()

        self.sim.spawn(loop(), name="geo-failover")
        return self

    # -- verdicts ------------------------------------------------------------

    def verdict(self, region: str) -> RegionStatus:
        """This coordinator's current opinion of one region."""
        cell = self._cells[region]
        serving = sum(len(p.serving_instances()) for p in cell.providers)
        store_down = bool(getattr(cell.store, "faulted", False))
        if store_down and serving == 0:
            return RegionStatus.DOWN
        if store_down or self._faulty_fraction(cell) >= self.DEGRADED_FRACTION:
            return RegionStatus.DEGRADED
        if serving == 0 and self.topology.status(region) is RegionStatus.DOWN:
            # storage healed but capacity hasn't rebooted yet: the
            # region is convalescing, not serving
            return RegionStatus.DEGRADED
        return RegionStatus.HEALTHY

    @staticmethod
    def _faulty_fraction(cell: _RegionCell) -> float:
        watched = cell.monitor.watched()
        if not watched:
            return 0.0
        faulty = sum(1 for inst in watched
                     if cell.monitor.verdict(inst).is_fault)
        return faulty / len(watched)

    # -- the control loop ----------------------------------------------------

    def step(self) -> None:
        """One verdict round; drives failover/restore transitions."""
        for region, cell in self._cells.items():
            verdict = self.verdict(region)
            current = self.topology.status(region)
            if verdict is RegionStatus.DOWN and current is not RegionStatus.DOWN:
                self._fail_over(region, cell)
            elif verdict is not RegionStatus.DOWN \
                    and current is RegionStatus.DOWN \
                    and verdict is RegionStatus.HEALTHY:
                self._restore(region, cell)
            elif current is not RegionStatus.DOWN:
                self.topology.mark(region, verdict)
        self._sweep_orphans()
        self._settle_reports()

    def _fail_over(self, region: str, cell: _RegionCell) -> None:
        self.topology.mark(region, RegionStatus.DOWN)
        report = FailoverReport(region=region, detected_at=self.sim.now)
        self.reports.append(report)
        # evacuate: every non-ended session homed here moves now
        doomed = [s for s in self.sessions.all()
                  if getattr(s, "region", None) == region
                  and s.state.value != "ended"]
        for session in doomed:
            if session.state.value == "active":
                session.unassign()
        report.sessions_detached = len(doomed)
        report.evacuated = list(doomed)
        placed = self.georouter.replace(doomed)
        report.sessions_replaced = len(placed)
        # one survivor — the nearest at detection time — adopts the
        # lost region's durable runs from its replicated journals
        cell.adopter = self.georouter.pick_region(region)
        report.adopter = cell.adopter
        obs_of(self.sim).events.emit(
            "geo.failover.begin", region=region,
            sessions=len(doomed), adopter=cell.adopter or "")

    def _restore(self, region: str, cell: _RegionCell) -> None:
        self.topology.mark(region, RegionStatus.HEALTHY)
        cell.adopter = None
        for report in reversed(self.reports):
            if report.region == region and report.restored_at is None:
                report.restored_at = self.sim.now
                break
        obs_of(self.sim).events.emit("geo.failover.restored", region=region)

    def _sweep_orphans(self) -> None:
        """Adopt orphaned runs in each downed region's designated survivor.

        ``RecoveryManager.recover_instance`` is idempotent per owner and
        itself waits out lease expiry + grace, so sweeping every tick is
        safe; only the designated adopter sweeps, so two survivors never
        both resurrect the same run.
        """
        for region, cell in self._cells.items():
            if self.topology.status(region) is not RegionStatus.DOWN:
                continue
            adopter = cell.adopter
            recovery = (self._cells[adopter].recovery
                        if adopter in self._cells else None)
            if recovery is None:
                continue
            report = self._open_report(region)
            for state in recovery.orphans():
                if report is not None \
                        and state.run_id not in report.runs_recovered:
                    report.runs_recovered.append(state.run_id)
                recovery.recover_instance(state.owner,
                                          verdict="region-failover")

    def _open_report(self, region: str) -> Optional[FailoverReport]:
        for report in reversed(self.reports):
            if report.region == region and report.restored_at is None:
                return report
        return None

    def _settle_reports(self) -> None:
        """Stamp ``resettled_at`` once every evacuated session is placed."""
        for report in self.reports:
            if report.resettled_at is not None:
                continue
            if all(s.state.value != "waiting" for s in report.evacuated):
                report.resettled_at = self.sim.now
                obs_of(self.sim).events.emit(
                    "geo.failover.resettled", region=report.region,
                    sessions=len(report.evacuated),
                    rto=round(self.sim.now - report.detected_at, 3))

"""The replicated, leader-decided capacity ledger.

One :class:`~repro.sched.ledger.CapacityLedger` per region, kept in
lockstep: **decisions** (admit) are made only by the elected leader
region's replica, **facts** (commit/release) fan out synchronously to
every reachable replica.  Losing any region therefore never loses the
book — the next leader's replica already holds every commit — and a
bounded no-leader window (see
:class:`~repro.geo.election.LeaderElection`) is the worst placement
pays for a leader-region loss: admissions are *refused*, never guessed,
so capacity cannot be double-committed while leadership moves.

Fencing: admissions carry the ``(leader, term)`` grant they were
issued under; :meth:`GeoLedger.admit_as` rejects any grant that is not
the current one, so a deposed leader's in-flight decisions die with
its term.

Shard Load Balancers never see any of this: they hold a
:class:`RegionLedgerHandle` speaking local location labels, with the
same ``admit``/``commit``/``release``/``bursting`` surface a plain
:class:`CapacityLedger` has.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.geo.election import LeaderElection
from repro.geo.topology import RegionStatus, RegionTopology, qualify
from repro.obs.hub import obs_of
from repro.sched.ledger import CapacityLedger
from repro.sim import Simulator


class GeoLedger:
    """Region-replicated capacity book with leader-only admission."""

    def __init__(self, sim: Simulator, election: LeaderElection,
                 topology: RegionTopology,
                 capacity: Optional[Dict[str, int]] = None,
                 metrics=None,
                 tenant_quotas: Optional[Dict[str, float]] = None):
        self.sim = sim
        self.election = election
        self.topology = topology
        self.capacity: Dict[str, int] = dict(capacity or {})
        self.metrics = metrics
        #: per-tenant estate-wide vCPU caps, enforced by whichever
        #: replica is leader (every replica carries the same quotas)
        self.tenant_quotas: Dict[str, float] = dict(tenant_quotas or {})
        self._replicas: Dict[str, CapacityLedger] = {}
        #: admissions refused because no leader held a live lease
        self.no_leader_refusals = 0
        #: writes rejected because their grant's term was stale
        self.fenced = 0
        #: commits observed past a location's budget (must stay 0)
        self.overcommits = 0

    # -- wiring --------------------------------------------------------------

    def add_region(self, region: str) -> CapacityLedger:
        """Create ``region``'s replica of the book."""
        if region not in self.topology.regions():
            raise ValueError(f"region {region!r} not in topology")
        if region in self._replicas:
            raise ValueError(f"region {region!r} already has a replica")
        # replicas carry no metrics registry: three books recording the
        # same fact would triple-count every commit
        replica = CapacityLedger(self.sim, capacity=self.capacity,
                                 tenant_quotas=self.tenant_quotas)
        self._replicas[region] = replica
        return replica

    def replica(self, region: str) -> CapacityLedger:
        """One region's copy of the book."""
        return self._replicas[region]

    def handle(self, region: str) -> "RegionLedgerHandle":
        """The ledger facade a region's shard LBs hold."""
        return RegionLedgerHandle(self, region)

    # -- grants --------------------------------------------------------------

    def grant(self) -> Optional[Tuple[str, int]]:
        """The current ``(leader, term)``, or ``None`` mid-election."""
        leader = self.election.leader()
        if leader is None or leader not in self._replicas:
            return None
        return leader, self.election.term

    def _fresh(self, owner: str, term: int) -> bool:
        current = self.grant()
        if current is None or current != (owner, term):
            self.fenced += 1
            obs_of(self.sim).events.emit(
                "geo.ledger.fenced", owner=owner, term=term,
                leader=current[0] if current else None,
                current_term=self.election.term)
            return False
        return True

    # -- decisions (leader only) ---------------------------------------------

    def admit(self, location: str, vcpus: int,
              tenant: Optional[str] = None) -> bool:
        """Leader-decided admission against the global budget.

        ``location`` is a global label (``region/local``).  With no
        leader the answer is *no* — a bounded stall, never a guess.
        """
        granted = self.grant()
        if granted is None:
            self.no_leader_refusals += 1
            obs_of(self.sim).events.emit("geo.ledger.noleader",
                                         location=location, vcpus=vcpus)
            return False
        leader, term = granted
        return self.admit_as(leader, term, location, vcpus, tenant=tenant)

    def admit_as(self, owner: str, term: int, location: str,
                 vcpus: int, tenant: Optional[str] = None) -> bool:
        """An admission issued under an explicit grant (fenced)."""
        if not self._fresh(owner, term):
            return False
        return self._replicas[owner].admit(location, vcpus, tenant=tenant)

    # -- facts (fan out everywhere) ------------------------------------------

    def commit(self, location: str, vcpus: int, public: bool = False,
               tenant: Optional[str] = None) -> None:
        """Record a launch in every reachable replica."""
        budget = self.capacity.get(location)
        for _, replica in self._live_replicas():
            replica.commit(location, vcpus, public=public, tenant=tenant)
            if budget is not None and replica.committed(location) > budget:
                self.overcommits += 1
                obs_of(self.sim).events.emit(
                    "geo.ledger.overcommit", location=location,
                    committed=replica.committed(location), budget=budget)

    def release(self, location: str, vcpus: int, public: bool = False,
                tenant: Optional[str] = None) -> None:
        """Record a retirement in every reachable replica."""
        for _, replica in self._live_replicas():
            replica.release(location, vcpus, public=public, tenant=tenant)

    def _live_replicas(self) -> List[Tuple[str, CapacityLedger]]:
        return [(region, replica)
                for region, replica in self._replicas.items()
                if self.topology.status(region) is not RegionStatus.DOWN]

    # -- queries -------------------------------------------------------------

    def committed(self, location: str) -> int:
        """Committed vCPUs at a global location (max across replicas)."""
        return max((replica.committed(location)
                    for _, replica in self._live_replicas()), default=0)

    def snapshot(self) -> Dict[str, int]:
        """Committed vCPUs per global location (replica maximum)."""
        merged: Dict[str, int] = {}
        for _, replica in self._live_replicas():
            for location, vcpus in replica.snapshot().items():
                merged[location] = max(merged.get(location, 0), vcpus)
        return merged

    def committed_by_tenant(self) -> Dict[str, int]:
        """Per-tenant committed vCPUs (replica maximum, estate-wide)."""
        merged: Dict[str, int] = {}
        for _, replica in self._live_replicas():
            for tenant, vcpus in replica.committed_by_tenant().items():
                merged[tenant] = max(merged.get(tenant, 0), vcpus)
        return merged

    @property
    def bursting(self) -> bool:
        """Whether any reachable replica records public capacity."""
        return any(replica.bursting for _, replica in self._live_replicas())

    @property
    def refusals(self) -> int:
        """Budget refusals (leader replicas) plus no-leader refusals."""
        books = sum(replica.refusals for replica in self._replicas.values())
        return books + self.no_leader_refusals


class RegionLedgerHandle:
    """One region's view of the :class:`GeoLedger`.

    Speaks the region's local location labels, exposing the same
    surface the shard Load Balancers expect of a
    :class:`~repro.sched.ledger.CapacityLedger`.
    """

    def __init__(self, geo: GeoLedger, region: str):
        self.geo = geo
        self.region = region

    def _global(self, location: str) -> str:
        return qualify(self.region, location)

    def admit(self, location: str, vcpus: int,
              tenant: Optional[str] = None) -> bool:
        """Leader-decided admission for a local location."""
        return self.geo.admit(self._global(location), vcpus, tenant=tenant)

    def commit(self, location: str, vcpus: int, public: bool = False,
               tenant: Optional[str] = None) -> None:
        """Record a local launch estate-wide."""
        self.geo.commit(self._global(location), vcpus, public=public,
                        tenant=tenant)

    def release(self, location: str, vcpus: int, public: bool = False,
                tenant: Optional[str] = None) -> None:
        """Record a local retirement estate-wide."""
        self.geo.release(self._global(location), vcpus, public=public,
                         tenant=tenant)

    def committed(self, location: str) -> int:
        """Committed vCPUs at a local location."""
        return self.geo.committed(self._global(location))

    def committed_by_tenant(self) -> Dict[str, int]:
        """Per-tenant committed vCPUs (replica maximum, estate-wide)."""
        return self.geo.committed_by_tenant()

    @property
    def bursting(self) -> bool:
        """Estate-wide cloudburst state."""
        return self.geo.bursting

    @property
    def refusals(self) -> int:
        """Estate-wide refusal count."""
        return self.geo.refusals

"""Region-aware session routing: nearest-healthy with sticky sessions.

The :class:`GeoRouter` sits above the per-region
:class:`~repro.sched.router.ShardedRouter`s.  Placement rules, in
order:

* **sticky** — a session that already has a home region goes back
  there while the region is healthy (the portal's session state is
  tiny, but the user's datasets and traces live in the regional
  warehouse, so locality matters);
* **nearest-healthy** — otherwise the closest region (topology ring
  order from the session's origin) that is healthy and not browned
  out wins;
* **spillover on brownout** — a DEGRADED region, or a healthy one
  whose scheduling queues exceed ``spillover_depth``, is skipped and
  the session spills to the next region on the ring;
* **last resort** — if every region is browned out, the nearest
  not-DOWN region still takes the session (serving slowly beats
  refusing).

With a single region the router delegates verbatim — same calls, same
order — so ``regions=1`` stays bit-identical to the pre-geo stack.

:class:`RegionGuard` is the REST-side enforcement (satellite: RFC-7807
``503`` + ``Retry-After`` on ``/v1`` routes when the serving region is
degraded *and* no region can absorb the spillover).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.geo.topology import RegionStatus, RegionTopology
from repro.obs.hub import obs_of
from repro.sched.core import PriorityClass
from repro.services.envelope import problem
from repro.services.rest import API_VERSION
from repro.services.transport import HttpRequest, HttpResponse
from repro.tenancy.context import DEFAULT_TENANT, TENANT_HEADER
from repro.sim import Simulator


class GeoRouter:
    """Routes sessions to regions, then delegates to the region's plane."""

    def __init__(self, sim: Simulator, topology: RegionTopology,
                 routers: Dict[str, object],
                 spillover_depth: Optional[int] = None, metrics=None):
        self.sim = sim
        self.topology = topology
        self.routers = dict(routers)
        for region in topology.regions():
            if region not in self.routers:
                raise ValueError(f"region {region!r} has no router")
        self.spillover_depth = spillover_depth
        self.metrics = metrics
        self.spillovers = 0
        self.refused = 0

    def router(self, region: str):
        """The region's ShardedRouter."""
        return self.routers[region]

    # -- placement -----------------------------------------------------------

    def submit_session(self, session, service_name: str,
                       priority: PriorityClass = PriorityClass.INTERACTIVE,
                       origin: Optional[str] = None) -> Optional[str]:
        """Place a session; returns the serving region (None if refused).

        ``origin`` is where the user is; a session that was already
        placed is sticky to its previous region instead.
        """
        if len(self.routers) == 1:
            (only,) = self.routers
            self.routers[only].submit_session(session, service_name,
                                              priority=priority)
            return only
        home = getattr(session, "region", None) or origin
        region = self.pick_region(home)
        if region is None:
            self.refused += 1
            self._count("refused")
            obs_of(self.sim).events.emit("geo.route.refused",
                                         session=session.session_id)
            return None
        if home is not None and region != home:
            self.spillovers += 1
            self._count("spillover")
            obs_of(self.sim).events.emit("geo.route.spillover",
                                         session=session.session_id,
                                         origin=home, region=region)
        session.region = region
        session.geo_service = service_name
        self.routers[region].submit_session(session, service_name,
                                            priority=priority)
        return region

    def pick_region(self, origin: Optional[str] = None) -> Optional[str]:
        """Nearest healthy un-browned-out region; any survivor failing that."""
        ring = self.topology.nearest(origin)
        for region in ring:
            if self.topology.status(region) is RegionStatus.HEALTHY \
                    and not self.browned_out(region):
                return region
        for region in ring:
            if self.topology.status(region) is not RegionStatus.DOWN:
                return region
        return None

    def browned_out(self, region: str) -> bool:
        """Whether a region's scheduling queues are past the spill bound."""
        if self.spillover_depth is None:
            return False
        return self._queue_depth(region) > self.spillover_depth

    def spillover_target(self, origin: str) -> Optional[str]:
        """A healthy region (other than ``origin``) with headroom, or None.

        This is the question the REST guard asks: "if I shed this
        request, is there anywhere better for the retry to land?"
        """
        for region in self.topology.nearest(origin):
            if region == origin:
                continue
            if self.topology.status(region) is RegionStatus.HEALTHY \
                    and not self.browned_out(region):
                return region
        return None

    def _queue_depth(self, region: str) -> int:
        per_shard = self.routers[region].depths()
        return sum(count
                   for per_service in per_shard.values()
                   for counts in per_service.values()
                   for count in counts.values())

    # -- failover ------------------------------------------------------------

    def replace(self, sessions) -> List[Tuple[object, str]]:
        """Re-place detached sessions after a region loss.

        Each session keeps its service and priority; stickiness to the
        dead home region is overridden by :meth:`pick_region` skipping
        DOWN regions.  Returns ``(session, new_region)`` pairs.
        """
        placed: List[Tuple[object, str]] = []
        for session in sessions:
            service = getattr(session, "geo_service", None)
            if service is None:
                continue
            home = getattr(session, "region", None)
            region = self.pick_region(home)
            if region is None:
                self.refused += 1
                continue
            priority = session.priority or PriorityClass.INTERACTIVE
            session.region = region
            self.routers[region].submit_session(session, service,
                                                priority=priority)
            self._count("failover_replaced")
            placed.append((session, region))
        return placed

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).increment()


class RegionGuard:
    """Sheds ``/v1`` traffic while a region is degraded and spill-less.

    Installed as a :class:`~repro.services.rest.RestApi` guard on a
    region's api.  While the serving region is impaired *and*
    :meth:`GeoRouter.spillover_target` finds nowhere better, requests
    are answered with an RFC-7807 ``503`` problem document carrying
    ``Retry-After`` and ``retryable: true`` — exactly what
    :class:`~repro.resilience.policy.RetryPolicy` needs to classify the
    response as worth backing off for, instead of an ad-hoc error.

    While a healthy spillover target exists the guard stays silent:
    existing sessions keep being served and new placement is the
    router's job, not the request path's.
    """

    def __init__(self, georouter: GeoRouter, region: str,
                 retry_after: float = 15.0):
        self.georouter = georouter
        self.region = region
        self.retry_after = retry_after
        self.shed = 0
        #: sheds attributed to the billing principal that suffered them
        self.shed_by_tenant: Dict[str, int] = {}

    def __call__(self, request: HttpRequest) -> Optional[HttpResponse]:
        if not request.path.startswith(f"/{API_VERSION}"):
            return None
        status = self.georouter.topology.status(self.region)
        if status is RegionStatus.HEALTHY:
            return None
        if self.georouter.spillover_target(self.region) is not None:
            return None
        self.shed += 1
        tenant = request.headers.get(TENANT_HEADER) or DEFAULT_TENANT
        self.shed_by_tenant[tenant] = self.shed_by_tenant.get(tenant, 0) + 1
        obs_of(self.georouter.sim).events.emit(
            "geo.guard.shed", region=self.region, status=status.value,
            path=request.path, tenant=tenant)
        body = problem(
            503, "region degraded",
            f"region {self.region} is {status.value} and no healthy "
            f"region can absorb spillover; retry after "
            f"{self.retry_after:.0f}s",
            retryable=True, type_slug="region-degraded",
            region=self.region, tenant=tenant)
        return HttpResponse(status=503, body=body,
                            headers={"Retry-After":
                                     f"{self.retry_after:.0f}"})

"""Region topology: the estate's map of failure domains.

A region is a named failure domain holding one full copy of the stack
(providers, blob store, warehouse, journals, scheduling cell).  The
topology is the shared book of which regions exist, in which
preference order, and what state each is in — every geo component
(router, replicator, election, failover coordinator) consults it
rather than keeping a private health opinion.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.obs.hub import obs_of
from repro.sim import Simulator


class RegionStatus(enum.Enum):
    """One region's serving state."""

    #: Serving normally.
    HEALTHY = "healthy"
    #: Impaired (brownout): still serving, but new sessions spill over.
    DEGRADED = "degraded"
    #: Lost: nothing in the region serves; traffic and leadership move.
    DOWN = "down"


@dataclass(frozen=True)
class RegionTransition:
    """One recorded status change."""

    time: float
    region: str
    previous: RegionStatus
    status: RegionStatus


def qualify(region: str, location: str) -> str:
    """The estate-global label of a region-local location."""
    return f"{region}/{location}"


class RegionTopology:
    """Ordered regions plus their current status.

    The registration order is the global preference order (the same
    convention :class:`~repro.cloud.multicloud.MultiCloud` uses for
    locations); :meth:`nearest` treats it as a ring so every region
    has a deterministic neighbour order for spillover and failover.
    """

    def __init__(self, sim: Simulator, regions: Sequence[str]):
        if not regions:
            raise ValueError("a topology needs at least one region")
        if len(set(regions)) != len(regions):
            raise ValueError(f"duplicate region names in {list(regions)!r}")
        self.sim = sim
        self._order: List[str] = list(regions)
        self._status = {region: RegionStatus.HEALTHY for region in regions}
        self.transitions: List[RegionTransition] = []

    def regions(self) -> List[str]:
        """All regions in preference order."""
        return list(self._order)

    def status(self, region: str) -> RegionStatus:
        """The current status of ``region``."""
        try:
            return self._status[region]
        except KeyError:
            raise ValueError(f"unknown region {region!r}") from None

    def is_down(self, region: str) -> bool:
        """Whether ``region`` is marked DOWN."""
        return self.status(region) is RegionStatus.DOWN

    def mark(self, region: str, status: RegionStatus) -> None:
        """Record a status change (no-op when unchanged)."""
        previous = self.status(region)
        if previous is status:
            return
        self._status[region] = status
        self.transitions.append(RegionTransition(
            time=self.sim.now, region=region,
            previous=previous, status=status))
        obs_of(self.sim).events.emit("geo.region.status", region=region,
                                     status=status.value,
                                     previous=previous.value)

    def available(self) -> List[str]:
        """Regions that can serve at all (not DOWN), in preference order."""
        return [r for r in self._order
                if self._status[r] is not RegionStatus.DOWN]

    def nearest(self, origin: Optional[str] = None) -> List[str]:
        """All regions ordered by closeness to ``origin``.

        ``origin`` first, then the rest of the ring in preference
        order; an unknown/None origin falls back to preference order.
        """
        if origin is None or origin not in self._status:
            return list(self._order)
        pivot = self._order.index(origin)
        return self._order[pivot:] + self._order[:pivot]

    def nearest_available(self, origin: Optional[str] = None) -> Optional[str]:
        """The closest not-DOWN region to ``origin`` (or ``None``)."""
        for region in self.nearest(origin):
            if self._status[region] is not RegionStatus.DOWN:
                return region
        return None

"""The geo-distributed estate builder.

One :class:`GeoEstate` wires the full stack — providers, blob store,
warehouse, journals, health monitor, recovery, shard LBs, router and a
managed REST service — once per region, then layers the geo control
plane on top: shared :class:`~repro.geo.topology.RegionTopology`,
:class:`~repro.geo.replication.Replicator` (warehouse + run journals),
:class:`~repro.geo.election.LeaderElection` +
:class:`~repro.geo.ledger.GeoLedger`,
:class:`~repro.geo.routing.GeoRouter` (with per-region
:class:`~repro.geo.routing.RegionGuard`s on the REST apis) and the
:class:`~repro.geo.failover.FailoverCoordinator`.

``regions=1`` is the compatibility contract: the estate then builds
exactly the classic single-region stack — default provider names,
plain :class:`~repro.sched.ledger.CapacityLedger`, un-qualified
"private"/"public" locations, no geo processes — and the
:class:`~repro.geo.routing.GeoRouter` delegates verbatim, so behaviour
is bit-identical to the pre-geo deployment
(``benchmarks/bench_multi_region.py`` pins this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.broker import (
    HealthMonitor,
    LoadBalancer,
    ManagedService,
    PrivateFirstPolicy,
    SessionTable,
)
from repro.cloud import (
    MEDIUM,
    AwsCloud,
    BlobStore,
    FaultInjector,
    ImageKind,
    ImageStore,
    MultiCloud,
    OpenStackCloud,
)
from repro.data.warehouse import DataWarehouse
from repro.durable import JournalStore, RecoveryManager
from repro.geo.election import LeaderElection
from repro.geo.failover import FailoverCoordinator
from repro.geo.ledger import GeoLedger
from repro.geo.replication import Replicator
from repro.geo.routing import GeoRouter, RegionGuard
from repro.geo.topology import RegionTopology, qualify
from repro.sched import CapacityLedger, PriorityClass, ShardedRouter
from repro.services import Network, RestApi, RestServer
from repro.sim import RandomStreams, Simulator

#: Default region names, preference order (the ring).
REGIONS = ("eu-west", "us-east", "ap-south")


@dataclass
class GeoCell:
    """One region's full copy of the stack."""

    region: str
    private: OpenStackCloud
    public: AwsCloud
    store: BlobStore
    warehouse: DataWarehouse
    journals: JournalStore
    monitor: HealthMonitor
    recovery: RecoveryManager
    lbs: List[LoadBalancer]
    router: ShardedRouter
    api: RestApi
    service: ManagedService
    guard: Optional[RegionGuard] = None
    providers: List[object] = field(default_factory=list)


class GeoEstate:
    """2–3 regions of the full stack with any single one expendable."""

    def __init__(self, regions: Union[int, Sequence[str]] = 1,
                 shards_per_region: int = 1,
                 private_vcpus: int = 64, sessions_per_replica: int = 4,
                 min_replicas: int = 1, max_replicas: int = 16,
                 autoscale_interval: float = 10.0,
                 health_interval: float = 5.0,
                 capacity: Optional[Dict[str, int]] = None,
                 replication_interval: float = 5.0,
                 election_ttl: float = 10.0,
                 election_check: float = 1.0,
                 failover_interval: float = 2.0,
                 spillover_depth: Optional[int] = None,
                 service_name: str = "portal", seed: int = 42):
        if isinstance(regions, int):
            if not 1 <= regions <= len(REGIONS):
                raise ValueError(f"regions must be 1..{len(REGIONS)}")
            names = list(REGIONS[:regions])
        else:
            names = list(regions)
        self.single = len(names) == 1
        self.service_name = service_name
        self.replication_interval = replication_interval

        self.sim = Simulator()
        self.streams = RandomStreams(seed=seed)
        self.multi = MultiCloud()
        self.network = Network(self.sim, streams=self.streams)
        self.sessions = SessionTable(self.sim)
        self.topology = RegionTopology(self.sim, names)
        self.images = ImageStore()
        self.image = self.images.create(service_name, ImageKind.GENERIC,
                                        size_gb=1.0)

        self.cells: Dict[str, GeoCell] = {}
        self.ledger: Optional[CapacityLedger] = None
        self.geo_ledger: Optional[GeoLedger] = None
        self.election: Optional[LeaderElection] = None
        self.replicator: Optional[Replicator] = None
        self.failover: Optional[FailoverCoordinator] = None

        if self.single:
            self._build_single(names[0], private_vcpus, sessions_per_replica,
                               min_replicas, max_replicas, autoscale_interval,
                               health_interval, capacity, shards_per_region)
        else:
            self._build_multi(names, private_vcpus, sessions_per_replica,
                              min_replicas, max_replicas, autoscale_interval,
                              health_interval, capacity, shards_per_region,
                              election_ttl, election_check,
                              failover_interval)

        self.geo_router = GeoRouter(
            self.sim, self.topology,
            {region: cell.router for region, cell in self.cells.items()},
            spillover_depth=spillover_depth)
        if not self.single:
            for region, cell in self.cells.items():
                cell.guard = RegionGuard(self.geo_router, region)
                cell.api.guard = cell.guard
        self._started = False

    # -- single region: the classic stack, verbatim --------------------------

    def _build_single(self, region, private_vcpus, sessions_per_replica,
                      min_replicas, max_replicas, autoscale_interval,
                      health_interval, capacity, shards) -> None:
        private = OpenStackCloud(self.sim, total_vcpus=private_vcpus,
                                 streams=self.streams)
        public = AwsCloud(self.sim, streams=self.streams)
        self.multi.register_compute("private", private, region=region)
        self.multi.register_compute("public", public, region=region)
        monitor = HealthMonitor(self.sim, interval=health_interval, window=3)
        self.ledger = CapacityLedger(self.sim, capacity=capacity)
        lbs = [LoadBalancer(self.sim, self.multi, self.network, self.sessions,
                            PrivateFirstPolicy(), monitor=monitor,
                            autoscale_interval=autoscale_interval,
                            shard_id=shard, ledger=self.ledger)
               for shard in range(shards)]
        router = ShardedRouter(self.sim, lbs, ledger=self.ledger,
                               multicloud=self.multi)
        api = RestApi(self.service_name)
        api.get("/ping", lambda req, p: {"pong": True})
        service = ManagedService(
            name=self.service_name, image=self.image, flavor=MEDIUM,
            make_server=lambda inst: RestServer(self.sim, api, inst)
            .bind(self.network),
            sessions_per_replica=sessions_per_replica,
            min_replicas=min_replicas, max_replicas=max_replicas)
        # inert durability substrate (no geo processes touch it at one
        # region, and the recovery manager is not monitor-driven here —
        # exactly the classic wiring)
        store = BlobStore(self.sim, name=f"{region}-store")
        self.multi.register_blobstore("private", store, region=region)
        journals = JournalStore(self.sim, store)
        recovery = RecoveryManager(self.sim, journals)
        self.injector = FaultInjector(self.sim, [private, public],
                                      streams=self.streams,
                                      network=self.network,
                                      stores={store.name: store})
        self.injector.register_region(region, [private, public], [store])
        self.cells[region] = GeoCell(
            region=region, private=private, public=public, store=store,
            warehouse=DataWarehouse(store), journals=journals,
            monitor=monitor, recovery=recovery, lbs=lbs, router=router,
            api=api, service=service, providers=[private, public])

    # -- multi region: one cell each + the geo control plane -----------------

    def _build_multi(self, names, private_vcpus, sessions_per_replica,
                     min_replicas, max_replicas, autoscale_interval,
                     health_interval, capacity, shards,
                     election_ttl, election_check, failover_interval) -> None:
        global_capacity: Optional[Dict[str, int]] = None
        if capacity is not None:
            global_capacity = {qualify(region, location): vcpus
                               for region in names
                               for location, vcpus in capacity.items()}
        stores: Dict[str, BlobStore] = {}
        election_journals: Dict[str, JournalStore] = {}
        all_providers: List[object] = []

        for region in names:
            private = OpenStackCloud(self.sim, total_vcpus=private_vcpus,
                                     streams=self.streams,
                                     name=f"openstack-{region}")
            public = AwsCloud(self.sim, streams=self.streams,
                              name=f"aws-{region}")
            store = BlobStore(self.sim, name=f"{region}-store")
            self.multi.register_compute(qualify(region, "private"), private,
                                        region=region)
            self.multi.register_compute(qualify(region, "public"), public,
                                        region=region)
            self.multi.register_blobstore(qualify(region, "private"), store,
                                          region=region)
            stores[region] = store
            election_journals[region] = JournalStore(self.sim, store,
                                                     name="geo-election")
            all_providers.extend([private, public])
            self.cells[region] = GeoCell(
                region=region, private=private, public=public, store=store,
                warehouse=DataWarehouse(store),
                journals=JournalStore(self.sim, store),
                monitor=HealthMonitor(self.sim, interval=health_interval,
                                      window=3),
                recovery=None, lbs=[], router=None, api=None, service=None,
                providers=[private, public])

        self.election = LeaderElection(
            self.sim, self.topology, election_journals,
            ttl=election_ttl, check_interval=election_check)
        self.geo_ledger = GeoLedger(self.sim, self.election, self.topology,
                                    capacity=global_capacity)
        for region in names:
            self.geo_ledger.add_region(region)

        for region in names:
            cell = self.cells[region]
            cell.recovery = RecoveryManager(self.sim, cell.journals,
                                            monitor=cell.monitor)
            scoped = self.multi.scoped(region)
            handle = self.geo_ledger.handle(region)
            cell.lbs = [LoadBalancer(self.sim, scoped, self.network,
                                     self.sessions, PrivateFirstPolicy(),
                                     monitor=cell.monitor,
                                     autoscale_interval=autoscale_interval,
                                     shard_id=shard, ledger=handle)
                        for shard in range(shards)]
            cell.router = ShardedRouter(self.sim, cell.lbs, ledger=handle,
                                        multicloud=scoped)
            cell.api = RestApi(self.service_name)
            cell.api.get("/ping", lambda req, p: {"pong": True})
            cell.service = ManagedService(
                name=self.service_name, image=self.image, flavor=MEDIUM,
                make_server=self._server_factory(cell),
                sessions_per_replica=sessions_per_replica,
                min_replicas=min_replicas, max_replicas=max_replicas)

        self.replicator = Replicator(self.sim, self.topology,
                                     interval=self.replication_interval)
        for region in names:
            self.replicator.add_site(region, stores[region])
        for container in (DataWarehouse.CONTAINER, "run-journals",
                          "run-journals-payloads"):
            self.replicator.replicate(container)

        self.failover = FailoverCoordinator(self.sim, self.topology,
                                            None, self.sessions,
                                            check_interval=failover_interval)
        for region in names:
            cell = self.cells[region]
            self.failover.add_region(region, cell.monitor, cell.providers,
                                     cell.store, recovery=cell.recovery)
        self.injector = FaultInjector(self.sim, all_providers,
                                      streams=self.streams,
                                      network=self.network)
        for region in names:
            self.injector.register_region(
                region, self.cells[region].providers, [stores[region]])

    def _server_factory(self, cell: GeoCell):
        return lambda inst: RestServer(self.sim, cell.api, inst) \
            .bind(self.network)

    # -- lifecycle -----------------------------------------------------------

    def manage(self, initial_replicas: Optional[int] = None) -> "GeoEstate":
        """Put every region's service under router management."""
        for cell in self.cells.values():
            cell.router.manage(cell.service, initial_replicas)
        return self

    def start(self) -> "GeoEstate":
        """Start the geo control-plane processes (no-op at one region)."""
        if self._started or self.single:
            return self
        self._started = True
        self.failover.georouter = self.geo_router
        self.election.start()
        self.replicator.start()
        self.failover.start()
        return self

    def warm(self, until: float = 300.0,
             initial_replicas: Optional[int] = None) -> "GeoEstate":
        """Manage, start and run until every region serves."""
        self.manage(initial_replicas)
        self.start()
        self.sim.run(until=until)
        return self

    # -- traffic -------------------------------------------------------------

    def submit(self, user_name: str, origin: Optional[str] = None,
               priority: PriorityClass = PriorityClass.INTERACTIVE):
        """Create a session and route it; returns the session."""
        session = self.sessions.create(user_name)
        self.geo_router.submit_session(session, self.service_name,
                                       priority=priority, origin=origin)
        return session

    def regions(self) -> List[str]:
        """The estate's regions in ring order."""
        return self.topology.regions()

"""Leases-based leader election across regional journals.

The geo capacity ledger needs exactly one decision-maker at a time.
Rather than invent a consensus protocol, the election reuses the
``repro.durable`` lease primitive: every region's
:class:`~repro.durable.journal.JournalStore` holds an election journal
(run id ``geo/<cluster>``) and the coordinator writes the same
``LEASE`` record into every reachable region's copy.  The *merged*
view — the lease with the highest ``(epoch, expires)`` across
reachable journals — is the cluster's truth, so a candidate campaigning
while the old leader's lease is still live anywhere is refused by the
journal's own :class:`~repro.durable.journal.LeaseError` rules.

Fencing: every successful campaign advances a monotonic **term**
(never below any journal epoch it acquired).  Ledger writes carry the
term they were issued under; a leader that lost its region keeps its
old term, and its in-flight decisions are rejected (see
:class:`~repro.geo.ledger.GeoLedger`).

Bounded re-election: the leader renews at half-TTL; after a leader
region dies, its last renewal expires within ``ttl``, the takeover
grace adds :data:`ELECTION_GRACE`, and the next coordinator check
(every ``check_interval``) elects a survivor — so re-election lands
within ``ttl + ELECTION_GRACE + check_interval`` of the loss.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.cloud.errors import StorageUnavailable
from repro.durable.journal import JournalStore, LeaseError, LeaseState, RunJournal
from repro.geo.topology import RegionStatus, RegionTopology
from repro.obs.hub import obs_of
from repro.sim import Simulator

#: Seconds past lease expiry before a takeover campaign starts (the
#: same idea as recovery's LEASE_GRACE: absorb clock-edge races).
ELECTION_GRACE = 0.5


class LeaderElection:
    """Elects one leader region via replicated journal leases."""

    def __init__(self, sim: Simulator, topology: RegionTopology,
                 journals: Dict[str, JournalStore],
                 cluster: str = "capacity-ledger",
                 ttl: float = 10.0, check_interval: float = 1.0):
        self.sim = sim
        self.topology = topology
        self.cluster = cluster
        self.ttl = ttl
        self.check_interval = check_interval
        self._journals: Dict[str, RunJournal] = {
            region: store.open_or_create(f"geo/{cluster}")
            for region, store in journals.items()}
        #: the monotonic fencing token ledger writes carry
        self.term = 0
        self.leader_region: Optional[str] = None
        #: (time, leader, term) per successful campaign
        self.elections: List[Tuple[float, str, int]] = []
        self._callbacks: List[Callable[[str, int], None]] = []
        self._started = False

    # -- wiring --------------------------------------------------------------

    def on_elected(self, callback: Callable[[str, int], None]) -> None:
        """Call ``callback(leader, term)`` after every campaign."""
        self._callbacks.append(callback)

    def start(self) -> "LeaderElection":
        """Run the first campaign now and keep checking forever."""
        if self._started:
            return self
        self._started = True
        self.step()

        def coordinator():
            while True:
                yield self.check_interval
                self.step()

        self.sim.spawn(coordinator(), name="geo-election")
        return self

    @property
    def reelection_bound(self) -> float:
        """Worst-case seconds from leader-region loss to a new leader."""
        return self.ttl + ELECTION_GRACE + self.check_interval

    # -- queries -------------------------------------------------------------

    def leader(self) -> Optional[str]:
        """The region holding a live lease right now (or ``None``).

        A holder whose region is DOWN does not count: it cannot be
        exercising leadership, and treating its grant as void the
        moment the verdict lands shrinks the split-brain surface to
        zero — at the price of refusing admissions until the lease
        lapses and a survivor campaigns.
        """
        lease = self._merged_lease()
        if lease is not None and lease.held_at(self.sim.now) \
                and self.topology.status(lease.owner) is not RegionStatus.DOWN:
            return lease.owner
        return None

    def _merged_lease(self) -> Optional[LeaseState]:
        best: Optional[LeaseState] = None
        for _, journal in self._reachable():
            try:
                lease = journal.lease()
            except StorageUnavailable:
                continue
            if lease is None:
                continue
            if best is None or (lease.epoch, lease.expires) > \
                    (best.epoch, best.expires):
                best = lease
        return best

    def _reachable(self) -> List[Tuple[str, RunJournal]]:
        return [(region, journal)
                for region, journal in self._journals.items()
                if self.topology.status(region) is not RegionStatus.DOWN]

    # -- the coordinator step ------------------------------------------------

    def step(self) -> Optional[str]:
        """One election check; returns the current leader (or None)."""
        now = self.sim.now
        lease = self._merged_lease()
        if lease is not None and lease.held_at(now):
            holder = lease.owner
            if self.topology.status(holder) is RegionStatus.DOWN:
                # the lease must lapse before anyone may take over —
                # this wait is exactly what bounds the no-leader window
                self.leader_region = None
                return None
            self.leader_region = holder
            if lease.expires - now <= self.ttl / 2.0:
                self._renew(holder)
            return holder
        if lease is not None and now < lease.expires + ELECTION_GRACE:
            self.leader_region = None
            return None
        candidate = self.topology.nearest_available()
        if candidate is None:
            self.leader_region = None
            return None
        return self._campaign(candidate)

    def _campaign(self, candidate: str) -> Optional[str]:
        epochs: List[int] = []
        for _, journal in self._reachable():
            try:
                epochs.append(journal.acquire(candidate, self.ttl))
            except (LeaseError, StorageUnavailable):
                continue
        if not epochs:
            self.leader_region = None
            return None
        self.term = max(self.term + 1, max(epochs))
        self.leader_region = candidate
        self.elections.append((self.sim.now, candidate, self.term))
        obs_of(self.sim).events.emit("geo.leader.elected",
                                     cluster=self.cluster, leader=candidate,
                                     term=self.term)
        for callback in self._callbacks:
            callback(candidate, self.term)
        return candidate

    def _renew(self, holder: str) -> None:
        for _, journal in self._reachable():
            try:
                journal.renew(holder, self.ttl)
            except LeaseError:
                # a healed region's journal still shows a stale owner;
                # its lease there has expired, so re-acquiring converges
                # the site without disturbing the cluster term
                try:
                    journal.acquire(holder, self.ttl)
                except (LeaseError, StorageUnavailable):
                    continue
            except StorageUnavailable:
                continue

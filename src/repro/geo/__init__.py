"""repro.geo — the geo-distributed estate.

Runs the full stack across 2–3 simulated regions with any single
region expendable:

* :mod:`repro.geo.topology` — the shared region map: status verdicts,
  ring-ordered proximity, transition history.
* :mod:`repro.geo.replication` — async blob/warehouse replication on
  the journal substrate, vector-versioned, with measurable lag
  (the RPO knob).
* :mod:`repro.geo.election` — leases-based leader election on the
  durable journal lease protocol; monotonic terms are the fencing
  tokens.
* :mod:`repro.geo.ledger` — the replicated
  :class:`~repro.sched.ledger.CapacityLedger`: leader-only admission,
  fan-out facts, fenced stale grants, never a double-commit.
* :mod:`repro.geo.routing` — nearest-healthy sticky session routing
  with brownout spillover, plus the RFC-7807 ``503`` region guard.
* :mod:`repro.geo.failover` — whole-region verdicts, session
  evacuation, durable-run re-adoption, measured RTO.
* :mod:`repro.geo.estate` — the builder that wires it all, with
  ``regions=1`` bit-identical to the classic single-region stack.
"""

from repro.geo.election import ELECTION_GRACE, LeaderElection
from repro.geo.estate import REGIONS, GeoCell, GeoEstate
from repro.geo.failover import FailoverCoordinator, FailoverReport
from repro.geo.ledger import GeoLedger, RegionLedgerHandle
from repro.geo.replication import Replicator, ShippedRecord, VersionVector
from repro.geo.routing import GeoRouter, RegionGuard
from repro.geo.topology import (
    RegionStatus,
    RegionTopology,
    RegionTransition,
    qualify,
)

__all__ = [
    "ELECTION_GRACE",
    "FailoverCoordinator",
    "FailoverReport",
    "GeoCell",
    "GeoEstate",
    "GeoLedger",
    "GeoRouter",
    "LeaderElection",
    "REGIONS",
    "RegionGuard",
    "RegionLedgerHandle",
    "RegionStatus",
    "RegionTopology",
    "RegionTransition",
    "Replicator",
    "ShippedRecord",
    "VersionVector",
    "qualify",
]

"""Asynchronous cross-region blob replication with version vectors.

Each region owns a full :class:`~repro.cloud.storage.BlobStore`; the
:class:`Replicator` sweeps the replicated containers on a fixed
interval and ships changed blobs between regions.  Causality is
tracked per key with a :class:`VersionVector`: a write that descends
everything the other regions have is shipped as-is; concurrent writes
(both regions wrote since they last converged) are a *conflict*,
resolved deterministically (a registered per-container merge hook, or
last-writer-wins on ``(created_at, region)``) so every region
converges on the same blob.

The sweep interval is the estate's RPO knob: a write acknowledged more
than one interval before a region is lost has been shipped to the
survivors.  Replication lag is measured per shipped blob (origin write
time to arrival at the last surviving site) so the bench can check the
bound rather than assert it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.cloud.errors import StorageUnavailable
from repro.cloud.storage import Blob, BlobStore
from repro.geo.topology import RegionStatus, RegionTopology
from repro.obs.hub import obs_of
from repro.sim import Simulator


@dataclass(frozen=True)
class VersionVector:
    """A per-region write counter: the causal history of one key.

    Immutable and hashable; stored as sorted ``(region, count)`` pairs
    so equal histories compare equal regardless of insertion order.
    """

    counts: Tuple[Tuple[str, int], ...] = ()

    @classmethod
    def of(cls, mapping: Dict[str, int]) -> "VersionVector":
        """Build from a region→count mapping (zero counts dropped)."""
        return cls(tuple(sorted((r, c) for r, c in mapping.items() if c)))

    def to_dict(self) -> Dict[str, int]:
        """The region→count mapping (a copy)."""
        return dict(self.counts)

    def get(self, region: str) -> int:
        """The write count attributed to ``region``."""
        return dict(self.counts).get(region, 0)

    def increment(self, region: str) -> "VersionVector":
        """A new vector with one more write at ``region``."""
        counts = self.to_dict()
        counts[region] = counts.get(region, 0) + 1
        return VersionVector.of(counts)

    def merge(self, other: "VersionVector") -> "VersionVector":
        """The pointwise maximum: the join of both histories."""
        counts = self.to_dict()
        for region, count in other.counts:
            counts[region] = max(counts.get(region, 0), count)
        return VersionVector.of(counts)

    def descends(self, other: "VersionVector") -> bool:
        """Whether this history contains everything in ``other``."""
        mine = self.to_dict()
        return all(mine.get(region, 0) >= count
                   for region, count in other.counts)

    def concurrent(self, other: "VersionVector") -> bool:
        """Whether neither history contains the other (a conflict)."""
        return not self.descends(other) and not other.descends(self)


@dataclass(frozen=True)
class ShippedRecord:
    """One replicated blob application (for lag accounting)."""

    time: float
    container: str
    key: str
    source: str
    target: str
    lag: float


class Replicator:
    """Ships versioned blobs between regional stores.

    ``add_site`` attaches one store per region; ``replicate`` names the
    containers to sweep.  Detection is etag-based: a blob whose etag
    differs from what the replicator last saw at that site is a new
    local write and bumps the site's component of the key's version
    vector.  Sites whose region is DOWN (or whose store raises
    :class:`StorageUnavailable`) are skipped and catch up on the first
    sweep after they heal.
    """

    def __init__(self, sim: Simulator, topology: RegionTopology,
                 interval: float = 5.0, metrics=None):
        self.sim = sim
        self.topology = topology
        self.interval = interval
        self.metrics = metrics
        self._sites: Dict[str, BlobStore] = {}
        self._containers: List[str] = []
        self._mergers: Dict[str, Callable[[Blob, Blob], object]] = {}
        #: (region, container, key) → etag last seen/applied there
        self._seen: Dict[Tuple[str, str, str], str] = {}
        #: (region, container, key) → that site's version vector
        self._versions: Dict[Tuple[str, str, str], VersionVector] = {}
        self.shipped: List[ShippedRecord] = []
        self.conflicts = 0
        self.sweeps = 0
        self._started = False

    # -- wiring --------------------------------------------------------------

    def add_site(self, region: str, store: BlobStore) -> None:
        """Attach ``region``'s blob store."""
        if region not in self.topology.regions():
            raise ValueError(f"region {region!r} not in topology")
        if region in self._sites:
            raise ValueError(f"region {region!r} already has a site")
        self._sites[region] = store

    def replicate(self, container: str) -> None:
        """Add a container (by name) to the replication set."""
        if container not in self._containers:
            self._containers.append(container)

    def register_merge(self, container: str,
                       merge: Callable[[Blob, Blob], object]) -> None:
        """Resolve this container's conflicts with ``merge(a, b)``.

        The callable receives the two conflicting blobs and returns the
        merged *payload*; without a hook, last-writer-wins applies.
        """
        self._mergers[container] = merge

    def start(self) -> "Replicator":
        """Begin sweeping every ``interval`` seconds."""
        if self._started:
            return self
        self._started = True

        def pump():
            while True:
                yield self.interval
                self.sweep()

        self.sim.spawn(pump(), name="geo-replicator")
        return self

    # -- lag accounting ------------------------------------------------------

    def max_lag(self) -> float:
        """The worst origin-write-to-arrival lag shipped so far."""
        return max((r.lag for r in self.shipped), default=0.0)

    # -- the sweep -----------------------------------------------------------

    def sweep(self) -> int:
        """One replication round; returns blobs shipped."""
        self.sweeps += 1
        live = self._live_sites()
        for region in live:
            self._absorb_local_writes(region)
        shipped = 0
        for container in self._containers:
            shipped += self._converge_container(container, live)
        if self.metrics is not None:
            self.metrics.counter("sweeps").increment()
        return shipped

    def _live_sites(self) -> List[str]:
        live = []
        for region in self.topology.regions():
            store = self._sites.get(region)
            if store is None or store.faulted:
                continue
            if self.topology.status(region) is RegionStatus.DOWN:
                continue
            live.append(region)
        return live

    def _absorb_local_writes(self, region: str) -> None:
        """Bump version vectors for writes made at ``region`` directly."""
        store = self._sites[region]
        for cname in self._containers:
            try:
                container = store.create_container(cname)
                for key in container.list():
                    etag = container.get(key).etag
                    site_key = (region, cname, key)
                    if self._seen.get(site_key) == etag:
                        continue
                    base = self._versions.get(site_key, VersionVector())
                    self._versions[site_key] = base.increment(region)
                    self._seen[site_key] = etag
            except StorageUnavailable:
                return

    def _converge_container(self, cname: str, live: List[str]) -> int:
        keys = set()
        for region in live:
            keys.update(key for (r, c, key) in self._versions
                        if r == region and c == cname)
        shipped = 0
        for key in sorted(keys):
            shipped += self._converge_key(cname, key, live)
        return shipped

    def _converge_key(self, cname: str, key: str, live: List[str]) -> int:
        held = {region: self._versions[(region, cname, key)]
                for region in live
                if (region, cname, key) in self._versions}
        if not held:
            return 0
        winner, target = self._elect_version(cname, key, held)
        if winner is None:
            return 0
        try:
            blob = self._sites[winner].create_container(cname).get(key)
        except StorageUnavailable:
            return 0
        shipped = 0
        for region in live:
            if region == winner or held.get(region) == target:
                continue
            if self._apply(winner, region, cname, key, blob, target):
                shipped += 1
        # the winner's own history may widen after a conflict merge
        if held.get(winner) != target:
            self._versions[(winner, cname, key)] = target
        return shipped

    def _elect_version(self, cname: str, key: str,
                       held: Dict[str, VersionVector]):
        """Pick the version every site should converge to.

        Returns ``(source_region, target_vector)``; a dominant history
        wins outright, otherwise the conflict is resolved and the
        target becomes the merge of every history.
        """
        for region, vector in held.items():
            if all(vector.descends(other) for other in held.values()):
                return region, vector
        winner = self._resolve_conflict(cname, key, held)
        merged = VersionVector()
        for vector in held.values():
            merged = merged.merge(vector)
        return winner, merged

    def _resolve_conflict(self, cname: str, key: str,
                          held: Dict[str, VersionVector]) -> Optional[str]:
        blobs: Dict[str, Blob] = {}
        for region in held:
            try:
                blobs[region] = \
                    self._sites[region].create_container(cname).get(key)
            except StorageUnavailable:
                continue
        if not blobs:
            return None
        self.conflicts += 1
        if self.metrics is not None:
            self.metrics.counter("conflicts").increment()
        merge = self._mergers.get(cname)
        # deterministic tiebreak: newest write wins, region name breaks
        # simultaneous writes
        winner = max(blobs, key=lambda r: (blobs[r].created_at, r))
        if merge is not None:
            merged = blobs[winner]
            for region in sorted(blobs):
                if region == winner:
                    continue
                payload = merge(merged, blobs[region])
                merged = self._sites[winner].create_container(cname).put(
                    key, payload, metadata=dict(merged.metadata))
            self._seen[(winner, cname, key)] = merged.etag
        obs_of(self.sim).events.emit("geo.replicate.conflict",
                                     container=cname, key=key,
                                     winner=winner,
                                     contenders=sorted(blobs))
        return winner

    def _apply(self, source: str, region: str, cname: str, key: str,
               blob: Blob, target: VersionVector) -> bool:
        try:
            container = self._sites[region].create_container(cname)
            applied = container.put(key, blob.payload,
                                    metadata=dict(blob.metadata))
        except StorageUnavailable:
            return False
        site_key = (region, cname, key)
        self._seen[site_key] = applied.etag
        self._versions[site_key] = target
        lag = max(0.0, self.sim.now - blob.created_at)
        self.shipped.append(ShippedRecord(
            time=self.sim.now, container=cname, key=key,
            source=source, target=region, lag=lag))
        if self.metrics is not None:
            self.metrics.counter("shipped").increment()
        obs_of(self.sim).events.emit("geo.replicate.shipped",
                                     container=cname, key=key,
                                     target=region, lag=round(lag, 3))
        return True

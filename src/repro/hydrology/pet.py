"""Potential evapotranspiration (PET) estimators.

Rainfall-runoff models need an evaporative demand series.  Two
temperature-based formulations are implemented — both standard choices
for UK catchments where radiation data are scarce:

* **Oudin** (Oudin et al. 2005): PET = Re/(λρ) · (T+5)/100 for T > −5 °C,
  with extraterrestrial radiation Re computed from latitude and day of
  year.
* **Hamon** (Hamon 1961): PET from daylight hours and saturation vapour
  density.

Both return daily PET in mm/day; callers divide across sub-daily steps.
"""

from __future__ import annotations

import math
from typing import List, Sequence

#: Latent heat of vaporisation divided by water density, MJ·m⁻²·mm⁻¹.
_LAMBDA_RHO = 2.45


def extraterrestrial_radiation(latitude_deg: float, day_of_year: int) -> float:
    """Daily extraterrestrial radiation Re in MJ·m⁻²·day⁻¹ (FAO-56 eq. 21)."""
    phi = math.radians(latitude_deg)
    dr = 1.0 + 0.033 * math.cos(2 * math.pi * day_of_year / 365.0)
    delta = 0.409 * math.sin(2 * math.pi * day_of_year / 365.0 - 1.39)
    x = -math.tan(phi) * math.tan(delta)
    x = min(1.0, max(-1.0, x))
    omega = math.acos(x)
    gsc = 0.0820  # solar constant, MJ·m⁻²·min⁻¹
    return (24 * 60 / math.pi) * gsc * dr * (
        omega * math.sin(phi) * math.sin(delta)
        + math.cos(phi) * math.cos(delta) * math.sin(omega))


def daylight_hours(latitude_deg: float, day_of_year: int) -> float:
    """Hours of daylight (FAO-56 eq. 34)."""
    phi = math.radians(latitude_deg)
    delta = 0.409 * math.sin(2 * math.pi * day_of_year / 365.0 - 1.39)
    x = -math.tan(phi) * math.tan(delta)
    x = min(1.0, max(-1.0, x))
    return 24.0 / math.pi * math.acos(x)


def oudin_pet(temperature_c: Sequence[float], latitude_deg: float,
              first_day_of_year: int = 1) -> List[float]:
    """Daily Oudin PET (mm/day) from a daily mean-temperature series."""
    pet = []
    for i, temp in enumerate(temperature_c):
        doy = (first_day_of_year - 1 + i) % 365 + 1
        if temp > -5.0:
            re = extraterrestrial_radiation(latitude_deg, doy)
            pet.append(max(0.0, re / _LAMBDA_RHO * (temp + 5.0) / 100.0))
        else:
            pet.append(0.0)
    return pet


def hamon_pet(temperature_c: Sequence[float], latitude_deg: float,
              first_day_of_year: int = 1) -> List[float]:
    """Daily Hamon PET (mm/day) from a daily mean-temperature series."""
    pet = []
    for i, temp in enumerate(temperature_c):
        doy = (first_day_of_year - 1 + i) % 365 + 1
        daylight = daylight_hours(latitude_deg, doy)
        # saturation vapour pressure (kPa), Tetens
        esat = 0.6108 * math.exp(17.27 * temp / (temp + 237.3))
        # saturated vapour density, g/m^3
        rho_sat = 216.7 * esat / (temp + 273.3)
        pet.append(max(0.0, 0.1651 * (daylight / 12.0) * rho_sat))
    return pet

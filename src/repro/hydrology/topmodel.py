"""TOPMODEL — the topographic-index rainfall-runoff model.

A from-scratch implementation of the classic saturation-excess model
(Beven & Kirkby 1979; structure follows the canonical TMOD9502 code):

* the catchment is summarised by the distribution of the topographic
  index TI = ln(a / tanβ);
* the local saturation deficit of index class *i* is
  ``S_i = S̄ + m (λ − TI_i)`` where ``λ`` is the areal mean TI;
* classes with ``S_i ≤ 0`` are saturated: rain on them runs off
  directly (plus return flow), which is how topography creates the
  variable contributing area;
* baseflow is ``Q_b = SZQ · exp(−S̄/m)`` with ``SZQ = exp(t0 − λ)``;
* the unsaturated zone drains to the water table at
  ``S_uz / (S_i · t_d)``;
* runoff is routed through a pure channel delay plus a linear
  reservoir.

Units: depths in mm, time in steps of ``dt_hours``; transmissivity
parameter ``t0 = ln(T0)`` with T0 in m²/h.

The step loop is the hottest code in the repository — every calibration,
sensitivity sweep, GLUE ensemble and WPS Execute funnels through it — so
it is written for CPython speed without changing a single bit of the
output: per-class constants (the ``m·(λ − TI_i)`` deficit offsets, SZQ,
the class area fractions) are computed once per parameter set, the inner
loop touches only local names and pre-sanitised forcing lists, and batch
evaluation of many parameter sets over one forcing reuses the prepared
arrays via :class:`PreparedForcing` / :meth:`Topmodel.run_batch`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hydrology.timeseries import TimeSeries


@dataclass(frozen=True)
class TopmodelParameters:
    """Calibratable TOPMODEL parameters.

    ``m`` — exponential transmissivity decay (mm); small m = flashy.
    ``t0`` — ln of areal transmissivity (ln(m²/h)).
    ``srmax`` — root-zone available water capacity (mm).
    ``sr0`` — initial root-zone deficit as a fraction of srmax.
    ``td`` — unsaturated-zone time delay (h/mm of deficit).
    ``q0_mm_h`` — baseflow at t=0; sets the antecedent wetness (the
    water table starts at the deficit producing this discharge).
    ``channel_delay_hours`` — pure advection delay to the outlet.
    ``reservoir_k`` — linear-reservoir release fraction per hour (0-1].
    ``interception_mm`` — canopy interception depth removed per wet step.
    ``infiltration_capacity_mm_h`` — Hortonian cap; rain above it runs
    off regardless of saturation (how soil compaction scenarios raise
    flood peaks).
    """

    m: float = 15.0
    t0: float = 1.2
    srmax: float = 25.0
    sr0: float = 0.1
    td: float = 0.5
    q0_mm_h: float = 0.15
    channel_delay_hours: float = 2.0
    reservoir_k: float = 0.35
    interception_mm: float = 0.0
    infiltration_capacity_mm_h: float = 50.0

    #: Inclusive calibration ranges used by Monte Carlo samplers.
    RANGES = {
        "m": (5.0, 60.0),
        "t0": (-2.0, 4.0),
        "srmax": (5.0, 80.0),
        "sr0": (0.0, 0.8),
        "td": (0.1, 5.0),
        "q0_mm_h": (0.02, 1.0),
        "reservoir_k": (0.05, 0.9),
    }

    def validated(self) -> "TopmodelParameters":
        """Raise ValueError on physically meaningless values."""
        if self.m <= 0:
            raise ValueError("m must be positive")
        if self.srmax <= 0:
            raise ValueError("srmax must be positive")
        if not 0 <= self.sr0 <= 1:
            raise ValueError("sr0 is a fraction of srmax")
        if self.td <= 0:
            raise ValueError("td must be positive")
        if self.q0_mm_h <= 0:
            raise ValueError("q0_mm_h must be positive")
        if not 0 < self.reservoir_k <= 1:
            raise ValueError("reservoir_k in (0, 1]")
        if self.interception_mm < 0:
            raise ValueError("interception_mm must be non-negative")
        if self.infiltration_capacity_mm_h <= 0:
            raise ValueError("infiltration capacity must be positive")
        return self

    def with_updates(self, **kwargs) -> "TopmodelParameters":
        """A copy with some fields replaced."""
        return replace(self, **kwargs).validated()


@dataclass
class TopmodelResult:
    """Everything a TOPMODEL run produces."""

    flow: TimeSeries                 # total runoff at the outlet, mm/step
    baseflow: TimeSeries
    overland: TimeSeries
    saturated_fraction: TimeSeries   # contributing-area fraction
    actual_et: TimeSeries
    final_deficit_mm: float
    water_balance_error_mm: float

    def discharge_m3s(self, area_km2: float) -> TimeSeries:
        """Convert outlet runoff (mm/step) to discharge in m³/s."""
        factor = area_km2 * 1e6 * 1e-3 / (self.flow.dt)
        return self.flow.map(lambda v: v * factor)


@dataclass(frozen=True)
class PreparedForcing:
    """Forcing sanitised once, reusable across many parameter sets.

    ``rain`` has NaNs zeroed and negatives clamped; ``pet`` has
    negatives clamped (or is ``None``).  Preparing is O(n) and the step
    loop is O(n·classes), so a batch of P parameter sets over one
    forcing saves P−1 sanitisation passes plus all the per-run
    length/alignment checks.
    """

    start: float
    dt: float
    rain: Tuple[float, ...]
    pet: Optional[Tuple[float, ...]]

    @property
    def n(self) -> int:
        """Number of timesteps."""
        return len(self.rain)


class Topmodel:
    """TOPMODEL bound to one topographic-index distribution.

    ``ti_distribution`` is a sequence of ``(ti_value, area_fraction)``
    pairs; fractions must sum to ~1.
    """

    def __init__(self, ti_distribution: Sequence[Tuple[float, float]],
                 dt_hours: float = 1.0):
        if not ti_distribution:
            raise ValueError("empty topographic index distribution")
        total = sum(frac for _ti, frac in ti_distribution)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"TI fractions sum to {total}, expected 1")
        if dt_hours <= 0:
            raise ValueError("dt_hours must be positive")
        self.ti = [(float(t), float(f)) for t, f in ti_distribution]
        self.dt_hours = dt_hours
        self.lam = sum(t * f for t, f in self.ti)  # areal mean TI
        # per-class vectors the step loop indexes instead of unpacking
        # (ti_value, fraction) tuples on every iteration
        self._tis = [t for t, _f in self.ti]
        self._fractions = [f for _t, f in self.ti]

    def prepare(self, rainfall: TimeSeries,
                pet: Optional[TimeSeries] = None) -> PreparedForcing:
        """Sanitise forcing once for reuse across parameter sets."""
        if pet is not None and len(pet) != len(rainfall):
            raise ValueError("PET series must match rainfall length")
        isnan = math.isnan
        rain = tuple(0.0 if isnan(v) else (v if v > 0.0 else 0.0)
                     for v in rainfall)
        pet_clean = None if pet is None else tuple(
            v if v > 0.0 else 0.0 for v in pet)
        return PreparedForcing(start=rainfall.start, dt=rainfall.dt,
                               rain=rain, pet=pet_clean)

    def run(self, rainfall: TimeSeries, pet: Optional[TimeSeries] = None,
            parameters: Optional[TopmodelParameters] = None) -> TopmodelResult:
        """Simulate the rainfall series; returns a :class:`TopmodelResult`.

        ``rainfall`` in mm/step; ``pet`` (optional) in mm/step aligned
        with the rainfall series.
        """
        return self.run_prepared(self.prepare(rainfall, pet), parameters)

    def run_batch(self, rainfall: TimeSeries,
                  parameter_sets: Sequence[TopmodelParameters],
                  pet: Optional[TimeSeries] = None) -> List[TopmodelResult]:
        """Run many parameter sets over one forcing, preparing it once.

        Results are identical to calling :meth:`run` per set; the batch
        form is what ensemble workloads (calibration, GLUE, OAT sweeps)
        should use.
        """
        forcing = self.prepare(rainfall, pet)
        return [self.run_prepared(forcing, p) for p in parameter_sets]

    def run_batch_vectorized(self, rainfall: TimeSeries,
                             parameter_sets: Sequence[TopmodelParameters],
                             pet: Optional[TimeSeries] = None
                             ) -> List[TopmodelResult]:
        """Structure-of-arrays batch: the whole ensemble per timestep.

        Delegates to :func:`repro.hydrology.vectorized.run_batch_vectorized`,
        which lays state out as ``(n_parameter_sets, n_ti_classes)`` NumPy
        arrays and advances every parameter set with one sequence of
        array ops per step.  Agrees with :meth:`run_batch` within the
        documented ulp bound
        (:data:`~repro.hydrology.vectorized.VECTOR_REL_BOUND`); without
        NumPy it *is* :meth:`run_batch`, bit for bit.
        """
        from repro.hydrology.vectorized import run_batch_vectorized
        return run_batch_vectorized(self, self.prepare(rainfall, pet),
                                    parameter_sets)

    def run_prepared(self, forcing: PreparedForcing,
                     parameters: Optional[TopmodelParameters] = None
                     ) -> TopmodelResult:
        """The step loop over pre-sanitised forcing.

        Bit-for-bit equivalent to the original per-step formulation: the
        floating-point evaluation order of every accumulation is
        preserved, only attribute lookups and per-iteration allocations
        were hoisted out of the loop.
        """
        params = (parameters or TopmodelParameters()).validated()
        dt = self.dt_hours
        n = forcing.n
        rain_list = forcing.rain
        pet_list = forcing.pet

        # loop-invariant bindings: parameter fields, class constants and
        # builtins resolved once instead of per step (or per class)
        m = params.m
        srmax = params.srmax
        td = params.td
        interception_mm = params.interception_mm
        capacity = params.infiltration_capacity_mm_h * dt
        exp = math.exp

        szq = 1000.0 * exp(params.t0 - self.lam) * dt  # mm/step
        # initialise the water table at the deficit producing the declared
        # antecedent baseflow, so the run starts near steady state
        target_baseflow = params.q0_mm_h * dt
        if szq > target_baseflow:
            mean_deficit = m * math.log(szq / target_baseflow)
        else:
            mean_deficit = 1.0
        initial_deficit = mean_deficit
        root_deficit = params.sr0 * srmax
        initial_root_store = srmax - root_deficit

        # per-class constants for this parameter set: the local deficit is
        # S̄ + m(λ − TI_k), so m(λ − TI_k) is fixed per class
        lam = self.lam
        offsets = [m * (lam - t) for t in self._tis]
        fractions = self._fractions
        suz = [0.0] * len(offsets)   # unsaturated storage per class, mm

        total_in = 0.0
        total_out = 0.0
        flow_raw: List[float] = []
        base_out: List[float] = []
        over_out: List[float] = []
        satfrac_out: List[float] = []
        aet_out: List[float] = []
        flow_app = flow_raw.append
        base_app = base_out.append
        over_app = over_out.append
        satfrac_app = satfrac_out.append
        aet_app = aet_out.append

        for step in range(n):
            rain = rain_list[step]
            pet_step = 0.0 if pet_list is None else pet_list[step]
            total_in += rain

            # canopy interception
            intercepted = min(rain, interception_mm) if rain > 0 else 0.0
            rain_ground = rain - intercepted
            total_out += intercepted

            # Hortonian infiltration excess (compacted soils)
            infiltration_excess = rain_ground - capacity
            if infiltration_excess < 0.0:
                infiltration_excess = 0.0
            infiltrating = rain_ground - infiltration_excess

            # root-zone accounting: rain fills the root-zone deficit first
            to_root = (infiltrating if infiltrating < root_deficit
                       else root_deficit)
            root_deficit -= to_root
            drainage = infiltrating - to_root  # reaches the unsaturated zone

            # actual ET draws the root zone down
            aet = pet_step * max(0.0, 1.0 - root_deficit / srmax)
            aet = min(aet, srmax - root_deficit)
            root_deficit = min(srmax, root_deficit + aet)
            total_out += aet

            overland = infiltration_excess
            recharge = 0.0
            return_flow = 0.0
            saturated_area = 0.0

            k = 0
            for offset in offsets:
                local_deficit = mean_deficit + offset
                if local_deficit <= 0.0:
                    # saturated class: drainage and stored unsaturated
                    # water run straight off; the storage excess above
                    # saturation exfiltrates as return flow
                    fraction = fractions[k]
                    saturated_area += fraction
                    overland += fraction * (drainage + suz[k])
                    return_flow += fraction * (-local_deficit)
                    suz[k] = 0.0
                else:
                    # unsaturated drainage toward the water table
                    stored = suz[k] + drainage
                    flux = stored / (local_deficit * td) * dt
                    if flux > stored:
                        flux = stored
                    suz[k] = stored - flux
                    recharge += fractions[k] * flux
                k += 1

            overland += return_flow
            baseflow = szq * exp(-mean_deficit / m)
            # baseflow and return flow empty the saturated store (deficit
            # grows); recharge refills it; if recharge overfills the store
            # the excess exfiltrates rather than being lost
            new_deficit = mean_deficit + baseflow + return_flow - recharge
            if new_deficit < 0.0:
                overland += -new_deficit
                new_deficit = 0.0
            mean_deficit = new_deficit

            flow_app(baseflow + overland)
            base_app(baseflow)
            over_app(overland)
            satfrac_app(saturated_area)
            aet_app(aet)
            total_out += baseflow + overland

        routed = self._route(flow_raw, params)
        start, series_dt = forcing.start, forcing.dt
        # water balance over the runoff-generation stage (routing holds a
        # small residual in the channel store, excluded by design):
        # in = out + Δ(unsaturated) + Δ(root zone) − Δ(deficit)
        suz_store = sum(frac * suz[k]
                        for k, frac in enumerate(fractions))
        root_store = srmax - root_deficit
        storage_change = (suz_store
                          + (root_store - initial_root_store)
                          - (mean_deficit - initial_deficit))
        balance_error = total_in - total_out - storage_change

        def ts(values, name):
            return TimeSeries(start, series_dt, values, units="mm/step",
                              name=name)

        return TopmodelResult(
            flow=ts(routed, "flow"),
            baseflow=ts(base_out, "baseflow"),
            overland=ts(over_out, "overland"),
            saturated_fraction=TimeSeries(start, series_dt, satfrac_out,
                                          units="fraction",
                                          name="saturated_fraction"),
            actual_et=ts(aet_out, "actual_et"),
            final_deficit_mm=mean_deficit,
            water_balance_error_mm=balance_error,
        )

    def binned(self, classes: int) -> "Topmodel":
        """A coarser copy with the TI distribution merged into ``classes``
        area-weighted bins — an opt-in speed/accuracy trade.

        The step loop is O(n·classes), so halving the class count halves
        the hot-loop cost.  Accuracy bound: each class's TI value moves
        by at most the width of the bin it lands in, so every local
        saturation deficit ``S̄ + m(λ − TI)`` is perturbed by at most
        ``m · w`` mm, where ``w`` is the widest bin's TI spread
        (``w ≈ (max TI − min TI) / classes`` for the default smooth
        distributions).  Binned runs are NOT bit-identical to the full
        distribution; callers that need exact reproduction must use the
        original model.
        """
        if classes < 2:
            raise ValueError("need at least two classes")
        if classes >= len(self.ti):
            return Topmodel(self.ti, self.dt_hours)
        ordered = sorted(self.ti)
        lo, hi = ordered[0][0], ordered[-1][0]
        width = (hi - lo) / classes or 1.0
        sums = [0.0] * classes      # Σ ti·frac per bin
        areas = [0.0] * classes     # Σ frac per bin
        for ti_value, fraction in ordered:
            index = min(classes - 1, int((ti_value - lo) / width))
            sums[index] += ti_value * fraction
            areas[index] += fraction
        merged = [(sums[i] / areas[i], areas[i])
                  for i in range(classes) if areas[i] > 0]
        return Topmodel(merged, self.dt_hours)

    def _route(self, flow: List[float],
               params: TopmodelParameters) -> List[float]:
        """Pure delay then a linear reservoir."""
        delay_steps = int(round(params.channel_delay_hours / self.dt_hours))
        delayed = [0.0] * delay_steps + flow[:len(flow) - delay_steps] \
            if delay_steps > 0 else list(flow)
        k = min(1.0, params.reservoir_k * self.dt_hours)
        routed = []
        store = 0.0
        for q in delayed:
            store += q
            out = store * k
            store -= out
            routed.append(out)
        return routed

    @staticmethod
    def exponential_ti_distribution(mean_ti: float = 6.9, spread: float = 1.2,
                                    classes: int = 15) -> List[Tuple[float, float]]:
        """A smooth synthetic TI distribution around ``mean_ti``.

        Useful for tests and for catchments without a DEM; real
        catchments derive theirs via :mod:`repro.data.dem`.
        """
        if classes < 2:
            raise ValueError("need at least two classes")
        lo, hi = mean_ti - 2.5 * spread, mean_ti + 3.5 * spread
        step = (hi - lo) / (classes - 1)
        tis = [lo + i * step for i in range(classes)]
        weights = [math.exp(-((t - mean_ti) ** 2) / (2 * spread ** 2))
                   for t in tis]
        total = sum(weights)
        return [(t, w / total) for t, w in zip(tis, weights)]

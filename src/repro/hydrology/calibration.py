"""Monte Carlo calibration — the 'offline calibration' of Section IV-D.

"Model calibration was carried out offline to ensure that input data and
parameters were in the correct format and the model could adequately
reproduce observed discharge at the outlet of the catchment."

The calibrator samples parameter sets uniformly from declared ranges,
scores each against observations (NSE by default), and reports the best
set plus the behavioural population (the input GLUE consumes).  It is
deliberately model-agnostic: anything exposing
``run_with(params_dict) -> simulated_values`` can be calibrated, which
is how both TOPMODEL and FUSE share it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.hydrology.metrics import nash_sutcliffe_efficiency
from repro.perf.runner import CAPTURED_ERRORS, EnsembleRunner, RunFailure


@dataclass
class CalibrationSample:
    """One sampled parameter set with its score."""

    parameters: Dict[str, float]
    score: float


@dataclass
class CalibrationResult:
    """Outcome of a Monte Carlo calibration."""

    samples: List[CalibrationSample]
    behavioural_threshold: float

    @property
    def best(self) -> CalibrationSample:
        """The highest-scoring sample."""
        return max(self.samples, key=lambda s: s.score)

    @property
    def behavioural(self) -> List[CalibrationSample]:
        """Samples at or above the behavioural threshold."""
        return [s for s in self.samples
                if s.score >= self.behavioural_threshold]

    def acceptance_rate(self) -> float:
        """Fraction of samples that are behavioural."""
        if not self.samples:
            return 0.0
        return len(self.behavioural) / len(self.samples)

    def parameter_bounds(self, name: str) -> Tuple[float, float]:
        """Min/max of a parameter over the behavioural set."""
        values = [s.parameters[name] for s in self.behavioural]
        if not values:
            raise ValueError("no behavioural samples")
        return min(values), max(values)


class MonteCarloCalibrator:
    """Uniform random search over declared parameter ranges.

    Pass a :class:`~repro.perf.runner.EnsembleRunner` to funnel the
    evaluations through the shared run cache (and, opt-in, the parallel
    backend); ``simulate`` may then be omitted — the runner's own
    callable is used.  With or without a runner, and with a cold or warm
    cache, the calibration result is identical draw for draw.
    """

    def __init__(self, ranges: Dict[str, Tuple[float, float]],
                 simulate: Optional[Callable[[Dict[str, float]],
                                             Sequence[float]]] = None,
                 objective: Optional[Callable[[Sequence[float], Sequence[float]],
                                              float]] = None,
                 rng: Optional[random.Random] = None,
                 runner: Optional[EnsembleRunner] = None):
        if not ranges:
            raise ValueError("no parameter ranges declared")
        for name, (lo, hi) in ranges.items():
            if hi < lo:
                raise ValueError(f"range for {name!r} is inverted")
        if simulate is None and runner is None:
            raise ValueError("need a simulate callable or a runner")
        self.ranges = dict(ranges)
        self.runner = runner
        self.simulate = simulate if simulate is not None else runner.simulate
        self.objective = objective or nash_sutcliffe_efficiency
        self.rng = rng or random.Random(0)

    def sample_parameters(self) -> Dict[str, float]:
        """Draw one uniform parameter set."""
        return {name: self.rng.uniform(lo, hi)
                for name, (lo, hi) in self.ranges.items()}

    def calibrate(self, observed: Sequence[float], iterations: int = 200,
                  behavioural_threshold: float = 0.5) -> CalibrationResult:
        """Run the search; simulation failures score -inf, not crash.

        A parameter draw that makes the model blow up is information
        (a non-behavioural region), not an error.
        """
        # all draws happen before any evaluation, so the RNG sequence is
        # independent of how (or whether) evaluations are cached
        draws = [self.sample_parameters() for _ in range(iterations)]
        if self.runner is not None:
            outcomes = self.runner.run_many(draws, capture_errors=True)
        else:
            outcomes = []
            for params in draws:
                try:
                    outcomes.append(self.simulate(params))
                except CAPTURED_ERRORS as err:
                    outcomes.append(RunFailure.of(err))
        samples: List[CalibrationSample] = []
        for params, outcome in zip(draws, outcomes):
            if isinstance(outcome, RunFailure):
                score = float("-inf")
            else:
                try:
                    score = self.objective(observed, outcome)
                except CAPTURED_ERRORS:
                    score = float("-inf")
            samples.append(CalibrationSample(parameters=params, score=score))
        return CalibrationResult(samples=samples,
                                 behavioural_threshold=behavioural_threshold)

"""GLUE uncertainty analysis.

Section VI's worked example of why IaaS elasticity matters: "uncertainty
analysis where a model is repeatedly executed using ranges of values for
input parameters in order to compensate for any sources of error".  The
stakeholders also asked for "presentation of uncertainty bounds" on the
widget output.

This is the Generalised Likelihood Uncertainty Estimation procedure
(Beven & Binley 1992): keep the behavioural parameter sets from a Monte
Carlo sweep, weight each by its likelihood (rescaled NSE by default),
and form weighted prediction quantiles at every timestep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.hydrology.calibration import CalibrationResult
from repro.hydrology.timeseries import TimeSeries
from repro.perf.runner import EnsembleRunner


@dataclass
class GlueResult:
    """Weighted prediction bounds from the behavioural ensemble."""

    lower: TimeSeries      # e.g. 5th weighted percentile
    median: TimeSeries
    upper: TimeSeries      # e.g. 95th weighted percentile
    behavioural_count: int
    total_count: int

    def bounds_at(self, index: int) -> Tuple[float, float]:
        """(lower, upper) bound at one timestep."""
        return self.lower[index], self.upper[index]

    def sharpness(self) -> float:
        """Mean bound width — smaller means tighter uncertainty."""
        widths = [u - l for l, u in zip(self.lower, self.upper)]
        return sum(widths) / len(widths) if widths else 0.0

    def coverage(self, observed: Sequence[float]) -> float:
        """Fraction of observations inside the bounds."""
        if len(observed) != len(self.lower):
            raise ValueError("length mismatch with bounds")
        inside = sum(1 for o, l, u in zip(observed, self.lower, self.upper)
                     if l <= o <= u)
        return inside / len(observed)


class GlueAnalysis:
    """GLUE over a calibration result.

    ``simulate`` maps a parameter dict to the simulated series (same
    callable the calibrator used); runs are re-executed for the
    behavioural sets only — exactly the embarrassingly parallel
    many-model-runs workload the cloudbursting benches schedule.

    Pass the same :class:`~repro.perf.runner.EnsembleRunner` the
    calibration used and the behavioural re-runs are all cache hits:
    GLUE then costs quantile arithmetic, not model time.
    """

    def __init__(self,
                 simulate: Optional[Callable[[Dict[str, float]],
                                             Sequence[float]]] = None,
                 lower_quantile: float = 0.05, upper_quantile: float = 0.95,
                 runner: Optional[EnsembleRunner] = None):
        if not 0 <= lower_quantile < upper_quantile <= 1:
            raise ValueError("need 0 <= lower < upper <= 1")
        if simulate is None and runner is None:
            raise ValueError("need a simulate callable or a runner")
        self.runner = runner
        self.simulate = simulate if simulate is not None else runner.simulate
        self.lower_quantile = lower_quantile
        self.upper_quantile = upper_quantile

    def run(self, calibration: CalibrationResult, start: float = 0.0,
            dt: float = 3600.0) -> GlueResult:
        """Compute weighted bounds from the behavioural population."""
        behavioural = calibration.behavioural
        if not behavioural:
            raise ValueError("no behavioural parameter sets - "
                             "lower the threshold or sample more")
        threshold = calibration.behavioural_threshold
        weights = [max(0.0, s.score - threshold) + 1e-9 for s in behavioural]
        total_weight = sum(weights)
        weights = [w / total_weight for w in weights]

        if self.runner is not None:
            runs = [list(r) for r in self.runner.run_many(
                [s.parameters for s in behavioural])]
        else:
            runs = [list(self.simulate(s.parameters)) for s in behavioural]
        n = min(len(r) for r in runs)

        lower, median, upper = [], [], []
        for t in range(n):
            column = sorted(zip((r[t] for r in runs), weights))
            lower.append(_weighted_quantile(column, self.lower_quantile))
            median.append(_weighted_quantile(column, 0.5))
            upper.append(_weighted_quantile(column, self.upper_quantile))

        make = lambda vals, name: TimeSeries(start, dt, vals, units="mm/step",
                                             name=name)
        return GlueResult(
            lower=make(lower, f"glue:p{int(self.lower_quantile * 100)}"),
            median=make(median, "glue:median"),
            upper=make(upper, f"glue:p{int(self.upper_quantile * 100)}"),
            behavioural_count=len(behavioural),
            total_count=len(calibration.samples),
        )


def _weighted_quantile(sorted_value_weight: List[Tuple[float, float]],
                       q: float) -> float:
    """Quantile of a sorted (value, weight) column."""
    cumulative = 0.0
    for value, weight in sorted_value_weight:
        cumulative += weight
        if cumulative >= q:
            return value
    return sorted_value_weight[-1][0]

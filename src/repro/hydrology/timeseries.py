"""Regular time series: the lingua franca of the data and model layers.

A :class:`TimeSeries` is a start time, a fixed timestep (seconds) and a
vector of float values (``math.nan`` marks gaps).  It supports the
operations the portal and models need — slicing by time, resampling,
aligning two series, gap filling, elementwise arithmetic — without
pulling in a dataframe dependency.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, List, Optional, Sequence, Tuple


class TimeSeries:
    """An evenly spaced series of float values."""

    __slots__ = ("start", "dt", "_values", "units", "name")

    def __init__(self, start: float, dt: float, values: Iterable[float],
                 units: str = "", name: str = ""):
        if dt <= 0:
            raise ValueError("timestep must be positive")
        self.start = float(start)
        self.dt = float(dt)
        self._values = [float(v) for v in values]
        self.units = units
        self.name = name

    @classmethod
    def _wrap_floats(cls, start: float, dt: float, values: List[float],
                     units: str = "", name: str = "") -> "TimeSeries":
        """Adopt ``values`` — already a list of floats — without the
        per-element conversion pass.

        Internal fast path for the vectorized kernel, which hands over
        ``ndarray.tolist()`` output (guaranteed Python floats) for
        thousands of series per ensemble; the public constructor's
        coercion would double the kernel's result-assembly cost.  The
        caller must not retain a reference to ``values``.
        """
        series = cls.__new__(cls)
        series.start = start
        series.dt = dt
        series._values = values
        series.units = units
        series.name = name
        return series

    # -- basics -------------------------------------------------------------

    @property
    def values(self) -> List[float]:
        """Copy of the value vector."""
        return list(self._values)

    @property
    def end(self) -> float:
        """Time just after the last sample."""
        return self.start + self.dt * len(self._values)

    def times(self) -> List[float]:
        """Sample timestamps."""
        return [self.start + i * self.dt for i in range(len(self._values))]

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self):
        return iter(self._values)

    def __getitem__(self, index: int) -> float:
        return self._values[index]

    def at(self, time: float) -> float:
        """Value of the interval containing ``time``."""
        index = int((time - self.start) // self.dt)
        if not 0 <= index < len(self._values):
            raise IndexError(f"time {time} outside series "
                             f"[{self.start}, {self.end})")
        return self._values[index]

    def index_at(self, time: float) -> int:
        """Index of the interval containing ``time``."""
        index = int((time - self.start) // self.dt)
        if not 0 <= index < len(self._values):
            raise IndexError(f"time {time} outside series")
        return index

    # -- transformations ---------------------------------------------------------

    def slice(self, begin: float, end: float) -> "TimeSeries":
        """Sub-series covering ``[begin, end)`` (clamped to the series)."""
        first = max(0, int(math.ceil((begin - self.start) / self.dt)))
        last = min(len(self._values),
                   int(math.ceil((end - self.start) / self.dt)))
        if last < first:
            first = last
        return TimeSeries(self.start + first * self.dt, self.dt,
                          self._values[first:last], self.units, self.name)

    def resample(self, new_dt: float,
                 how: str = "mean") -> "TimeSeries":
        """Aggregate to a coarser timestep (``new_dt`` a multiple of dt).

        ``how``: "mean" for intensive quantities (flow, temperature),
        "sum" for extensive ones (rainfall depth), "max" for peaks.
        """
        ratio = new_dt / self.dt
        if abs(ratio - round(ratio)) > 1e-9 or ratio < 1:
            raise ValueError("new_dt must be an integer multiple of dt")
        ratio = int(round(ratio))
        reducers: dict = {
            "mean": lambda chunk: sum(chunk) / len(chunk),
            "sum": sum,
            "max": max,
            "min": min,
        }
        if how not in reducers:
            raise ValueError(f"unknown aggregation {how!r}")
        reduce = reducers[how]
        out = []
        for i in range(0, len(self._values) - ratio + 1, ratio):
            chunk = [v for v in self._values[i:i + ratio] if not math.isnan(v)]
            out.append(reduce(chunk) if chunk else math.nan)
        return TimeSeries(self.start, new_dt, out, self.units, self.name)

    def fill_gaps(self, method: str = "interpolate") -> "TimeSeries":
        """Replace NaNs: 'interpolate' linearly, 'zero', or 'hold' last value."""
        values = list(self._values)
        if method == "zero":
            filled = [0.0 if math.isnan(v) else v for v in values]
        elif method == "hold":
            filled, last = [], 0.0
            for v in values:
                if math.isnan(v):
                    filled.append(last)
                else:
                    filled.append(v)
                    last = v
        elif method == "interpolate":
            filled = list(values)
            n = len(filled)
            i = 0
            while i < n:
                if math.isnan(filled[i]):
                    j = i
                    while j < n and math.isnan(filled[j]):
                        j += 1
                    left = filled[i - 1] if i > 0 else (
                        filled[j] if j < n else 0.0)
                    right = filled[j] if j < n else left
                    gap = j - i + 1
                    for k in range(i, j):
                        frac = (k - i + 1) / gap
                        filled[k] = left * (1 - frac) + right * frac
                    i = j
                else:
                    i += 1
        else:
            raise ValueError(f"unknown gap-fill method {method!r}")
        return TimeSeries(self.start, self.dt, filled, self.units, self.name)

    def gap_count(self) -> int:
        """Number of NaN samples."""
        return sum(1 for v in self._values if math.isnan(v))

    def map(self, fn: Callable[[float], float]) -> "TimeSeries":
        """Elementwise transformation (NaNs pass through)."""
        return TimeSeries(self.start, self.dt,
                          [v if math.isnan(v) else fn(v) for v in self._values],
                          self.units, self.name)

    def shift(self, steps: int) -> "TimeSeries":
        """Shift values ``steps`` forward in time, zero-padding the head."""
        if steps < 0:
            raise ValueError("only forward shifts supported")
        padded = [0.0] * steps + self._values[:len(self._values) - steps]
        return TimeSeries(self.start, self.dt, padded, self.units, self.name)

    # -- statistics ----------------------------------------------------------------

    def _clean(self) -> List[float]:
        return [v for v in self._values if not math.isnan(v)]

    def total(self) -> float:
        """Sum of non-NaN values."""
        return sum(self._clean())

    def mean(self) -> float:
        """Mean of non-NaN values (0 when empty)."""
        clean = self._clean()
        return sum(clean) / len(clean) if clean else 0.0

    def maximum(self) -> float:
        """Largest non-NaN value."""
        clean = self._clean()
        if not clean:
            raise ValueError("empty series")
        return max(clean)

    def argmax_time(self) -> float:
        """Timestamp of the largest value."""
        best_i, best_v = 0, -math.inf
        for i, v in enumerate(self._values):
            if not math.isnan(v) and v > best_v:
                best_i, best_v = i, v
        return self.start + best_i * self.dt

    # -- combination -----------------------------------------------------------------

    def aligned_with(self, other: "TimeSeries") -> Tuple["TimeSeries", "TimeSeries"]:
        """Clip both series to their common time span (dt must match)."""
        if abs(self.dt - other.dt) > 1e-9:
            raise ValueError("cannot align series with different timesteps")
        begin = max(self.start, other.start)
        end = min(self.end, other.end)
        if end <= begin:
            raise ValueError("series do not overlap")
        return self.slice(begin, end), other.slice(begin, end)

    def _combine(self, other, op) -> "TimeSeries":
        if isinstance(other, TimeSeries):
            a, b = self.aligned_with(other)
            values = [op(x, y) for x, y in zip(a._values, b._values)]
            return TimeSeries(a.start, a.dt, values, self.units, self.name)
        return self.map(lambda v: op(v, other))

    def __add__(self, other):
        return self._combine(other, lambda x, y: x + y)

    def __sub__(self, other):
        return self._combine(other, lambda x, y: x - y)

    def __mul__(self, other):
        return self._combine(other, lambda x, y: x * y)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<TimeSeries {self.name!r} n={len(self)} dt={self.dt} "
                f"units={self.units!r}>")

    @staticmethod
    def zeros_like(other: "TimeSeries") -> "TimeSeries":
        """A zero series with the same shape as ``other``."""
        return TimeSeries(other.start, other.dt, [0.0] * len(other),
                          other.units, other.name)

"""Goodness-of-fit metrics for hydrological model evaluation.

The calibration workflow judges a simulation against observations with
the community-standard scores: Nash–Sutcliffe efficiency (the paper's
models were calibrated until they "could adequately reproduce observed
discharge"), Kling–Gupta efficiency, RMSE, percent bias and peak error.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple


def _paired(observed: Sequence[float],
            simulated: Sequence[float]) -> Tuple[list, list]:
    if len(observed) != len(simulated):
        raise ValueError(f"length mismatch: {len(observed)} observed vs "
                         f"{len(simulated)} simulated")
    obs, sim = [], []
    for o, s in zip(observed, simulated):
        if not (math.isnan(o) or math.isnan(s)):
            obs.append(o)
            sim.append(s)
    if not obs:
        raise ValueError("no overlapping non-NaN samples")
    return obs, sim


def nash_sutcliffe_efficiency(observed: Sequence[float],
                              simulated: Sequence[float]) -> float:
    """NSE in (-inf, 1]; 1 is a perfect fit, 0 matches the mean model."""
    obs, sim = _paired(observed, simulated)
    mean_obs = sum(obs) / len(obs)
    err = sum((o - s) ** 2 for o, s in zip(obs, sim))
    var = sum((o - mean_obs) ** 2 for o in obs)
    if var == 0:
        return 1.0 if err == 0 else -math.inf
    return 1.0 - err / var


def rmse(observed: Sequence[float], simulated: Sequence[float]) -> float:
    """Root-mean-square error in the series' units."""
    obs, sim = _paired(observed, simulated)
    return math.sqrt(sum((o - s) ** 2 for o, s in zip(obs, sim)) / len(obs))


def percent_bias(observed: Sequence[float],
                 simulated: Sequence[float]) -> float:
    """PBIAS (%): positive = model under-predicts total volume."""
    obs, sim = _paired(observed, simulated)
    total_obs = sum(obs)
    if total_obs == 0:
        raise ValueError("observed series sums to zero")
    return 100.0 * sum(o - s for o, s in zip(obs, sim)) / total_obs


def kling_gupta_efficiency(observed: Sequence[float],
                           simulated: Sequence[float]) -> float:
    """KGE (Gupta et al. 2009): 1 - sqrt((r-1)² + (α-1)² + (β-1)²)."""
    obs, sim = _paired(observed, simulated)
    n = len(obs)
    mean_o = sum(obs) / n
    mean_s = sum(sim) / n
    std_o = math.sqrt(sum((o - mean_o) ** 2 for o in obs) / n)
    std_s = math.sqrt(sum((s - mean_s) ** 2 for s in sim) / n)
    if std_o == 0 or mean_o == 0:
        raise ValueError("degenerate observed series")
    if std_s == 0:
        correlation = 0.0
    else:
        covariance = sum((o - mean_o) * (s - mean_s)
                         for o, s in zip(obs, sim)) / n
        correlation = covariance / (std_o * std_s)
    alpha = std_s / std_o
    beta = mean_s / mean_o
    return 1.0 - math.sqrt((correlation - 1) ** 2 + (alpha - 1) ** 2
                           + (beta - 1) ** 2)


def peak_error(observed: Sequence[float],
               simulated: Sequence[float]) -> float:
    """Relative error of the simulated peak: (max_sim - max_obs)/max_obs."""
    obs, sim = _paired(observed, simulated)
    peak_obs = max(obs)
    if peak_obs == 0:
        raise ValueError("observed peak is zero")
    return (max(sim) - peak_obs) / peak_obs

"""Hydrological modelling: the science behind the LEFT widget.

EVOp's local flooding exemplar deploys two rainfall-runoff models in the
cloud: **TOPMODEL** (Beven & Kirkby's topographic-index model) and the
**FUSE** multi-model ensemble (Clark et al.'s modular structure
combinator).  This package implements both from scratch, plus the
supporting science: potential evapotranspiration, goodness-of-fit
metrics, Monte Carlo calibration, GLUE uncertainty analysis, land-use
scenarios and hydrograph analysis.

Water-balance convention: depths in **millimetres per timestep** over the
catchment area; :func:`~repro.hydrology.timeseries.TimeSeries` carries
the timestep in seconds.  Conversion to discharge (m³/s) multiplies by
catchment area.
"""

from repro.hydrology.timeseries import TimeSeries
from repro.hydrology.metrics import (
    kling_gupta_efficiency,
    nash_sutcliffe_efficiency,
    percent_bias,
    peak_error,
    rmse,
)
from repro.hydrology.pet import hamon_pet, oudin_pet
from repro.hydrology.topmodel import TopmodelParameters, Topmodel
from repro.hydrology.fuse import (
    FuseDecisions,
    FuseModel,
    FuseParameters,
    fuse_ensemble,
)
from repro.hydrology.scenarios import LandUseScenario, STANDARD_SCENARIOS
from repro.hydrology.hydrograph import HydrographAnalysis
from repro.hydrology.calibration import CalibrationResult, MonteCarloCalibrator
from repro.hydrology.uncertainty import GlueAnalysis, GlueResult
from repro.hydrology.water_quality import (
    SCENARIO_QUALITY_FACTORS,
    WaterQualityModel,
    WaterQualityParameters,
    WaterQualityResult,
)
from repro.hydrology.sensitivity import (
    OatCurve,
    RsaResult,
    one_at_a_time,
    rank_oat,
    regional_sensitivity,
)

__all__ = [
    "CalibrationResult",
    "FuseDecisions",
    "FuseModel",
    "FuseParameters",
    "GlueAnalysis",
    "GlueResult",
    "HydrographAnalysis",
    "LandUseScenario",
    "MonteCarloCalibrator",
    "OatCurve",
    "RsaResult",
    "STANDARD_SCENARIOS",
    "TimeSeries",
    "Topmodel",
    "TopmodelParameters",
    "SCENARIO_QUALITY_FACTORS",
    "WaterQualityModel",
    "WaterQualityParameters",
    "WaterQualityResult",
    "fuse_ensemble",
    "hamon_pet",
    "kling_gupta_efficiency",
    "nash_sutcliffe_efficiency",
    "one_at_a_time",
    "oudin_pet",
    "peak_error",
    "rank_oat",
    "regional_sensitivity",
    "percent_bias",
    "rmse",
]

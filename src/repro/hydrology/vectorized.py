"""Structure-of-arrays TOPMODEL: the whole ensemble advances per timestep.

The scalar step loop in :mod:`repro.hydrology.topmodel` evaluates one
parameter set at a time — O(n·K) Python bytecode per run, P times per
ensemble.  This module turns the ensemble axis into an array axis:
state lives in NumPy arrays of shape ``(K, P)`` (K topographic-index
classes × P parameter sets, class axis leading so the fused class
reduction contracts an outer axis) or ``(P,)`` (per-set scalars), and
one timestep of the *entire ensemble* is a fixed sequence of array
ops — deficit update, saturation partition, unsaturated drainage,
baseflow, routing — regardless of P.

Numerical contract (the "ulp bound", pinned by
``benchmarks/bench_model_fastpath.py`` and the hypothesis property test
in ``tests/test_topmodel_vectorized.py``):

* Everything computed **once per parameter set** (SZQ, the initial
  deficit, the ``m·(λ − TI_k)`` offsets) uses ``math.exp``/``math.log``
  in a plain Python loop, exactly as the scalar kernel does — those
  constants are bit-identical.
* Per-step **element-wise** array ops (add/sub/mul/div/minimum/maximum)
  are IEEE-754 double ops, bit-identical to their scalar counterparts.
  Masking is mask *arithmetic* (x·1.0 = x, x·0.0 = 0.0 — exact), and
  the fused class reduction (``einsum`` over the leading K axis)
  accumulates classes strictly in order, matching the scalar kernel's
  class loop bit for bit.
* Exactly **one** per-step operation may differ from the scalar loop by
  rounding: ``np.exp`` (the baseflow recession) is within 1 ulp of
  ``math.exp`` but not always bit-equal.  Because the saturation
  deficit is recursive, that single ulp can compound over the run, so
  the *pinned* bound is end-to-end: every output series agrees with
  the scalar oracle within relative 1e-9 (observed ≤ ~1e-13 on the
  bench workload).
* The kernel is **chunk-invariant**: evaluating any subset of the
  parameter sets yields bit-identical rows, because every op is
  element-wise per set or reduces only over that set's own K classes
  (single-set batches are padded to two columns so einsum's 1-D
  special case never changes the accumulation).  The process-pool
  backend relies on this — chunked results are bit-equal to one batch,
  and ``DurableSweep`` checkpoints at chunk boundaries stay exact.

Without NumPy the module degrades gracefully: ``HAVE_NUMPY`` is False
and every entry point falls back to the scalar loop, bit-identical to
``Topmodel.run_batch``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.hydrology.timeseries import TimeSeries
from repro.hydrology.topmodel import (
    PreparedForcing,
    Topmodel,
    TopmodelParameters,
    TopmodelResult,
)

try:
    import numpy as _np
except ImportError:                  # pragma: no cover - exercised in CI
    _np = None

#: True when the vectorized kernel can actually run; consumers
#: (TopmodelEnsemble, EnsembleRunner backend resolution, the bench)
#: treat False as "select the scalar path".
HAVE_NUMPY = _np is not None

#: Documented end-to-end agreement bound of the vectorized kernel
#: against the scalar oracle (relative, per output sample; see module
#: docstring for where the rounding enters).
VECTOR_REL_BOUND = 1e-9
#: Absolute floor for samples near zero (mm/step scale).
VECTOR_ABS_BOUND = 1e-12


#: Units of the result series the batch kernel materialises on demand.
_DEFERRED_UNITS = {
    "baseflow": "mm/step",
    "overland": "mm/step",
    "saturated_fraction": "fraction",
    "actual_et": "mm/step",
}


class _LazyTopmodelResult(TopmodelResult):
    """A :class:`TopmodelResult` whose diagnostic series materialise on
    first access.

    Ensemble consumers overwhelmingly read ``flow`` (NSE, discharge
    conversion); ``baseflow``/``overland``/``saturated_fraction``/
    ``actual_et`` are diagnostics most sweeps never touch.  Converting
    an array column to a list of Python floats is the single largest
    fixed cost of the batch kernel's result assembly, so ``flow`` is
    handed over eagerly and the other four stay as columns of the
    batch's shared output arrays until the attribute is first read
    (the built series is then cached as a plain instance attribute).
    Values are identical either way — laziness changes *when* the
    conversion happens, never what it produces.
    """

    def __init__(self, flow: TimeSeries, deferred: Dict[str, object],
                 index: int, n: int, start: float, dt: float,
                 final_deficit_mm: float, water_balance_error_mm: float):
        # deliberately not the dataclass __init__: the four deferred
        # fields stay unset until __getattr__ materialises them
        self.flow = flow
        self._deferred = deferred       # field name -> (n, P) array|None
        self._index = index
        self._n = n
        self._start = start
        self._dt = dt
        self.final_deficit_mm = final_deficit_mm
        self.water_balance_error_mm = water_balance_error_mm

    def __getattr__(self, name: str):
        units = _DEFERRED_UNITS.get(name)
        if units is None:
            raise AttributeError(name)
        state = self.__dict__
        source = state["_deferred"][name]
        values = ([0.0] * state["_n"] if source is None
                  else source[:, state["_index"]].tolist())
        series = TimeSeries._wrap_floats(state["_start"], state["_dt"],
                                         values, units, name)
        state[name] = series
        return series


def run_batch_vectorized(model: Topmodel, forcing: PreparedForcing,
                         parameter_sets: Sequence[Optional[TopmodelParameters]]
                         ) -> List[TopmodelResult]:
    """Evaluate ``parameter_sets`` over one forcing as array ops.

    Returns one :class:`TopmodelResult` per input set, in input order,
    agreeing with :meth:`Topmodel.run_prepared` within the documented
    ulp bound (:data:`VECTOR_REL_BOUND`).  Falls back to the scalar
    loop, bit-identically, when NumPy is unavailable.
    """
    if not HAVE_NUMPY:
        return [model.run_prepared(forcing, p) for p in parameter_sets]
    params = [(p or TopmodelParameters()).validated()
              for p in parameter_sets]
    if not params:
        return []
    if len(params) == 1:
        # einsum's single-column special case collapses the class
        # contraction to a 1-D dot with pairwise accumulation — a
        # different rounding than the ordered sum every P ≥ 2 batch
        # uses.  Evaluate padded to two identical columns so all batch
        # sizes share one code path (chunk invariance incl. chunks of
        # one), and keep the first result.
        return run_batch_vectorized(model, forcing,
                                    [params[0], params[0]])[:1]
    np = _np
    n_sets = len(params)
    dt = model.dt_hours
    lam = model.lam
    tis = np.asarray(model._tis, dtype=np.float64)          # (K,)
    fractions = np.asarray(model._fractions, dtype=np.float64)

    # ---- per-set constants: math.exp/math.log so these match the
    # scalar kernel bit for bit (rounding may only enter per step) ----
    m = np.array([p.m for p in params])
    srmax = np.array([p.srmax for p in params])
    td = np.array([p.td for p in params])
    interception = np.array([p.interception_mm for p in params])
    capacity = np.array([p.infiltration_capacity_mm_h * dt for p in params])
    szq = np.array([1000.0 * math.exp(p.t0 - lam) * dt for p in params])
    deficit0 = []
    for p, szq_i in zip(params, szq):
        target = p.q0_mm_h * dt
        deficit0.append(p.m * math.log(szq_i / target)
                        if szq_i > target else 1.0)
    mean_deficit = np.array(deficit0)
    initial_deficit = mean_deficit.copy()
    root_deficit = np.array([p.sr0 * p.srmax for p in params])
    initial_root_store = srmax - root_deficit

    # state is laid out (K, P) — class axis leading — so that the fused
    # K-reduction below contracts the *leading* axis, which einsum
    # evaluates as a strict left-to-right accumulation over classes:
    # bit-identical to the scalar kernel's ``for each class`` loop
    offsets = (lam - tis)[:, None] * m[None, :]             # (K, P)
    # materialised (K, P) copy of td: same-shape ufunc loops skip the
    # broadcast machinery (~2x faster per step, bit-identical result)
    td_full = np.ascontiguousarray(
        np.broadcast_to(td[None, :], offsets.shape))
    # a / -m == -(a / m) exactly (IEEE rounding is sign-symmetric), so
    # dividing by the negated m fuses the baseflow exponent's negation
    neg_m = -m
    any_interception = bool(interception.any())

    n = forcing.n
    rain_list = forcing.rain
    pet_list = forcing.pet
    has_pet = pet_list is not None
    # output series as (n, P) so each step writes one contiguous row
    flow_raw = np.empty((n, n_sets))
    base_out = np.empty((n, n_sets))
    over_out = np.empty((n, n_sets))
    satfrac_out = np.empty((n, n_sets))
    # zeros: dry-PET steps skip writes; without PET skip the array too
    aet_out = np.zeros((n, n_sets)) if has_pet else None
    total_in = 0.0
    total_out = np.zeros(n_sets)

    # preallocated step workspace — the loop allocates nothing.  The
    # four K-reductions (saturated area, saturated storage, saturated
    # deficit, unsaturated flux) live as planes of one (4, K, P) block
    # — each plane a contiguous (K, P) array — so a single einsum
    # against the class fractions fuses them; masking is mask
    # *arithmetic* (satf ∈ {0.0, 1.0}), which is exact — x·1.0 = x and
    # x·0.0 = 0.0 for every finite x — and keeps NaN/inf out of the
    # kernel entirely (no errstate needed).
    reduce_block = np.empty((4, len(model._tis), n_sets))
    satf = reduce_block[0]              # 1.0 where the class is saturated
    sat_stored = reduce_block[1]        # stored water of saturated classes
    sat_deficit = reduce_block[2]       # (negative) deficit of saturated
    flux = reduce_block[3]              # drainage flux of unsaturated
    reduced = np.empty((4, n_sets))
    saturated_area = reduced[0]
    sat_overland = reduced[1]
    neg_return_flow = reduced[2]
    recharge = reduced[3]
    local_deficit = np.empty_like(offsets)
    unsatf = np.empty_like(offsets)
    denom = np.empty_like(offsets)
    stored_buf = np.empty_like(offsets)
    suz = np.zeros_like(offsets)
    suz_next = np.empty_like(offsets)
    scratch = np.empty(n_sets)
    intercepted = np.empty(n_sets)
    rain_ground = np.empty(n_sets)
    infiltration_excess = np.empty(n_sets)
    infiltrating = np.empty(n_sets)
    to_root = np.empty(n_sets)
    drainage = np.empty(n_sets)
    aet = np.empty(n_sets)

    # hoisted ufunc bindings: the loop below dispatches ~30 of these
    # per step, and the module-attribute lookups add up at this grain
    _add, _sub, _mul, _div = np.add, np.subtract, np.multiply, np.divide
    _min, _max, _le = np.minimum, np.maximum, np.less_equal
    _einsum, _exp, _copyto = np.einsum, np.exp, np.copyto
    unit_dt = dt == 1.0

    for step in range(n):
        rain = rain_list[step]
        pet_step = 0.0 if pet_list is None else pet_list[step]
        total_in += rain

        if rain > 0.0:
            if any_interception:
                _min(rain, interception, out=intercepted)
                _sub(rain, intercepted, out=rain_ground)
                total_out += intercepted
                rg = rain_ground
            else:
                rg = rain
            _sub(rg, capacity, out=infiltration_excess)
            _max(infiltration_excess, 0.0, out=infiltration_excess)
            _sub(rg, infiltration_excess, out=infiltrating)
            _min(infiltrating, root_deficit, out=to_root)
            root_deficit -= to_root
            _sub(infiltrating, to_root, out=drainage)
            _add(suz, drainage, out=stored_buf)
            stored = stored_buf
            iex = infiltration_excess
        else:
            # dry step: every intermediate above is exactly 0.0 and the
            # scalar kernel's updates reduce to identities (x − 0 = x),
            # so stored *is* suz — skipping the ops changes nothing
            iex = 0.0
            stored = suz

        if pet_step > 0.0:
            _div(root_deficit, srmax, out=aet)
            _sub(1.0, aet, out=aet)
            _max(aet, 0.0, out=aet)
            _mul(aet, pet_step, out=aet)
            _sub(srmax, root_deficit, out=scratch)
            _min(aet, scratch, out=aet)
            _add(root_deficit, aet, out=scratch)
            _min(srmax, scratch, out=root_deficit)
            total_out += aet
            aet_out[step] = aet

        _add(mean_deficit, offsets, out=local_deficit)
        _le(local_deficit, 0.0, out=satf, casting="unsafe")
        _sub(1.0, satf, out=unsatf)

        # unsaturated drainage toward the water table; saturated classes
        # get a dummy denominator of 1.0 (their flux is masked to zero)
        _mul(local_deficit, td_full, out=denom)
        _mul(denom, unsatf, out=denom)
        _add(denom, satf, out=denom)
        _div(stored, denom, out=flux)
        if not unit_dt:
            # flux · 1.0 is exact — skip the op at the hourly timestep
            _mul(flux, dt, out=flux)
        _min(flux, stored, out=flux)
        _sub(stored, flux, out=suz_next)
        _mul(suz_next, unsatf, out=suz_next)
        _mul(flux, unsatf, out=flux)
        _mul(stored, satf, out=sat_stored)
        _mul(local_deficit, satf, out=sat_deficit)
        # einsum over the class axis, not BLAS dot: gemv's blocking
        # varies with the column count, so dot would break the
        # chunk-invariance the process-pool backend depends on, while
        # this contraction accumulates classes k = 0..K-1 strictly in
        # order — the same order (hence the same bits) as the scalar
        # kernel's class loop
        _einsum("akp,k->ap", reduce_block, fractions, out=reduced)
        suz, suz_next = suz_next, suz

        # baseflow/overland computed straight into their output rows
        baseflow = base_out[step]
        overland = over_out[step]
        _add(iex, sat_overland, out=overland)
        _sub(overland, neg_return_flow, out=overland)
        _div(mean_deficit, neg_m, out=scratch)
        _exp(scratch, out=scratch)
        _mul(szq, scratch, out=baseflow)
        mean_deficit += baseflow
        mean_deficit -= neg_return_flow
        mean_deficit -= recharge
        if mean_deficit.min() < 0.0:
            negative = mean_deficit < 0.0
            _sub(overland, mean_deficit, out=overland,
                 where=negative)
            _copyto(mean_deficit, 0.0, where=negative)

        _add(baseflow, overland, out=flow_raw[step])
        satfrac_out[step] = saturated_area
        total_out += flow_raw[step]

    routed = _route_batch(np, flow_raw, params, dt)

    suz_store = np.einsum("kp,k->p", suz, fractions)
    root_store = srmax - root_deficit
    storage_change = (suz_store
                      + (root_store - initial_root_store)
                      - (mean_deficit - initial_deficit))
    balance_error = total_in - total_out - storage_change

    start, series_dt = forcing.start, forcing.dt
    flow_lists = routed.T.tolist()
    deferred = {"baseflow": base_out, "overland": over_out,
                "saturated_fraction": satfrac_out, "actual_et": aet_out}
    wrap = TimeSeries._wrap_floats
    results = []
    for i, flow_v in enumerate(flow_lists):
        results.append(_LazyTopmodelResult(
            flow=wrap(start, series_dt, flow_v, "mm/step", "flow"),
            deferred=deferred, index=i, n=n, start=start, dt=series_dt,
            final_deficit_mm=float(mean_deficit[i]),
            water_balance_error_mm=float(balance_error[i]),
        ))
    return results


def _route_batch(np, flow_raw, params, dt_hours):
    """Channel delay + linear reservoir for all sets at once.

    ``flow_raw`` is laid out ``(n, P)``.  The pure delay groups sets by
    their (integer) delay step count and shifts each group with one
    slice copy; the reservoir recursion then runs once over time with
    ``(P,)`` element-wise ops — the same left-to-right store updates as
    the scalar ``_route``.
    """
    n, n_sets = flow_raw.shape
    delays = [int(round(p.channel_delay_hours / dt_hours)) for p in params]
    delayed = np.zeros_like(flow_raw)
    for delay in set(delays):
        cols = [i for i, d in enumerate(delays) if d == delay]
        if delay <= 0:
            delayed[:, cols] = flow_raw[:, cols]
        elif delay < n:
            delayed[delay:, cols] = flow_raw[:n - delay, cols]
    k = np.minimum(1.0, np.array([p.reservoir_k for p in params]) * dt_hours)
    routed = np.empty_like(flow_raw)
    store = np.zeros(n_sets)
    released = np.empty(n_sets)
    for t in range(n):
        store += delayed[t]
        np.multiply(store, k, out=released)
        store -= released
        routed[t] = released
    return routed


class TopmodelEnsemble:
    """A picklable batch simulator binding one model to one forcing.

    This is the object ensemble workloads hand to
    :class:`~repro.perf.runner.EnsembleRunner`: calling it with one
    parameter dict runs the scalar kernel (``simulate`` semantics), and
    :meth:`batch` evaluates a whole chunk through the vectorized kernel
    (``batch`` semantics, the ``vector``/``process-pool`` backends).
    Everything it holds — the model's TI lists, the prepared forcing
    tuples, the base parameter dataclass — is plain data, so instances
    cross ``ProcessPoolExecutor`` boundaries by pickle.

    ``vectorized`` advertises whether :meth:`batch` actually runs the
    array kernel; when NumPy is absent it is False and the runner's
    backend resolution selects the scalar path automatically.
    """

    def __init__(self, model: Topmodel, forcing: PreparedForcing,
                 base: Optional[TopmodelParameters] = None):
        self.model = model
        self.forcing = forcing
        self.base = (base or TopmodelParameters()).validated()
        self.vectorized = HAVE_NUMPY

    @classmethod
    def prepare(cls, model: Topmodel, rainfall: TimeSeries,
                pet: Optional[TimeSeries] = None,
                base: Optional[TopmodelParameters] = None
                ) -> "TopmodelEnsemble":
        """Sanitise ``rainfall``/``pet`` once and bind the simulator."""
        return cls(model, model.prepare(rainfall, pet), base)

    def parameters_of(self, updates: Dict[str, float]) -> TopmodelParameters:
        """The full parameter set for one dict of calibrated updates."""
        return self.base.with_updates(**updates)

    def __call__(self, updates: Dict[str, float]) -> TopmodelResult:
        """Scalar-kernel evaluation of one parameter dict."""
        return self.model.run_prepared(self.forcing,
                                       self.parameters_of(updates))

    def batch(self, update_sets: Sequence[Dict[str, float]]
              ) -> List[TopmodelResult]:
        """Vectorized-kernel evaluation of many parameter dicts."""
        return run_batch_vectorized(
            self.model, self.forcing,
            [self.parameters_of(u) for u in update_sets])

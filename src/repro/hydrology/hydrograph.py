"""Hydrograph analysis: the numbers the LEFT widget reports.

Given a flow series (and optionally the rainfall that drove it), extract
the quantities stakeholders asked about — peak flow, time to peak, flood
volume, threshold exceedance ("how do I decide when my property is at
risk of flooding?") — plus flow-duration statistics and a simple
event separation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.hydrology.timeseries import TimeSeries


@dataclass(frozen=True)
class FloodEvent:
    """One contiguous spell above a flow threshold."""

    start_time: float
    end_time: float
    peak: float
    peak_time: float
    volume: float    # sum of flow over the event, mm

    @property
    def duration(self) -> float:
        """Event length in series time units (seconds)."""
        return self.end_time - self.start_time


class HydrographAnalysis:
    """Analysis helpers over one flow series."""

    def __init__(self, flow: TimeSeries,
                 rainfall: Optional[TimeSeries] = None):
        if len(flow) == 0:
            raise ValueError("empty flow series")
        self.flow = flow
        self.rainfall = rainfall

    def peak(self) -> float:
        """Peak flow in series units."""
        return self.flow.maximum()

    def time_to_peak(self) -> float:
        """Seconds from series start (or rainfall centroid) to the peak.

        With rainfall supplied, measured from the rainfall centroid —
        the catchment response lag; otherwise from the series start.
        """
        peak_time = self.flow.argmax_time()
        if self.rainfall is not None and self.rainfall.total() > 0:
            times = self.rainfall.times()
            weights = self.rainfall.values
            centroid = (sum(t * w for t, w in zip(times, weights))
                        / self.rainfall.total())
            return peak_time - centroid
        return peak_time - self.flow.start

    def total_volume(self) -> float:
        """Total flow volume (sum of values), mm over the catchment."""
        return self.flow.total()

    def runoff_coefficient(self) -> float:
        """Flow volume / rainfall volume (requires rainfall)."""
        if self.rainfall is None:
            raise ValueError("runoff coefficient needs the rainfall series")
        rain_total = self.rainfall.total()
        if rain_total == 0:
            raise ValueError("rainfall series sums to zero")
        return self.flow.total() / rain_total

    def exceedance_fraction(self, threshold: float) -> float:
        """Fraction of timesteps with flow above ``threshold``."""
        values = [v for v in self.flow if not math.isnan(v)]
        if not values:
            return 0.0
        return sum(1 for v in values if v > threshold) / len(values)

    def flow_duration_curve(self, points: int = 20) -> List[Tuple[float, float]]:
        """(exceedance probability, flow) pairs, high flows first."""
        values = sorted((v for v in self.flow if not math.isnan(v)),
                        reverse=True)
        if not values:
            return []
        n = len(values)
        curve = []
        for i in range(points):
            p = (i + 0.5) / points
            index = min(n - 1, int(p * n))
            curve.append((p, values[index]))
        return curve

    def events_above(self, threshold: float,
                     min_gap_steps: int = 2) -> List[FloodEvent]:
        """Contiguous flood events above ``threshold``.

        Dips below the threshold shorter than ``min_gap_steps`` do not
        split an event (sensor noise tolerance).
        """
        events: List[FloodEvent] = []
        in_event = False
        gap = 0
        start_i = 0
        peak_v = -math.inf
        peak_i = 0
        volume = 0.0

        def close(end_index: int) -> None:
            events.append(FloodEvent(
                start_time=self.flow.start + start_i * self.flow.dt,
                end_time=self.flow.start + end_index * self.flow.dt,
                peak=peak_v,
                peak_time=self.flow.start + peak_i * self.flow.dt,
                volume=volume,
            ))

        for i, v in enumerate(self.flow):
            above = not math.isnan(v) and v > threshold
            if above:
                if not in_event:
                    in_event = True
                    start_i = i
                    peak_v, peak_i, volume = v, i, 0.0
                gap = 0
                volume += v
                if v > peak_v:
                    peak_v, peak_i = v, i
            elif in_event:
                gap += 1
                if gap >= min_gap_steps:
                    close(i - gap + 1)
                    in_event = False
                else:
                    volume += 0.0 if math.isnan(v) else v
        if in_event:
            close(len(self.flow))
        return events

    def recession_constant(self) -> Optional[float]:
        """Mean ratio q[t+1]/q[t] over strictly falling positive limbs."""
        ratios = []
        values = self.flow.values
        for prev, nxt in zip(values, values[1:]):
            if (not math.isnan(prev) and not math.isnan(nxt)
                    and prev > 0 and 0 < nxt < prev):
                ratios.append(nxt / prev)
        if not ratios:
            return None
        return sum(ratios) / len(ratios)

    def summary(self, threshold: Optional[float] = None) -> dict:
        """One-widget summary dict (what Fig. 6's panel displays)."""
        out = {
            "peak": self.peak(),
            "peak_time": self.flow.argmax_time(),
            "time_to_peak": self.time_to_peak(),
            "volume": self.total_volume(),
        }
        if self.rainfall is not None and self.rainfall.total() > 0:
            out["runoff_coefficient"] = self.runoff_coefficient()
        if threshold is not None:
            out["exceedance_fraction"] = self.exceedance_fraction(threshold)
            out["events"] = len(self.events_above(threshold))
        return out

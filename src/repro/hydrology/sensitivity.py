"""Parameter sensitivity analysis.

The modelling widget invites experts to "explore model parameter
sensitivity through HTML sliders"; this module supplies the analysis
behind that exploration:

* **one-at-a-time (OAT)** sweeps: vary each parameter across its range
  with the others held at reference values, reporting the response of
  any scalar metric (peak flow by default);
* **regional sensitivity analysis** (Hornberger–Spear–Young, the
  companion of GLUE): split a Monte Carlo sample into behavioural and
  non-behavioural sets and rank parameters by the Kolmogorov–Smirnov
  distance between the two marginal distributions — parameters whose
  distributions separate are the ones identifiable from data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.hydrology.calibration import CalibrationResult
from repro.perf.runner import EnsembleRunner


@dataclass
class OatCurve:
    """One parameter's one-at-a-time response curve."""

    parameter: str
    points: List[Tuple[float, float]]      # (parameter value, metric)

    def metric_range(self) -> float:
        """Spread of the metric over the sweep (the OAT sensitivity)."""
        values = [m for _p, m in self.points]
        return max(values) - min(values)

    def normalised_sensitivity(self) -> float:
        """Metric range divided by the mean metric (dimensionless)."""
        values = [m for _p, m in self.points]
        mean = sum(values) / len(values)
        if mean == 0:
            return 0.0
        return self.metric_range() / abs(mean)


def one_at_a_time(simulate_metric: Callable[[Dict[str, float]], float],
                  ranges: Dict[str, Tuple[float, float]],
                  reference: Dict[str, float],
                  points: int = 7,
                  runner: Optional[EnsembleRunner] = None
                  ) -> Dict[str, OatCurve]:
    """OAT sweep of every parameter in ``ranges``.

    ``simulate_metric(params) -> scalar`` runs the model and extracts
    the metric; ``reference`` holds the values of parameters not being
    varied (it must cover every key of ``ranges``).  With a ``runner``
    (an :class:`~repro.perf.runner.EnsembleRunner` wrapping the same
    callable) the sweep evaluates through the shared run cache, so a
    repeated exploration — the slider-widget access pattern — re-runs
    nothing.
    """
    if points < 2:
        raise ValueError("need at least two sweep points")
    missing = set(ranges) - set(reference)
    if missing:
        raise ValueError(f"reference values missing for {sorted(missing)}")
    # assemble the full evaluation plan first so a batch backend can run
    # it in one pass; order matches the historical nested loops exactly
    plan: List[Tuple[str, float, Dict[str, float]]] = []
    for name, (lo, hi) in ranges.items():
        for i in range(points):
            value = lo + (hi - lo) * i / (points - 1)
            params = dict(reference)
            params[name] = value
            plan.append((name, value, params))
    if runner is not None:
        metrics = runner.run_many([params for _n, _v, params in plan])
    else:
        metrics = [simulate_metric(params) for _n, _v, params in plan]
    curves: Dict[str, OatCurve] = {}
    for (name, value, _params), metric in zip(plan, metrics):
        curves.setdefault(
            name, OatCurve(parameter=name, points=[])
        ).points.append((value, metric))
    return curves


def rank_oat(curves: Dict[str, OatCurve]) -> List[Tuple[str, float]]:
    """Parameters ordered by normalised OAT sensitivity, largest first."""
    return sorted(((name, curve.normalised_sensitivity())
                   for name, curve in curves.items()),
                  key=lambda pair: pair[1], reverse=True)


@dataclass
class RsaResult:
    """Regional sensitivity analysis outcome for one parameter."""

    parameter: str
    ks_distance: float
    behavioural_count: int
    non_behavioural_count: int

    @property
    def identifiable(self) -> bool:
        """Rule of thumb: KS > 0.2 means the data constrain the parameter."""
        return self.ks_distance > 0.2


def regional_sensitivity(calibration: CalibrationResult
                         ) -> Dict[str, RsaResult]:
    """Hornberger–Spear–Young RSA over a calibration's sample.

    Requires both behavioural and non-behavioural samples with finite
    scores (failed simulations are excluded).
    """
    behavioural = calibration.behavioural
    scored = [s for s in calibration.samples
              if s.score != float("-inf")]
    non_behavioural = [s for s in scored if s not in behavioural]
    if not behavioural or not non_behavioural:
        raise ValueError("RSA needs both behavioural and non-behavioural "
                         "samples; adjust the threshold")
    names = behavioural[0].parameters.keys()
    results: Dict[str, RsaResult] = {}
    for name in names:
        good = sorted(s.parameters[name] for s in behavioural)
        bad = sorted(s.parameters[name] for s in non_behavioural)
        results[name] = RsaResult(
            parameter=name,
            ks_distance=_ks_distance(good, bad),
            behavioural_count=len(good),
            non_behavioural_count=len(bad),
        )
    return results


def _ks_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Two-sample Kolmogorov–Smirnov statistic (both inputs sorted)."""
    i = j = 0
    d = 0.0
    na, nb = len(a), len(b)
    while i < na and j < nb:
        if a[i] <= b[j]:
            i += 1
        else:
            j += 1
        d = max(d, abs(i / na - j / nb))
    return d

"""FUSE — Framework for Understanding Structural Errors.

Clark et al. (2008)'s insight, reproduced here in miniature: conceptual
rainfall-runoff models differ mainly in a handful of structural
*decisions* (upper-layer architecture, percolation, baseflow, saturated
area, routing).  Enumerate the decisions and you get a family of
structurally distinct models from one code base — the "multi-model
ensemble FUSE" the paper deploys beside TOPMODEL.

:class:`FuseDecisions` names the choices, :class:`FuseModel` runs one
combination, and :func:`fuse_ensemble` enumerates and runs them all,
yielding the ensemble spread the LEFT widget can draw as uncertainty
bands.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.hydrology.timeseries import TimeSeries

#: Legal values for each structural decision.
DECISION_SPACE: Dict[str, Tuple[str, ...]] = {
    "upper_layer": ("single_state", "tension_free"),
    "percolation": ("linear", "power"),
    "baseflow": ("linear_reservoir", "nonlinear_reservoir"),
    "saturated_area": ("power_law", "linear"),
}


@dataclass(frozen=True)
class FuseDecisions:
    """One combination of structural choices."""

    upper_layer: str = "single_state"
    percolation: str = "linear"
    baseflow: str = "linear_reservoir"
    saturated_area: str = "power_law"

    def __post_init__(self) -> None:
        for name, allowed in DECISION_SPACE.items():
            value = getattr(self, name)
            if value not in allowed:
                raise ValueError(f"{name}={value!r} not in {allowed}")

    def label(self) -> str:
        """Compact structure label, e.g. 'single_state/linear/...'."""
        return "/".join(getattr(self, name) for name in DECISION_SPACE)

    @staticmethod
    def all_combinations() -> List["FuseDecisions"]:
        """Every decision combination (the full ensemble)."""
        names = list(DECISION_SPACE)
        combos = itertools.product(*(DECISION_SPACE[n] for n in names))
        return [FuseDecisions(**dict(zip(names, combo))) for combo in combos]


@dataclass(frozen=True)
class FuseParameters:
    """Calibratable FUSE parameters shared across structures.

    ``smax_upper``/``smax_lower`` — storage capacities (mm).
    ``phi_tension`` — tension-storage fraction of the upper layer.
    ``k_perc``/``c_perc`` — percolation rate (mm/h) and exponent.
    ``k_base``/``n_base`` — baseflow rate constant (1/h) and exponent.
    ``b_sat`` — contributing-area exponent.
    ``routing_shape``/``routing_scale_h`` — gamma routing kernel.
    """

    smax_upper: float = 50.0
    smax_lower: float = 200.0
    phi_tension: float = 0.4
    k_perc: float = 2.0
    c_perc: float = 2.0
    k_base: float = 0.02
    n_base: float = 2.0
    b_sat: float = 1.5
    routing_shape: float = 2.5
    routing_scale_h: float = 2.0

    RANGES = {
        "smax_upper": (10.0, 150.0),
        "smax_lower": (50.0, 500.0),
        "phi_tension": (0.1, 0.9),
        "k_perc": (0.1, 10.0),
        "c_perc": (1.0, 5.0),
        "k_base": (0.001, 0.25),
        "n_base": (1.0, 4.0),
        "b_sat": (0.3, 4.0),
    }

    def validated(self) -> "FuseParameters":
        """Raise ValueError on physically meaningless values."""
        if self.smax_upper <= 0 or self.smax_lower <= 0:
            raise ValueError("storage capacities must be positive")
        if not 0 < self.phi_tension < 1:
            raise ValueError("phi_tension in (0, 1)")
        if self.k_perc <= 0 or self.k_base <= 0:
            raise ValueError("rate constants must be positive")
        if self.routing_shape <= 0 or self.routing_scale_h <= 0:
            raise ValueError("routing kernel parameters must be positive")
        return self

    def with_updates(self, **kwargs) -> "FuseParameters":
        """A copy with some fields replaced."""
        return replace(self, **kwargs).validated()


@dataclass
class FuseResult:
    """Output of one FUSE structure run."""

    flow: TimeSeries
    surface_runoff: TimeSeries
    baseflow: TimeSeries
    decisions: FuseDecisions

    def discharge_m3s(self, area_km2: float) -> TimeSeries:
        """Convert outlet runoff (mm/step) to discharge in m³/s."""
        factor = area_km2 * 1e6 * 1e-3 / self.flow.dt
        return self.flow.map(lambda v: v * factor)


class FuseModel:
    """One structural combination, runnable on a rainfall series."""

    def __init__(self, decisions: Optional[FuseDecisions] = None,
                 dt_hours: float = 1.0):
        if dt_hours <= 0:
            raise ValueError("dt_hours must be positive")
        self.decisions = decisions or FuseDecisions()
        self.dt_hours = dt_hours

    def run(self, rainfall: TimeSeries, pet: Optional[TimeSeries] = None,
            parameters: Optional[FuseParameters] = None) -> FuseResult:
        """Simulate; rainfall/PET in mm/step."""
        params = (parameters or FuseParameters()).validated()
        if pet is not None and len(pet) != len(rainfall):
            raise ValueError("PET series must match rainfall length")
        dt = self.dt_hours
        d = self.decisions

        upper = 0.3 * params.smax_upper
        tension = 0.3 * params.phi_tension * params.smax_upper
        free = 0.0
        lower = 0.3 * params.smax_lower

        surface_out: List[float] = []
        base_out: List[float] = []

        for step in range(len(rainfall)):
            rain = rainfall[step]
            rain = 0.0 if math.isnan(rain) else max(0.0, rain)
            pet_step = 0.0 if pet is None else max(0.0, pet[step])

            # -- saturated contributing area from upper-layer wetness
            if d.upper_layer == "single_state":
                wetness = upper / params.smax_upper
            else:
                wetness = (tension + free) / params.smax_upper
            wetness = min(1.0, max(0.0, wetness))
            if d.saturated_area == "power_law":
                contributing = wetness ** params.b_sat
            else:
                contributing = wetness
            surface = rain * contributing
            infiltration = rain - surface

            # -- upper layer update + ET
            if d.upper_layer == "single_state":
                upper += infiltration
                aet = pet_step * wetness
                upper = max(0.0, upper - aet)
                overflow = max(0.0, upper - params.smax_upper)
                upper -= overflow
                upper_for_perc = upper
            else:
                tension_cap = params.phi_tension * params.smax_upper
                to_tension = min(infiltration, tension_cap - tension)
                tension += to_tension
                free += infiltration - to_tension
                aet = pet_step * (tension / tension_cap if tension_cap else 0.0)
                tension = max(0.0, tension - aet)
                free_cap = params.smax_upper - tension_cap
                overflow = max(0.0, free - free_cap)
                free -= overflow
                upper_for_perc = free
            surface += overflow

            # -- percolation to the lower layer
            if d.percolation == "linear":
                perc = params.k_perc * dt * (
                    upper_for_perc / params.smax_upper)
            else:
                perc = params.k_perc * dt * (
                    (upper_for_perc / params.smax_upper) ** params.c_perc)
            perc = min(perc, upper_for_perc)
            if d.upper_layer == "single_state":
                upper -= perc
            else:
                free -= perc
            lower += perc

            # -- baseflow from the lower layer
            rel_lower = min(1.0, lower / params.smax_lower)
            if d.baseflow == "linear_reservoir":
                baseflow = params.k_base * dt * lower
            else:
                baseflow = (params.k_base * dt * params.smax_lower
                            * rel_lower ** params.n_base)
            baseflow = min(baseflow, lower)
            lower -= baseflow
            lower_overflow = max(0.0, lower - params.smax_lower)
            lower -= lower_overflow
            baseflow += lower_overflow

            surface_out.append(surface)
            base_out.append(baseflow)

        total = [s + b for s, b in zip(surface_out, base_out)]
        routed = gamma_route(total, params.routing_shape,
                             params.routing_scale_h / dt)
        start, series_dt = rainfall.start, rainfall.dt

        def ts(values, name):
            return TimeSeries(start, series_dt, values, units="mm/step",
                              name=name)

        return FuseResult(
            flow=ts(routed, f"fuse:{d.label()}"),
            surface_runoff=ts(surface_out, "surface_runoff"),
            baseflow=ts(base_out, "baseflow"),
            decisions=d,
        )


def gamma_route(flow: Sequence[float], shape: float,
                scale_steps: float, kernel_length: int = 48) -> List[float]:
    """Convolve ``flow`` with a discrete gamma unit hydrograph."""
    if shape <= 0 or scale_steps <= 0:
        raise ValueError("gamma kernel parameters must be positive")
    kernel = []
    for i in range(kernel_length):
        t = i + 0.5
        kernel.append(t ** (shape - 1) * math.exp(-t / scale_steps))
    total = sum(kernel)
    kernel = [k / total for k in kernel]
    out = [0.0] * len(flow)
    for i, q in enumerate(flow):
        if q == 0.0:
            continue
        for j, w in enumerate(kernel):
            if i + j >= len(flow):
                break
            out[i + j] += q * w
    return out


@dataclass
class EnsembleResult:
    """The spread of an ensemble of FUSE structures."""

    members: List[FuseResult]
    mean: TimeSeries
    lower: TimeSeries       # 10th percentile across members
    upper: TimeSeries       # 90th percentile across members

    def member_labels(self) -> List[str]:
        """Structure labels in member order."""
        return [m.decisions.label() for m in self.members]


def fuse_ensemble(rainfall: TimeSeries, pet: Optional[TimeSeries] = None,
                  parameters: Optional[FuseParameters] = None,
                  decisions: Optional[Iterable[FuseDecisions]] = None,
                  dt_hours: float = 1.0) -> EnsembleResult:
    """Run every structure (or a chosen subset) and summarise the spread."""
    combos = list(decisions) if decisions is not None \
        else FuseDecisions.all_combinations()
    if not combos:
        raise ValueError("empty ensemble")
    members = [FuseModel(combo, dt_hours=dt_hours).run(rainfall, pet, parameters)
               for combo in combos]
    n = len(rainfall)
    mean_values, lo_values, hi_values = [], [], []
    for i in range(n):
        column = sorted(m.flow[i] for m in members)
        mean_values.append(sum(column) / len(column))
        lo_values.append(_percentile(column, 10))
        hi_values.append(_percentile(column, 90))
    make = lambda vals, name: TimeSeries(rainfall.start, rainfall.dt, vals,
                                         units="mm/step", name=name)
    return EnsembleResult(
        members=members,
        mean=make(mean_values, "fuse:ensemble-mean"),
        lower=make(lo_values, "fuse:p10"),
        upper=make(hi_values, "fuse:p90"),
    )


def _percentile(ordered: Sequence[float], q: float) -> float:
    if not ordered:
        raise ValueError("empty column")
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[int(rank)]
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac

"""Land-use and management change scenarios.

The LEFT modelling widget offers "four land use and management change
scenarios ... developed with stakeholders ... to illustrate how changes
to land use and land management practices are likely to impact flood
risk at the catchment outlet".  A scenario is a bundle of parameter
transforms plus an optional flow post-process (storage ponds intercept
quick flow); the widget's sliders "default to the settings for each
scenario".

Expected shape (reproduced by ``benchmarks/bench_fig6_scenarios.py``):
soil compaction raises the flood peak, afforestation and storage ponds
lower and delay it, relative to the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.hydrology.timeseries import TimeSeries
from repro.hydrology.topmodel import (
    Topmodel,
    TopmodelParameters,
    TopmodelResult,
)


@dataclass(frozen=True)
class LandUseScenario:
    """One stakeholder-defined scenario.

    ``parameter_updates`` override TOPMODEL parameters;
    ``pond_fraction``/``pond_release`` configure an optional distributed
    storage feature that skims quick flow into ponds and releases it
    slowly (the natural-flood-management measure).
    """

    key: str
    title: str
    description: str
    parameter_updates: Dict[str, float] = field(default_factory=dict)
    pond_fraction: float = 0.0      # share of flow above threshold diverted
    pond_threshold_mm: float = 0.0  # flow above which ponds skim
    pond_release: float = 0.05      # pond drainage fraction per step

    def apply_parameters(self, base: TopmodelParameters) -> TopmodelParameters:
        """The scenario's slider defaults: base parameters + overrides."""
        if not self.parameter_updates:
            return base
        return base.with_updates(**self.parameter_updates)

    def run(self, model: Topmodel, rainfall: TimeSeries,
            pet: Optional[TimeSeries] = None,
            base_parameters: Optional[TopmodelParameters] = None
            ) -> TopmodelResult:
        """Run ``model`` under this scenario."""
        params = self.apply_parameters(base_parameters or TopmodelParameters())
        result = model.run(rainfall, pet, params)
        if self.pond_fraction > 0:
            result = self._attenuate(result)
        return result

    def _attenuate(self, result: TopmodelResult) -> TopmodelResult:
        """Skim high flows into pond storage; release it slowly."""
        store = 0.0
        out: List[float] = []
        for q in result.flow:
            skim = max(0.0, q - self.pond_threshold_mm) * self.pond_fraction
            store += skim
            release = store * self.pond_release
            store -= release
            out.append(q - skim + release)
        attenuated = TimeSeries(result.flow.start, result.flow.dt, out,
                                units=result.flow.units,
                                name=f"{result.flow.name}:{self.key}")
        return TopmodelResult(
            flow=attenuated,
            baseflow=result.baseflow,
            overland=result.overland,
            saturated_fraction=result.saturated_fraction,
            actual_et=result.actual_et,
            final_deficit_mm=result.final_deficit_mm,
            water_balance_error_mm=result.water_balance_error_mm,
        )


#: The four scenarios the widget's top-right buttons select.
STANDARD_SCENARIOS: Dict[str, LandUseScenario] = {
    "baseline": LandUseScenario(
        key="baseline",
        title="Current land use",
        description="Present-day mixed farming and land management.",
    ),
    "afforestation": LandUseScenario(
        key="afforestation",
        title="Upland afforestation",
        description=("Tree planting on the upper catchment: higher canopy "
                     "interception, deeper rooting, better infiltration."),
        parameter_updates={
            "interception_mm": 1.2,
            "srmax": 70.0,
            "infiltration_capacity_mm_h": 80.0,
            "reservoir_k": 0.25,
        },
    ),
    "compaction": LandUseScenario(
        key="compaction",
        title="Intensive grazing / soil compaction",
        description=("Heavier stocking compacts soils: infiltration "
                     "collapses and runoff reaches the channel faster."),
        parameter_updates={
            "infiltration_capacity_mm_h": 6.0,
            "srmax": 25.0,
            "reservoir_k": 0.55,
        },
    ),
    "storage_ponds": LandUseScenario(
        key="storage_ponds",
        title="Runoff attenuation features",
        description=("Distributed storage ponds and leaky barriers skim "
                     "flood-peak flow and release it after the event."),
        pond_fraction=0.5,
        pond_threshold_mm=0.4,
        pond_release=0.04,
    ),
}

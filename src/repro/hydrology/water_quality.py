"""Catchment water quality — the stakeholders' next storyboard, built.

Section V-B closes with stakeholder "enthusiasm ... to develop new tools
based on new storyboards (e.g. what would be the impact of this scenario
on catchment water quality)", and the paper's intro names diffuse
pollution of the North Sea as a motivating question.  This module is
that tool's engine: an export-coefficient + flow-power-law water-quality
model riding on a TOPMODEL flow simulation.

Structure (standard catchment-scale practice):

* **suspended sediment** follows a sediment rating curve
  ``C = a·Q^b`` with supply limitation during long events (first-flush
  exhaustion);
* **nutrients** (N, P) combine a baseflow-borne dissolved component
  (groundwater concentration) and a quickflow-borne particulate
  component scaled by land-use export coefficients;
* land-use scenarios modulate the coefficients the same way they
  modulate the flow model: compaction mobilises sediment, afforestation
  and ponds trap it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.hydrology.timeseries import TimeSeries
from repro.hydrology.topmodel import TopmodelResult


@dataclass(frozen=True)
class WaterQualityParameters:
    """Export and rating-curve coefficients.

    ``sediment_a``/``sediment_b`` — rating curve C = a·Q^b (mg/l per
    (mm/h)^b).  ``supply_mm`` — event sediment supply before exhaustion.
    ``nitrate_baseflow_mgl``/``phosphorus_baseflow_mgl`` — groundwater
    concentrations.  ``nitrate_quickflow_mgl``/``phosphorus_quickflow_mgl``
    — concentrations carried by storm runoff from the land surface.
    """

    sediment_a: float = 45.0
    sediment_b: float = 1.4
    supply_mm: float = 25.0
    nitrate_baseflow_mgl: float = 1.8
    nitrate_quickflow_mgl: float = 6.5
    phosphorus_baseflow_mgl: float = 0.02
    phosphorus_quickflow_mgl: float = 0.35

    def validated(self) -> "WaterQualityParameters":
        """Raise on physically meaningless values."""
        if self.sediment_a <= 0 or self.sediment_b <= 0:
            raise ValueError("sediment rating coefficients must be positive")
        if self.supply_mm <= 0:
            raise ValueError("sediment supply must be positive")
        for name in ("nitrate_baseflow_mgl", "nitrate_quickflow_mgl",
                     "phosphorus_baseflow_mgl", "phosphorus_quickflow_mgl"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        return self

    def with_updates(self, **kwargs) -> "WaterQualityParameters":
        """A copy with some fields replaced."""
        return replace(self, **kwargs).validated()


#: Scenario modifiers: multiplier on (sediment_a, quickflow nutrients).
SCENARIO_QUALITY_FACTORS: Dict[str, Dict[str, float]] = {
    "baseline": {"sediment": 1.0, "nutrients": 1.0},
    # compacted, poached soils shed fines and surface-applied nutrients
    "compaction": {"sediment": 2.6, "nutrients": 1.8},
    # trees stabilise soil and take nutrients up
    "afforestation": {"sediment": 0.45, "nutrients": 0.6},
    # ponds trap particulates; dissolved load mostly passes
    "storage_ponds": {"sediment": 0.55, "nutrients": 0.85},
}


@dataclass
class WaterQualityResult:
    """Concentration and load series for one run."""

    sediment_mgl: TimeSeries
    nitrate_mgl: TimeSeries
    phosphorus_mgl: TimeSeries
    flow: TimeSeries
    scenario: str

    def load_kg(self, series: TimeSeries, area_km2: float) -> float:
        """Total load of a concentration series, kg over the run.

        load = Σ C (mg/l) × Q (mm/step) × area; 1 mm over 1 km² is
        1000 m³, and 1 mg/l = 1 g/m³.
        """
        total = 0.0
        for concentration, q in zip(series, self.flow):
            volume_m3 = q * area_km2 * 1000.0
            total += concentration * volume_m3 / 1000.0  # g -> direct kg
        return total

    def summary(self, area_km2: float) -> Dict[str, float]:
        """Headline numbers for the widget."""
        return {
            "scenario": self.scenario,
            "peak_sediment_mgl": self.sediment_mgl.maximum(),
            "sediment_load_kg": self.load_kg(self.sediment_mgl, area_km2),
            "peak_nitrate_mgl": self.nitrate_mgl.maximum(),
            "nitrate_load_kg": self.load_kg(self.nitrate_mgl, area_km2),
            "peak_phosphorus_mgl": self.phosphorus_mgl.maximum(),
            "phosphorus_load_kg": self.load_kg(self.phosphorus_mgl,
                                               area_km2),
        }


class WaterQualityModel:
    """Concentration model over a TOPMODEL flow result."""

    def __init__(self,
                 parameters: Optional[WaterQualityParameters] = None):
        self.parameters = (parameters or WaterQualityParameters()).validated()

    def run(self, hydrology: TopmodelResult,
            scenario: str = "baseline") -> WaterQualityResult:
        """Compute concentrations for one flow simulation.

        ``scenario`` must be one of :data:`SCENARIO_QUALITY_FACTORS`.
        """
        factors = SCENARIO_QUALITY_FACTORS.get(scenario)
        if factors is None:
            raise ValueError(f"unknown scenario {scenario!r}; choose from "
                             f"{sorted(SCENARIO_QUALITY_FACTORS)}")
        p = self.parameters
        flow = hydrology.flow
        base = hydrology.baseflow
        over = hydrology.overland

        supply = p.supply_mm
        sediment: List[float] = []
        nitrate: List[float] = []
        phosphorus: List[float] = []

        for i in range(len(flow)):
            q = max(0.0, flow[i])
            qb = max(0.0, base[i]) if i < len(base) else 0.0
            qo = max(0.0, over[i]) if i < len(over) else 0.0
            mix_total = qb + qo

            # sediment: rating curve scaled by remaining supply
            supply_factor = supply / p.supply_mm
            concentration = (factors["sediment"] * p.sediment_a
                             * (q ** p.sediment_b) * supply_factor)
            sediment.append(concentration)
            # storm flow depletes the supply; quiescence rebuilds it
            supply = max(0.0, supply - qo * 0.5)
            supply = min(p.supply_mm, supply + 0.01)

            # nutrients: flow-weighted mix of baseflow and quickflow
            if mix_total > 0:
                frac_quick = qo / mix_total
            else:
                frac_quick = 0.0
            nitrate.append(
                p.nitrate_baseflow_mgl * (1 - frac_quick)
                + factors["nutrients"] * p.nitrate_quickflow_mgl * frac_quick)
            phosphorus.append(
                p.phosphorus_baseflow_mgl * (1 - frac_quick)
                + factors["nutrients"] * p.phosphorus_quickflow_mgl
                * frac_quick)

        def ts(values, name, units="mg/l"):
            return TimeSeries(flow.start, flow.dt, values, units=units,
                              name=name)

        return WaterQualityResult(
            sediment_mgl=ts(sediment, f"sediment:{scenario}"),
            nitrate_mgl=ts(nitrate, f"nitrate:{scenario}"),
            phosphorus_mgl=ts(phosphorus, f"phosphorus:{scenario}"),
            flow=flow,
            scenario=scenario,
        )

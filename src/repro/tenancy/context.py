"""Tenant identity: the context object, the header contract, fairness math.

The reproduction models the paper's "widening the circle" estate: one
cloud shared by farmers, flood engineers and the public.  Until this
package every request was a single anonymous principal; a tenant is the
unit the estate is now fair *between*.

Identity rides requests as a plain ``Tenant`` header — deliberately the
same shape as W3C ``traceparent`` baggage (see
:mod:`repro.obs.context`): injected client-side into the headers dict,
extracted server-side at the /v1 boundary, and propagated verbatim by
anything that forwards the request.  Absence of the header is the
pre-tenancy single-principal path and stays bit-identical to it.

:func:`jain_index` is the fairness yardstick the scheduler and the
multi-tenant benchmark share: J(x) = (Σx)² / (n·Σx²), 1.0 when every
tenant gets the same normalized share, → 1/n under perfect capture by
one tenant.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence

#: HTTP header carrying the tenant id end-to-end (case-sensitive, like
#: the transport's other headers).
TENANT_HEADER = "Tenant"

#: The implicit principal when no header / no session tenant is present.
#: Everything pre-tenancy ran as this tenant; keeping it a plain name
#: (rather than ``None`` leaking everywhere) gives the default path a
#: lane, a bucket and a ledger row like anyone else.
DEFAULT_TENANT = "default"

#: Tenant ids are DNS-label-ish: lowercase alphanumerics plus ``-``/``_``,
#: 1..64 chars, starting alphanumeric.  Anything else is a 400 at the
#: boundary, not a new lane in the scheduler.
_TENANT_ID_RE = re.compile(r"^[a-z0-9][a-z0-9_-]{0,63}$")


def valid_tenant_id(raw: object) -> bool:
    """Whether ``raw`` is a well-formed tenant id."""
    return isinstance(raw, str) and bool(_TENANT_ID_RE.match(raw))


@dataclass(frozen=True)
class TenantContext:
    """The resolved identity a request carries through the layers.

    Frozen: a context is resolved once at the boundary and threaded, not
    mutated mid-flight.  ``attributes`` is free-form annotation space
    (display name, organisation) that never affects scheduling.
    """

    tenant_id: str
    weight: float = 1.0
    attributes: Mapping[str, object] = field(default_factory=dict)

    @classmethod
    def anonymous(cls) -> "TenantContext":
        """The single-principal default context."""
        return cls(tenant_id=DEFAULT_TENANT)

    def __post_init__(self):
        if not valid_tenant_id(self.tenant_id):
            raise ValueError(f"invalid tenant id {self.tenant_id!r}")
        if self.weight <= 0:
            raise ValueError("tenant weight must be positive")


def inject_tenant(tenant_id: Optional[str],
                  headers: Optional[Dict[str, str]] = None
                  ) -> Dict[str, str]:
    """Stamp ``tenant_id`` into a headers dict (no-op for ``None``)."""
    headers = dict(headers or {})
    if tenant_id is not None:
        headers[TENANT_HEADER] = tenant_id
    return headers


def extract_tenant(headers: Optional[Mapping[str, str]]) -> Optional[str]:
    """The raw ``Tenant`` header value (unvalidated), or ``None``."""
    if not headers:
        return None
    return headers.get(TENANT_HEADER)


def jain_index(shares: Sequence[float]) -> float:
    """Jain's fairness index over per-tenant normalized shares.

    ``J = (Σx)² / (n · Σx²)`` — scale-free, 1.0 for equal shares,
    1/n when one tenant captures everything.  Empty input and the
    all-zero vector (nobody served anything) both report 1.0: there is
    no inequality to measure.
    """
    xs = [float(x) for x in shares]
    if not xs:
        return 1.0
    total = sum(xs)
    squares = sum(x * x for x in xs)
    if squares == 0.0:
        return 1.0
    return (total * total) / (len(xs) * squares)

"""Deterministic per-tenant token-bucket admission for the /v1 edge.

The classic throttling pattern, made simulation-honest: buckets refill
*lazily* from the simulator clock (``tokens += (now - stamp) * rate``
capped at ``burst``) instead of from a background timer, so admission
decisions are a pure function of the event history — replays are
bit-identical and no wall clock ever leaks in.

:class:`RateLimiter` keeps one :class:`TokenBucket` per tenant,
parameterized from the :class:`~repro.tenancy.registry.TenantRegistry`
(per-tenant ``rate``/``burst`` overriding the limiter defaults).  Every
check returns a :class:`RateDecision` that already knows how to render
itself as HTTP metadata: ``X-RateLimit-Limit`` / ``-Remaining`` /
``-Reset`` on every decision, plus ``Retry-After`` on a denial — the
contract :mod:`repro.services.rest` surfaces with a 429 RFC-7807
problem document.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.sim import Simulator
from repro.tenancy.context import DEFAULT_TENANT
from repro.tenancy.registry import TenantRegistry


class TokenBucket:
    """A lazily refilled token bucket on the simulation clock.

    ``rate`` tokens/second accrue up to ``burst``; the bucket starts
    full (a quiet tenant gets its full burst immediately).
    """

    def __init__(self, sim: Simulator, rate: float, burst: float):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.sim = sim
        self.rate = float(rate)
        self.burst = float(burst)
        self._level = float(burst)
        self._stamp = sim.now

    def _refill(self) -> None:
        now = self.sim.now
        if now > self._stamp:
            self._level = min(self.burst,
                              self._level + (now - self._stamp) * self.rate)
        self._stamp = now

    def level(self) -> float:
        """Tokens available right now."""
        self._refill()
        return self._level

    def try_take(self, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens if available; ``False`` leaves the level."""
        self._refill()
        if self._level + 1e-12 >= cost:
            self._level -= cost
            return True
        return False

    def retry_after(self, cost: float = 1.0) -> float:
        """Seconds until ``cost`` tokens will have accrued."""
        self._refill()
        deficit = cost - self._level
        if deficit <= 0:
            return 0.0
        return deficit / self.rate


@dataclass(frozen=True)
class RateDecision:
    """One admission verdict plus its HTTP surface.

    ``limit`` is the bucket burst (``None`` → this tenant is
    unlimited), ``remaining`` the post-decision token floor, ``reset``
    seconds until the bucket is full again, ``retry_after`` seconds
    until a unit request would pass (0 when allowed).
    """

    allowed: bool
    tenant: str
    limit: Optional[float] = None
    remaining: Optional[float] = None
    reset: Optional[float] = None
    retry_after: float = 0.0

    def headers(self) -> Dict[str, str]:
        """``X-RateLimit-*`` (always) and ``Retry-After`` (on denial)."""
        headers: Dict[str, str] = {}
        if self.limit is not None:
            headers["X-RateLimit-Limit"] = f"{self.limit:g}"
            headers["X-RateLimit-Remaining"] = \
                f"{max(0.0, math.floor(self.remaining or 0.0)):g}"
            headers["X-RateLimit-Reset"] = f"{self.reset or 0.0:g}"
        if not self.allowed:
            headers["Retry-After"] = f"{max(1.0, self.retry_after):g}"
        return headers


class RateLimiter:
    """Per-tenant token buckets with registry-sourced parameters.

    ``default_rate``/``default_burst`` apply to tenants whose spec does
    not set its own; both ``None`` means unregistered tenants are
    unlimited (the bit-identical pre-tenancy default) while registered
    tenants with explicit rates are still enforced.
    """

    def __init__(self, sim: Simulator,
                 registry: Optional[TenantRegistry] = None,
                 default_rate: Optional[float] = None,
                 default_burst: Optional[float] = None,
                 metrics=None):
        self.sim = sim
        self.registry = registry
        self.default_rate = default_rate
        self.default_burst = default_burst
        self.metrics = metrics
        self._buckets: Dict[str, TokenBucket] = {}
        self.allowed = 0
        self.throttled = 0

    def _params(self, tenant_id: str):
        rate, burst = self.default_rate, self.default_burst
        if self.registry is not None:
            spec = self.registry.spec_of(tenant_id)
            rate = spec.rate if spec.rate is not None else rate
            burst = spec.burst if spec.burst is not None else burst
        if rate is None:
            return None
        if burst is None:
            burst = max(1.0, rate)
        return rate, burst

    def bucket(self, tenant_id: Optional[str]) -> Optional[TokenBucket]:
        """The tenant's bucket (created on first use; ``None`` = unlimited)."""
        key = tenant_id if tenant_id is not None else DEFAULT_TENANT
        bucket = self._buckets.get(key)
        if bucket is None:
            params = self._params(key)
            if params is None:
                return None
            bucket = TokenBucket(self.sim, *params)
            self._buckets[key] = bucket
        return bucket

    def check(self, tenant_id: Optional[str],
              cost: float = 1.0) -> RateDecision:
        """Admit or throttle one request of ``cost`` tokens."""
        key = tenant_id if tenant_id is not None else DEFAULT_TENANT
        bucket = self.bucket(key)
        if bucket is None:
            self.allowed += 1
            self._count("allowed", key)
            return RateDecision(allowed=True, tenant=key)
        ok = bucket.try_take(cost)
        remaining = bucket.level()
        reset = (bucket.burst - remaining) / bucket.rate
        if ok:
            self.allowed += 1
            self._count("allowed", key)
            return RateDecision(allowed=True, tenant=key,
                                limit=bucket.burst, remaining=remaining,
                                reset=reset)
        self.throttled += 1
        self._count("throttled", key)
        return RateDecision(allowed=False, tenant=key,
                            limit=bucket.burst, remaining=remaining,
                            reset=reset,
                            retry_after=bucket.retry_after(cost))

    def fill(self, tenant_id: str) -> Optional[float]:
        """Current token level of a tenant's bucket (``None`` = unlimited)."""
        bucket = self.bucket(tenant_id)
        return None if bucket is None else bucket.level()

    def snapshot(self) -> Dict[str, object]:
        """Counters plus per-bucket fill (the admin console's view)."""
        return {
            "allowed": self.allowed,
            "throttled": self.throttled,
            "buckets": {tenant: {"fill": bucket.level(),
                                 "burst": bucket.burst,
                                 "rate": bucket.rate}
                        for tenant, bucket in self._buckets.items()},
        }

    def _count(self, verdict: str, tenant: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(verdict).increment()
            self.metrics.counter(
                f"{verdict}{{tenant={tenant}}}").increment()

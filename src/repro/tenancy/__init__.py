"""First-class tenancy for the shared estate.

The paper's stakeholders — farmers, flood engineers, the public — share
one cloud; this package makes *who is asking* a first-class fact that
every layer can act on:

* :mod:`~repro.tenancy.context` — the ``Tenant`` header contract,
  :class:`TenantContext`, and Jain's fairness index;
* :mod:`~repro.tenancy.registry` — :class:`TenantRegistry` /
  :class:`TenantSpec`: weights, quotas, service accounting;
* :mod:`~repro.tenancy.ratelimit` — the deterministic token-bucket
  :class:`RateLimiter` behind the /v1 429 path.

With no registry installed anywhere (the default) every path in the
estate is pinned bit-identical to the pre-tenancy single-principal
behaviour.
"""

from repro.tenancy.context import (DEFAULT_TENANT, TENANT_HEADER,
                                   TenantContext, extract_tenant,
                                   inject_tenant, jain_index,
                                   valid_tenant_id)
from repro.tenancy.ratelimit import RateDecision, RateLimiter, TokenBucket
from repro.tenancy.registry import TenantRegistry, TenantSpec

__all__ = [
    "DEFAULT_TENANT",
    "TENANT_HEADER",
    "TenantContext",
    "TenantRegistry",
    "TenantSpec",
    "TokenBucket",
    "RateLimiter",
    "RateDecision",
    "extract_tenant",
    "inject_tenant",
    "jain_index",
    "valid_tenant_id",
]

"""The tenant registry: who exists, their weights, quotas and fair share.

One :class:`TenantRegistry` per estate is the single source of truth
the layers consult: the scheduler asks :meth:`weight_of` when building
deficit-round-robin lanes, the capacity ledgers ask :meth:`quota_of`
before granting vcpus, the rate limiter asks :meth:`spec_of` for bucket
parameters, and the admin console asks :meth:`snapshot` for the
``tenants`` status section.

The registry also keeps the *service accounting* that Jain's index is
computed over: every dequeue the Dispatcher performs on behalf of a
tenant ticks :meth:`record_service`, so ``fairness()`` reports how
equally the scheduler actually divided its work, normalized by weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

from repro.tenancy.context import (DEFAULT_TENANT, jain_index,
                                   valid_tenant_id)


@dataclass
class TenantSpec:
    """Per-tenant policy: scheduling weight, rate limit, capacity quota.

    ``weight`` is the DRR quantum (relative service share within a
    priority class).  ``rate``/``burst`` parameterize the edge token
    bucket (``None`` → the limiter's defaults, which may themselves be
    unlimited).  ``vcpu_quota`` caps this tenant's committed vcpus in
    the capacity ledger (``None`` → no cap).
    """

    tenant_id: str
    weight: float = 1.0
    rate: Optional[float] = None
    burst: Optional[float] = None
    vcpu_quota: Optional[float] = None
    display_name: Optional[str] = None

    def __post_init__(self):
        if not valid_tenant_id(self.tenant_id):
            raise ValueError(f"invalid tenant id {self.tenant_id!r}")
        if self.weight <= 0:
            raise ValueError("tenant weight must be positive")
        if self.rate is not None and self.rate <= 0:
            raise ValueError("rate must be positive when set")
        if self.burst is not None and self.burst <= 0:
            raise ValueError("burst must be positive when set")
        if self.vcpu_quota is not None and self.vcpu_quota < 0:
            raise ValueError("vcpu quota must be non-negative")


class TenantRegistry:
    """Registered tenants plus the estate's fairness accounting.

    ``strict`` controls what happens to a request naming an *unknown*
    tenant at the API boundary: permissive (default) lets it through on
    default policy — the widening-the-circle stance, new participants
    are not locked out — while strict mode refuses it (403), for
    estates that provision tenants explicitly.  The anonymous default
    tenant is always known.
    """

    def __init__(self, specs: Optional[Iterable[TenantSpec]] = None,
                 default_weight: float = 1.0, strict: bool = False):
        self.default_weight = default_weight
        self.strict = strict
        self._specs: Dict[str, TenantSpec] = {}
        #: work units served per tenant (dequeues, by default) — the
        #: series Jain's index is computed over.
        self.served: Dict[str, float] = {}
        self.register(TenantSpec(DEFAULT_TENANT, weight=default_weight))
        for spec in (specs or []):
            self.register(spec)

    # -- membership ----------------------------------------------------------

    def register(self, spec: TenantSpec) -> TenantSpec:
        """Add or replace a tenant's policy."""
        self._specs[spec.tenant_id] = spec
        return spec

    def known(self, tenant_id: str) -> bool:
        """Whether the tenant was explicitly registered."""
        return tenant_id in self._specs

    def spec_of(self, tenant_id: Optional[str]) -> TenantSpec:
        """The tenant's policy; unknown/None tenants get default policy."""
        key = tenant_id if tenant_id is not None else DEFAULT_TENANT
        spec = self._specs.get(key)
        if spec is None:
            spec = TenantSpec(key, weight=self.default_weight)
        return spec

    def weight_of(self, tenant_id: Optional[str]) -> float:
        """DRR quantum for the tenant (default weight when unknown)."""
        return self.spec_of(tenant_id).weight

    def quota_of(self, tenant_id: Optional[str]) -> Optional[float]:
        """The tenant's vcpu quota, or ``None`` for uncapped."""
        return self.spec_of(tenant_id).vcpu_quota

    def tenants(self) -> List[str]:
        """Registered tenant ids, registration order."""
        return list(self._specs)

    def __iter__(self) -> Iterator[TenantSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    # -- fairness accounting -------------------------------------------------

    def record_service(self, tenant_id: Optional[str],
                       amount: float = 1.0) -> None:
        """Credit ``amount`` units of service to the tenant."""
        key = tenant_id if tenant_id is not None else DEFAULT_TENANT
        self.served[key] = self.served.get(key, 0.0) + amount

    def fairness(self, tenant_ids: Optional[Iterable[str]] = None) -> float:
        """Jain's index over weight-normalized service shares.

        Restricted to ``tenant_ids`` when given (e.g. only the tenants
        that actually had demand); otherwise every tenant that received
        any service.  Shares are ``served / weight`` so a weight-2
        tenant legitimately served twice as much still scores 1.0.
        """
        ids = list(tenant_ids) if tenant_ids is not None \
            else list(self.served)
        shares = [self.served.get(t, 0.0) / self.weight_of(t) for t in ids]
        return jain_index(shares)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-tenant policy + accounting (the admin console's view)."""
        out: Dict[str, Dict[str, object]] = {}
        for tenant_id, spec in self._specs.items():
            out[tenant_id] = {
                "weight": spec.weight,
                "rate": spec.rate,
                "burst": spec.burst,
                "vcpu_quota": spec.vcpu_quota,
                "served": self.served.get(tenant_id, 0.0),
            }
        for tenant_id, served in self.served.items():
            if tenant_id not in out:
                out[tenant_id] = {"weight": self.default_weight,
                                  "rate": None, "burst": None,
                                  "vcpu_quota": None, "served": served}
        return out

"""The EVOp deployment facade.

Builds and owns every subsystem; ``bootstrap()`` then reproduces the
Figure 1 data flow: model publication into the Model Library, WPS
services managed by the Load Balancer over the hybrid cloud, sensor
networks feeding the catalogue, and the Resource Broker fronting it all
for portal sessions.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

from repro.broker.health import HealthMonitor
from repro.broker.load_balancer import LoadBalancer
from repro.broker.policies import (
    PrivateFirstPolicy,
    PrivateOnlyPolicy,
    PublicOnlyPolicy,
    SchedulingPolicy,
    WorkloadSplitPolicy,
)
from repro.broker.pool import ManagedService
from repro.broker.resource_broker import ResourceBroker
from repro.broker.sessions import SessionTable
from repro.cloud.aws import AwsCloud
from repro.cloud.billing import BillingMeter, PriceTable
from repro.cloud.faults import FaultInjector
from repro.cloud.flavors import MEDIUM, SMALL
from repro.cloud.images import ImageKind, ImageStore
from repro.cloud.multicloud import MultiCloud
from repro.cloud.openstack import OpenStackCloud
from repro.cloud.storage import BlobStore
from repro.core.config import EvopConfig
from repro.data.access import AccessPolicy, GuardedWarehouse, MODEL_RUNNER
from repro.durable.journal import JournalStore
from repro.durable.recovery import RecoveryManager
from repro.data.catalog import AssetCatalog
from repro.data.catchments import Catchment, STUDY_CATCHMENTS
from repro.data.warehouse import DataWarehouse
from repro.data.weather import DesignStorm
from repro.hydrology.timeseries import TimeSeries
from repro.hydrology.topmodel import TopmodelParameters
from repro.modellib.library import CalibrationRecord, ModelLibrary
from repro.modellib.processes import (
    make_fuse_process,
    make_topmodel_process,
    make_water_quality_process,
)
from repro.portal.left import LeftTool
from repro.portal.widgets import WIDGET_RETRY
from repro.obs.hub import obs_of
from repro.obs.slo import SLO
from repro.obs.telemetry import TelemetryPlane
from repro.resilience import ResilientClient
from repro.resilience.client import observed_breakers
from repro.sched import CapacityLedger, ShardedRouter
from repro.services.channels import PushGateway
from repro.services.idempotency import IdempotencyIndex
from repro.services.registry import ServiceRegistry
from repro.services.transport import Network
from repro.sim import MetricsRegistry, RandomStreams, Simulator

_POLICIES: Dict[str, type] = {
    "private-first": PrivateFirstPolicy,
    "workload-split": WorkloadSplitPolicy,
    "private-only": PrivateOnlyPolicy,
    "public-only": PublicOnlyPolicy,
}


class Evop:
    """One simulated EVOp deployment."""

    def __init__(self, config: Optional[EvopConfig] = None):
        self.config = config or EvopConfig()
        self.sim = Simulator()
        self.streams = RandomStreams(self.config.seed)

        # hybrid cloud
        self.meter = BillingMeter(self.sim)
        self.meter.register_provider(
            "openstack", PriceTable(dict(self.config.private_prices)))
        self.meter.register_provider(
            "aws", PriceTable(dict(self.config.public_prices),
                              minimum_billed_seconds=60.0))
        self.private = OpenStackCloud(
            self.sim, total_vcpus=self.config.private_vcpus,
            streams=self.streams, meter=self.meter)
        self.public = AwsCloud(
            self.sim, account_instance_limit=self.config.public_account_limit,
            streams=self.streams, meter=self.meter)
        self.multicloud = MultiCloud()
        self.multicloud.register_compute("private", self.private)
        self.multicloud.register_compute("public", self.public)

        # storage + data
        self.storage = BlobStore(self.sim, name="evop-store")
        self.multicloud.register_blobstore("private", self.storage)
        self.warehouse = DataWarehouse(self.storage)
        self.access = AccessPolicy()
        # the view model executions read data through: delegated compute
        # may use restricted datasets without handing them to end users
        self.model_warehouse = GuardedWarehouse(
            self.warehouse, self.access, MODEL_RUNNER)
        self.catalog = AssetCatalog()

        # services fabric
        self.network = Network(self.sim, streams=self.streams)
        self.registry = ServiceRegistry()

        # resilience fabric: one breaker registry and one client shared
        # by every consumer, so a tripped service×location is respected
        # deployment-wide, not per-widget
        self.resilience_metrics = MetricsRegistry(self.sim,
                                                  namespace="resilience")
        self.breakers = observed_breakers(self.sim,
                                          metrics=self.resilience_metrics)
        # widget-grade patience by default: portal sessions would rather
        # wait out provisioning than surface an error page; tighter
        # per-call timeouts/deadlines still apply where callers set them
        self.resilient = ResilientClient(
            self.sim, self.network, service="wps", policy=WIDGET_RETRY,
            streams=self.streams, breakers=self.breakers,
            metrics=self.resilience_metrics)

        # model library
        self.images = ImageStore()
        self.library = ModelLibrary(self.images)

        # infrastructure manager
        self.sessions = SessionTable(self.sim)
        # the monitor's check/fault counters feed the replica-health SLO
        # — the signal that catches single-replica faults the request-
        # level availability ratio dilutes away once the LB fails over
        self.broker_metrics = MetricsRegistry(self.sim, namespace="broker")
        self.monitor = HealthMonitor(
            self.sim, interval=self.config.health_interval,
            window=self.config.health_window, metrics=self.broker_metrics)
        policy_cls = _POLICIES.get(self.config.policy)
        if policy_cls is None:
            raise ValueError(f"unknown policy {self.config.policy!r}; "
                             f"choose from {sorted(_POLICIES)}")
        self.policy: SchedulingPolicy = policy_cls()
        # the scheduling plane: N per-shard Load Balancers (shard 0 is
        # also exposed as ``self.lb`` for single-shard callers) sharing
        # one capacity ledger, fronted by a rendezvous-hashing router;
        # the ledger and router share one registry so the telemetry
        # plane sees the whole plane as the ``sched`` service
        self.sched_metrics = MetricsRegistry(self.sim, namespace="sched")
        self.ledger = CapacityLedger(self.sim, metrics=self.sched_metrics)
        shard_lbs = [
            LoadBalancer(
                self.sim, self.multicloud, self.network, self.sessions,
                self.policy, monitor=self.monitor, registry=self.registry,
                autoscale_interval=self.config.autoscale_interval,
                breakers=self.breakers, shard_id=shard_id,
                ledger=self.ledger)
            for shard_id in range(self.config.shards)]
        self.lb = shard_lbs[0]
        self.sched = ShardedRouter(self.sim, shard_lbs, ledger=self.ledger,
                                   multicloud=self.multicloud,
                                   metrics=self.sched_metrics)
        self.multicloud.attach_resilience(self.breakers)
        self.injector = FaultInjector(self.sim, [self.private, self.public],
                                      streams=self.streams,
                                      network=self.network,
                                      stores={"private": self.storage})

        # durable execution: every journaled run lives in the blob
        # store, and the recovery manager listens to the same health
        # verdicts that drive LB replacement
        self.journals = JournalStore(self.sim, self.storage)
        self.recovery = RecoveryManager(self.sim, self.journals,
                                        monitor=self.monitor)

        # exactly-once at the API edge: one shared idempotency index so
        # a key admitted by any replica of any service is honoured by
        # all of them — a retried Execute lands on a different replica
        # and still replays the original response
        self.idempotency = IdempotencyIndex(
            self.sim, self.storage.create_container("idempotency"))

        self.rb: Optional[ResourceBroker] = None
        self.left_tools: Dict[str, LeftTool] = {}
        self.truths: Dict[str, Dict[str, TimeSeries]] = {}
        self.wps_services: Dict[str, Any] = {}
        self.telemetry: Optional[TelemetryPlane] = None
        self.dataplane: Optional[Any] = None
        self.tenants: Optional[Any] = None
        self.ratelimit: Optional[Any] = None
        self.read_api: Optional[Any] = None
        self._bootstrapped = False

    # -- lifecycle ------------------------------------------------------------------

    def bootstrap(self) -> "Evop":
        """Publish models, start services, deploy sensors, open the RB."""
        if self._bootstrapped:
            return self
        self._gateway_up()
        for name in self.config.catchments:
            catchment = STUDY_CATCHMENTS[name]
            self._publish_models(catchment)
            self._manage_service(catchment)
            self._instrument_catchment(catchment)
        self._bootstrapped = True
        if self.config.telemetry_interval is not None:
            self.enable_telemetry(self.config.telemetry_interval)
        return self

    def run_until(self, t: float) -> float:
        """Advance the simulation to absolute time ``t``."""
        return self.sim.run(until=t)

    def run_for(self, seconds: float) -> float:
        """Advance the simulation by ``seconds``."""
        return self.sim.run(until=self.sim.now + seconds)

    # -- wiring helpers ----------------------------------------------------------------

    def _gateway_up(self) -> None:
        """Boot the Resource Broker's own host and its push gateway."""
        gateway_image = self.images.create("broker-host", ImageKind.GENERIC,
                                           size_gb=1.5)
        gateway_instance = self.private.launch(gateway_image, SMALL)
        self.sim.run(until=self.sim.now + 120.0)
        gateway = PushGateway(self.sim, gateway_instance,
                              streams=self.streams)
        self.rb = ResourceBroker(self.sim, self.lb, self.sessions, gateway,
                                 scheduler=self.sched)

    def _publish_models(self, catchment: Catchment) -> None:
        def topmodel_factory(c: Catchment):
            return make_topmodel_process(c, warehouse=self.model_warehouse)

        def fuse_factory(c: Catchment):
            return make_fuse_process(c, warehouse=self.model_warehouse)

        self.library.publish_streamlined(
            f"topmodel-{catchment.name}", catchment, topmodel_factory,
            calibration=CalibrationRecord(
                catchment=catchment.name, objective="NSE", score=0.82,
                parameters={"m": 15.0, "td": 0.5}, iterations=500),
            dataset_ids=(f"{catchment.name}/rainfall",
                         f"{catchment.name}/discharge"),
        )
        self.library.publish_streamlined(
            f"fuse-{catchment.name}", catchment, fuse_factory,
            calibration=CalibrationRecord(
                catchment=catchment.name, objective="NSE", score=0.78,
                parameters={"k_base": 0.02}, iterations=500),
            dataset_ids=(f"{catchment.name}/rainfall",),
            bundle_size_gb=7.0,
        )
        # the stakeholders' next storyboard ships on the incubator path -
        # exactly what the paper calls "a useful testing ground"
        def quality_factory(c: Catchment):
            return make_water_quality_process(
                c, warehouse=self.model_warehouse)

        self.library.publish_experimental(
            f"water-quality-{catchment.name}", catchment, quality_factory,
            install_minutes=6.0)

    def service_name(self, catchment_name: str) -> str:
        """The managed-service name of one catchment's LEFT models."""
        return f"left-{catchment_name}"

    def _manage_service(self, catchment: Catchment) -> None:
        status = self.storage.create_container(f"wps-status-{catchment.name}")
        wps = self.library.build_service(
            self.sim, self.service_name(catchment.name),
            [f"topmodel-{catchment.name}", f"fuse-{catchment.name}",
             f"water-quality-{catchment.name}"],
            status, {catchment.name: catchment})
        wps.api.idempotency = self.idempotency
        self.wps_services[catchment.name] = wps
        image = self.library.image_for(f"topmodel-{catchment.name}")

        def make_server(instance):
            return wps.replica(instance).bind(self.network)

        service = ManagedService(
            name=self.service_name(catchment.name),
            image=image,
            flavor=MEDIUM,
            make_server=make_server,
            purpose="modelling",
            sessions_per_replica=self.config.sessions_per_replica,
            min_replicas=self.config.min_replicas,
            max_replicas=self.config.max_replicas,
        )
        self.sched.manage(service)

    def _instrument_catchment(self, catchment: Catchment) -> None:
        """Generate truth series, deploy sensors, fill the catalogue."""
        hours = self.config.truth_days * 24
        generator = catchment.weather_generator(
            self.streams.fork(catchment.name))
        storm = DesignStorm(
            start_hour=self.config.storm_day * 24,
            duration_hours=8,
            total_depth_mm=self.config.storm_depth_mm)
        rain = generator.rainfall_with_storm(hours, storm,
                                             start_day_of_year=330)
        temperature = generator.temperature(hours, start_day_of_year=330)
        flow = catchment.topmodel().run(
            rain, parameters=TopmodelParameters(q0_mm_h=0.3)).flow
        # stage-discharge: a simple rating curve for the level sensor
        level = flow.map(lambda q: 0.3 + 0.45 * math.sqrt(max(0.0, q)))
        turbidity = flow.map(lambda q: 4.0 + 18.0 * q)
        self.truths[catchment.name] = {
            "rainfall": rain, "temperature": temperature,
            "flow": flow, "level": level, "turbidity": turbidity,
        }
        self.warehouse.put_series(f"{catchment.name}/rainfall", rain,
                                  provenance="synthetic truth")
        self.warehouse.put_series(f"{catchment.name}/discharge", flow,
                                  provenance="synthetic truth")

        def lookup(series: TimeSeries):
            last = series.end - series.dt

            def truth(t: float) -> float:
                return series.at(min(max(t, series.start), last))

            return truth

        assert self.rb is not None
        tool = LeftTool(self.sim, catchment, self.catalog, self.network,
                        self.rb, self.service_name(catchment.name),
                        streams=self.streams, resilient=self.resilient)
        tool.deploy_sensors(
            river_level_truth=lookup(level),
            rainfall_truth=lookup(rain),
            temperature_truth=lookup(temperature),
            turbidity_truth=lookup(turbidity),
        )
        tool.build_catalog()
        self.left_tools[catchment.name] = tool

    def expose_sos(self, catchment_name: Optional[str] = None,
                   replicas: int = 1) -> str:
        """Publish a catchment's sensor network as an OGC SOS service.

        Returns the managed-service name.  Deployed on demand (not at
        bootstrap) so minimal deployments stay minimal; the service is
        LB-managed like any other and serves GetCapabilities /
        DescribeSensor / GetObservation for every in-situ instrument.
        """
        if not self._bootstrapped:
            raise RuntimeError("call bootstrap() first")
        name = catchment_name or self.config.catchments[0]
        service_name = f"sos-{name}"
        if any(s.name == service_name for s in self.sched.services()):
            return service_name
        from repro.cloud.flavors import SMALL
        from repro.services.sos import SosService

        tool = self.left_tools[name]
        sos = SosService(self.sim, service_name, tool.sensors)
        sos_image = self.images.create(f"sos-host-{name}", ImageKind.GENERIC,
                                       size_gb=1.2)

        def make_server(instance):
            return sos.replica(instance).bind(self.network)

        self.sched.manage(ManagedService(
            name=service_name,
            image=sos_image,
            flavor=SMALL,
            make_server=make_server,
            purpose="sensor-data",
            sessions_per_replica=32,
            min_replicas=replicas,
        ))
        return service_name

    # -- the CQRS data plane ------------------------------------------------------------

    def enable_dataplane(self, consumer_count: int = 2,
                         window_hours: float = 24.0):
        """Start the event-sourced data plane and wire every producer.

        Sensor ingests, warehouse writes and WPS run lifecycle events
        flow through transactional outboxes into append-only streams;
        competing consumers fold them into the materialized read models
        served by :meth:`expose_read_api`.  Idempotent: returns the
        existing plane on repeat calls.
        """
        if self.dataplane is not None:
            return self.dataplane
        if not self._bootstrapped:
            raise RuntimeError("call bootstrap() first")
        from repro.dataplane import DataPlane

        plane = DataPlane(self.sim, self.storage,
                          consumer_count=consumer_count,
                          window_hours=window_hours)
        self.warehouse.attach_outbox(plane.outbox)
        for tool in self.left_tools.values():
            tool.sensors.attach_outbox(plane.outbox)
        for wps in self.wps_services.values():
            wps.attach_outbox(plane.outbox)
        plane.start()
        if self.telemetry is not None:
            self.telemetry.watch_dataplane(plane)
        self.dataplane = plane
        return plane

    def expose_read_api(self, replicas: int = 1) -> str:
        """Publish the materialized views as the managed ``read`` service.

        Deployed on demand like :meth:`expose_sos`; requires
        :meth:`enable_dataplane` (called implicitly here if needed).
        Returns the managed-service name.
        """
        if not self._bootstrapped:
            raise RuntimeError("call bootstrap() first")
        if self.dataplane is None:
            self.enable_dataplane()
        service_name = "read"
        if any(s.name == service_name for s in self.sched.services()):
            return service_name
        from repro.services.readapi import build_read_api
        from repro.services.rest import RestServer

        api = build_read_api(self.sim, self.dataplane,
                             tenants=self.tenants, limiter=self.ratelimit)
        self.read_api = api
        read_image = self.images.create("read-host", ImageKind.GENERIC,
                                        size_gb=1.0)

        def make_server(instance):
            return RestServer(self.sim, api, instance).bind(self.network)

        self.sched.manage(ManagedService(
            name=service_name,
            image=read_image,
            flavor=SMALL,
            make_server=make_server,
            purpose="read-model",
            sessions_per_replica=64,
            min_replicas=replicas,
        ))
        return service_name

    # -- tenancy ------------------------------------------------------------------------

    def enable_tenancy(self, registry: Optional[Any] = None,
                       specs: Optional[List[Any]] = None,
                       default_rate: Optional[float] = None,
                       default_burst: Optional[float] = None,
                       require_tenant: bool = False):
        """Install the tenancy plane: registry, fair lanes, token buckets.

        One :class:`~repro.tenancy.TenantRegistry` (built from ``specs``
        unless an existing ``registry`` is handed in) becomes the single
        source of truth across the layers:

        * every shard Dispatcher starts weighting its per-class DRR
          lanes by the registry's weights and crediting dequeues back
          into its fairness accounting;
        * the capacity ledger enforces each spec's ``vcpu_quota``;
        * every deployed ``/v1`` API (WPS now, the read API when
          :meth:`expose_read_api` runs) validates the ``Tenant`` header
          and admits through a per-tenant token bucket — exhausted
          buckets answer 429 with ``Retry-After``.

        ``require_tenant`` makes the header mandatory (401 without it);
        the default keeps anonymous traffic on the ``default`` tenant.
        Idempotent: returns the existing registry on repeat calls.
        """
        if self.tenants is not None:
            return self.tenants
        from repro.tenancy import RateLimiter, TenantRegistry

        if registry is None:
            registry = TenantRegistry(specs=specs)
        self.tenants = registry
        self.ratelimit = RateLimiter(
            self.sim, registry, default_rate=default_rate,
            default_burst=default_burst, metrics=self.sched_metrics)
        self.sched.attach_tenants(registry)
        for spec in registry:
            if spec.vcpu_quota is not None:
                self.ledger.set_tenant_quota(spec.tenant_id,
                                             spec.vcpu_quota)
        for wps in self.wps_services.values():
            wps.api.tenants = registry
            wps.api.limiter = self.ratelimit
            wps.api.require_tenant = require_tenant
        if self.read_api is not None:
            self.read_api.tenants = registry
            self.read_api.limiter = self.ratelimit
            self.read_api.require_tenant = require_tenant
        return registry

    # -- observability ------------------------------------------------------------------

    def enable_telemetry(self, interval: float = 5.0) -> TelemetryPlane:
        """Start the telemetry plane: scraper, default SLOs, alert fan-out.

        Registers every subsystem registry under service/location/shard
        labels, adds live saturation probes, and declares the default
        SLOs the fleet is operated against:

        * availability — ≥ 99.9 % of resilient-client *attempts* succeed
          (attempt failures are the early signal: retries and failover
          keep final-status error counters flat while the fleet is
          actually impaired);
        * latency — ≥ 95 % of resilient requests complete within 5 s,
          read exactly from the scraped histogram bucket series;
        * freshness — the scraper's own sample stream never gaps.

        Alert transitions emit ``obs.alert.*`` events and broadcast over
        the RB's push gateway when one is up — operators get paged on
        the same channel fabric that pushes sensor readings to widgets.
        """
        if self.telemetry is not None:
            return self.telemetry

        def notify(payload: Dict[str, object]) -> None:
            if self.rb is not None:
                self.rb.gateway.broadcast({"channel": "ops.alerts",
                                           **payload})

        plane = TelemetryPlane(self.sim, interval=interval, notifier=notify)
        plane.watch_registry(self.resilience_metrics, service="resilience")
        plane.watch_registry(self.sched_metrics, service="sched")
        plane.watch_registry(obs_of(self.sim).api_metrics, service="rest")
        for shard, lb in enumerate(self.sched.lbs):
            plane.watch_registry(lb.metrics, service="lb", shard=str(shard))
        for location in ("private", "public"):
            provider = self.private if location == "private" else self.public
            plane.watch_registry(provider.metrics, service="cloud",
                                 location=location)
        if self.rb is not None:
            plane.watch_registry(self.rb.gateway.metrics, service="channels")
        for name, labels, fn in self.sched.probes():
            plane.watch_probe(name, fn, **labels)
        for location in self.multicloud.locations():
            plane.watch_probe(
                "instances",
                lambda loc=location: float(
                    len(self.multicloud.list_nodes(loc))),
                service="cloud", location=location)
        plane.watch_registry(self.broker_metrics, service="broker")
        plane.watch_probe("sessions.active",
                          lambda: float(len(self.sessions.active())),
                          service="broker")
        hub = obs_of(self.sim)
        plane.watch_probe("events.dropped",
                          lambda: float(hub.events.dropped),
                          service="obs")
        plane.watch_probe("spans.dropped",
                          lambda: float(hub.tracer.dropped),
                          service="obs")
        if self.dataplane is not None:
            plane.watch_dataplane(self.dataplane)

        plane.add_slo(SLO.availability(
            "wps-attempt-availability", total="attempts",
            errors="attempt.failures", target=0.999, service="resilience"))
        # one blackholed replica in a pool of many barely moves request
        # availability once the LB routes around it — but it shows in
        # the health-check fault ratio the moment the monitor sees it.
        # The default burn windows suit sustained request ratios; this
        # ratio is zero in steady state and the LB replaces a faulted
        # replica within a couple of verdicts, so the rule gets one
        # high-sensitivity pair: any fault verdict in the last minute,
        # still visible over five, pages.
        plane.add_slo(SLO.availability(
            "replica-health", total="health.checks",
            errors="health.faults", target=0.999, service="broker"),
            windows=((300.0, 60.0, 2.0),))
        plane.add_slo(SLO.latency(
            "wps-request-latency", metric="request.duration",
            threshold=5.0, target=0.95, service="resilience"))
        plane.add_slo(SLO.freshness(
            "telemetry-freshness", series="scrape.samples",
            max_age=3.0 * interval, target=0.99, service="telemetry"))

        self.telemetry = plane.start()
        return plane

    def expose_observability(self, replicas: int = 1) -> str:
        """Publish the telemetry plane as a managed REST service.

        Deployed on demand like :meth:`expose_sos`; requires
        :meth:`enable_telemetry` (called implicitly here if needed).
        Returns the managed-service name.
        """
        if not self._bootstrapped:
            raise RuntimeError("call bootstrap() first")
        if self.telemetry is None:
            self.enable_telemetry()
        service_name = "observability"
        if any(s.name == service_name for s in self.sched.services()):
            return service_name
        from repro.services.obsapi import build_observability_api
        from repro.services.rest import RestServer

        api = build_observability_api(self.sim, self.telemetry,
                                      obs_of(self.sim).tracer)
        obs_image = self.images.create("observability-host",
                                       ImageKind.GENERIC, size_gb=1.0)

        def make_server(instance):
            return RestServer(self.sim, api, instance).bind(self.network)

        self.sched.manage(ManagedService(
            name=service_name,
            image=obs_image,
            flavor=SMALL,
            make_server=make_server,
            purpose="operations",
            sessions_per_replica=16,
            min_replicas=replicas,
        ))
        return service_name

    # -- conveniences -------------------------------------------------------------------

    def left(self, catchment_name: Optional[str] = None) -> LeftTool:
        """The LEFT tool of one catchment (default: the first configured)."""
        if not self._bootstrapped:
            raise RuntimeError("call bootstrap() first")
        name = catchment_name or self.config.catchments[0]
        return self.left_tools[name]

    def cost_report(self) -> Dict[str, float]:
        """Accrued cost per provider plus the total."""
        report = self.meter.cost_by_provider()
        report["total"] = sum(report.values())
        return report

    def instances_by_location(self) -> Dict[str, int]:
        """Live instance counts per location."""
        return {location: len(self.multicloud.list_nodes(location))
                for location in self.multicloud.locations()}

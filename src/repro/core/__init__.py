"""The EVOp facade: one object wiring the whole observatory.

:class:`~repro.core.evop.Evop` builds Figure 1 end to end — hybrid
cloud, network, storage, Model Library, Infrastructure Manager (RB +
LB), asset catalogue, sensor deployments and the LEFT tools — from an
:class:`~repro.core.config.EvopConfig`.  Examples and benchmarks start
here.
"""

from repro.core.admin import AdminConsole
from repro.core.config import EvopConfig
from repro.core.evop import Evop

__all__ = ["AdminConsole", "Evop", "EvopConfig"]

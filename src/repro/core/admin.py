"""Operator console: the internal-management view of the XaaS estate.

Section IV-B: "Internal access, where management is involved, is vastly
improved as all system resources are accessible in a uniform
machine-readable manner.  This not only simplifies housekeeping tasks
but also enables advanced management tasks to improve availability,
fault recovery, etc."

:class:`AdminConsole` is that uniform view for the operators: one
structured snapshot covering instances per provider, managed services
and their replica health, live sessions, fault history, cloudburst
state and accrued cost — plus a terminal rendering for the humans on
call.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.core.evop import Evop


class AdminConsole:
    """Read-only management view over one deployment."""

    def __init__(self, evop: Evop):
        self.evop = evop

    # -- structured snapshot -------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """The machine-readable estate snapshot."""
        evop = self.evop
        services = []
        for service in evop.sched.services():
            replicas = []
            for instance in service.replicas:
                replicas.append({
                    "id": instance.instance_id,
                    "location": evop.sched.location_of(instance),
                    "state": instance.state.value,
                    "cpu": round(instance.cpu_utilization(), 3),
                    "load": round(instance.load(), 3),
                    "sessions": len(evop.sessions.on_instance(instance)),
                    "verdict": evop.monitor.verdict(instance).value,
                })
            services.append({
                "name": service.name,
                "replicas": replicas,
                "pending_launches": service.pending_launches,
                "min": service.min_replicas,
                "max": service.max_replicas,
            })
        faults = [e for lb in evop.sched.lbs for e in lb.events
                  if e["event"].startswith("fault.")]
        observability: Dict[str, Any] = {"enabled": evop.telemetry is not None}
        if evop.telemetry is not None:
            plane = evop.telemetry.snapshot()
            observability.update({
                "health_score": plane["health_score"],
                "alerts_firing": plane["alerts_firing"],
                "scraper_lag": plane["lag"],
                "series": plane["series"],
                "slos": [
                    {"name": s["slo"], "sli": s["sli"],
                     "target": s["target"], "firing": s["firing"]}
                    for s in evop.telemetry.slo_status()
                ],
            })
        tenancy: Dict[str, Any] = {"enabled": evop.tenants is not None}
        if evop.tenants is not None:
            depths = evop.sched.tenant_depths()
            shed = evop.sched.shed_by_tenant()
            inflight: Dict[str, int] = {}
            for session in evop.sessions.active():
                tenant = session.tenant or "default"
                inflight[tenant] = inflight.get(tenant, 0) + 1
            buckets = (evop.ratelimit.snapshot()["buckets"]
                       if evop.ratelimit is not None else {})
            per_tenant: Dict[str, Any] = {}
            for tenant_id, policy in evop.tenants.snapshot().items():
                per_tenant[tenant_id] = {
                    "weight": policy["weight"],
                    "served": policy["served"],
                    "in_flight": inflight.get(tenant_id, 0),
                    "queued": depths.get(tenant_id, 0),
                    "shed": shed.get(tenant_id, 0),
                    "bucket": buckets.get(tenant_id),
                }
            tenancy.update({
                "fairness": round(evop.tenants.fairness(), 4),
                "quota_committed": evop.ledger.committed_by_tenant(),
                "tenants": per_tenant,
            })
        return {
            "time": evop.sim.now,
            "instances": evop.instances_by_location(),
            "cloudbursting": evop.sched.cloudbursting,
            "scheduling": {
                "shards": evop.sched.shards,
                "queue_depths": evop.sched.depths(),
            },
            "tenancy": tenancy,
            "observability": observability,
            "services": services,
            "sessions": {
                "active": len(evop.sessions.active()),
                "waiting": len(evop.sessions.waiting()),
                "total_ever": len(evop.sessions.all()),
            },
            "faults": {
                "detected": sum(1 for e in faults
                                if e["event"] == "fault.detected"),
                "recent": faults[-5:],
            },
            "cost": evop.cost_report(),
            "registry": [
                {"name": r.name, "address": r.address}
                for r in evop.registry.all()
            ],
            "models": [e.name for e in evop.library.list()],
        }

    def unhealthy_replicas(self) -> List[Dict[str, Any]]:
        """Replicas whose current verdict is not healthy."""
        out = []
        for service in self.evop.sched.services():
            for instance in service.replicas:
                verdict = self.evop.monitor.verdict(instance)
                if verdict.value != "healthy":
                    out.append({"service": service.name,
                                "id": instance.instance_id,
                                "verdict": verdict.value})
        return out

    # -- human rendering --------------------------------------------------------

    def render(self) -> str:
        """The on-call terminal view."""
        snapshot = self.status()
        lines = [
            f"EVOp estate @ t={snapshot['time']:.0f}s  "
            f"cloudbursting={'YES' if snapshot['cloudbursting'] else 'no'}  "
            f"cost=${snapshot['cost']['total']:.3f}",
            f"instances: " + "  ".join(
                f"{loc}={n}" for loc, n in snapshot["instances"].items()),
            f"sessions: {snapshot['sessions']['active']} active, "
            f"{snapshot['sessions']['waiting']} waiting",
        ]
        for service in snapshot["services"]:
            lines.append(f"service {service['name']} "
                         f"(+{service['pending_launches']} booting):")
            for replica in service["replicas"]:
                lines.append(
                    f"  {replica['id']:12s} {replica['location']:8s} "
                    f"{replica['state']:10s} cpu={replica['cpu']:.0%} "
                    f"sessions={replica['sessions']} "
                    f"verdict={replica['verdict']}")
        if snapshot["faults"]["detected"]:
            lines.append(f"faults detected: {snapshot['faults']['detected']}")
        tenancy = snapshot["tenancy"]
        if tenancy["enabled"]:
            lines.append(f"tenants: fairness={tenancy['fairness']:.3f}")
            for tenant_id, row in tenancy["tenants"].items():
                bucket = row["bucket"]
                fill = ("unlimited" if bucket is None
                        else f"{bucket['fill']:.0f}/{bucket['burst']:.0f}")
                lines.append(
                    f"  {tenant_id:16s} w={row['weight']:g} "
                    f"inflight={row['in_flight']} queued={row['queued']} "
                    f"shed={row['shed']} served={row['served']:g} "
                    f"bucket={fill}")
        obs = snapshot["observability"]
        if obs["enabled"]:
            lag = obs["scraper_lag"]
            lines.append(
                f"observability: health={obs['health_score']:.0f}/100  "
                f"series={obs['series']}  "
                f"lag={'n/a' if lag is None else f'{lag:.0f}s'}")
            for slo in obs["slos"]:
                sli = slo["sli"]
                lines.append(
                    f"  slo {slo['name']:28s} "
                    f"sli={'n/a' if sli is None else f'{sli:.4f}'} "
                    f"target={slo['target']:.3f}"
                    f"{'  FIRING' if slo['firing'] else ''}")
            if obs["alerts_firing"]:
                lines.append("alerts firing: "
                             + ", ".join(obs["alerts_firing"]))
        return "\n".join(lines)

"""Configuration of an EVOp deployment."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class EvopConfig:
    """Tunables of the simulated deployment.

    The defaults describe the pilot: a modest university OpenStack pool,
    an unbounded AWS account, private-first scheduling, and the Morland
    catchment instrumented for LEFT.
    """

    seed: int = 42
    private_vcpus: int = 16
    public_account_limit: Optional[int] = None
    policy: str = "private-first"   # see repro.broker.policies
    autoscale_interval: float = 15.0
    health_interval: float = 5.0
    health_window: int = 3
    sessions_per_replica: int = 8
    min_replicas: int = 1
    max_replicas: int = 64
    #: control-plane shards in the scheduling plane (repro.sched); 1
    #: keeps the single-LB behaviour, N>1 rendezvous-hashes sessions
    #: and runs across N slimmed per-shard Load Balancers
    shards: int = 1
    #: scrape interval (simulated seconds) of the telemetry plane; None
    #: leaves telemetry off until enable_telemetry() is called
    telemetry_interval: Optional[float] = None
    catchments: Tuple[str, ...] = ("morland",)
    truth_days: int = 30            # horizon of the synthetic sensor truths
    storm_day: int = 14             # design storm injected mid-horizon
    storm_depth_mm: float = 60.0
    #: hourly prices per flavor, private cloud (amortised energy cost)
    private_prices: Dict[str, float] = field(default_factory=lambda: {
        "small": 0.02, "medium": 0.04, "large": 0.08})
    #: hourly prices per flavor, public cloud (on-demand)
    public_prices: Dict[str, float] = field(default_factory=lambda: {
        "small": 0.05, "medium": 0.10, "large": 0.20})

    def __post_init__(self) -> None:
        if self.private_vcpus <= 0:
            raise ValueError("private_vcpus must be positive")
        if self.truth_days <= 0 or not 0 <= self.storm_day < self.truth_days:
            raise ValueError("storm_day must fall inside truth_days")
        if self.sessions_per_replica <= 0:
            raise ValueError("sessions_per_replica must be positive")
        if self.shards <= 0:
            raise ValueError("shards must be positive")
        if self.telemetry_interval is not None \
                and self.telemetry_interval <= 0:
            raise ValueError("telemetry_interval must be positive")

"""The shared ensemble runner every analysis path funnels through.

Calibration, OAT sensitivity, regional sensitivity and GLUE all reduce
to the same primitive — "evaluate this model for each of these parameter
sets" — and before this module each of them re-ran the model from
scratch.  :class:`EnsembleRunner` is that primitive made shared: one
``simulate`` callable, one content-addressed
:class:`~repro.perf.runcache.RunCache`, and an opt-in
``concurrent.futures`` parallel backend whose output is merged back in
input order so parallel and serial runs are bit-identical.

``simulate`` must be a pure function of its parameter dict (every model
binding in :mod:`repro.hydrology` is); deterministic *failures* are as
cacheable as results, so a parameter draw that blows the model up is
captured as a :class:`RunFailure` once and never re-raised from compute.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.perf.runcache import RunCache

#: Exception families a model evaluation may deterministically raise for
#: a bad parameter draw — information (a non-behavioural region), not an
#: error.  Matches the calibrator's historical tolerance.
CAPTURED_ERRORS = (ValueError, ArithmeticError)

#: The evaluation backends ``EnsembleRunner`` can select between.
BACKENDS = ("scalar", "vector", "process-pool")


def _eval_batch_chunk(batch: Callable[[Sequence[Dict[str, float]]], list],
                      capture_errors: bool,
                      chunk: Sequence[Dict[str, float]]) -> List[Any]:
    """Evaluate one chunk through a batch callable.

    Module-level (not a closure) so the process-pool backend can pickle
    it.  With ``capture_errors``, a deterministic failure anywhere in
    the chunk triggers an item-by-item retry so one bad draw yields one
    :class:`RunFailure` instead of poisoning its whole chunk — the same
    per-item semantics as the scalar backend.
    """
    if not capture_errors:
        return list(batch(chunk))
    try:
        return list(batch(chunk))
    except CAPTURED_ERRORS:
        out: List[Any] = []
        for params in chunk:
            try:
                out.append(batch([params])[0])
            except CAPTURED_ERRORS as err:
                out.append(RunFailure.of(err))
        return out


@dataclass(frozen=True)
class RunFailure:
    """A deterministic simulation failure, captured and cacheable."""

    error_type: str
    message: str

    @classmethod
    def of(cls, error: BaseException) -> "RunFailure":
        """Wrap an exception."""
        return cls(error_type=type(error).__name__, message=str(error))


class EnsembleRunner:
    """Runs one model over many parameter sets, cached and optionally
    parallel.

    ``model_id`` and ``forcing`` scope the cache keys (same scheme as
    the workflow stage cache: model id + canonical parameters + forcing
    digest), so one :class:`RunCache` can safely back many runners.
    ``workers > 1`` enables a thread-pool backend; results are merged in
    input order, so the output sequence is identical to a serial run.
    ``sim`` (optional) attaches spans/events to that simulator's
    observability hub so cache behaviour shows up in traces.
    ``scheduler`` (optional, requires ``sim``) is a
    :class:`~repro.sched.router.ShardedRouter`; each batch is then
    scoped as a BATCH-class submission on the scheduling plane, so
    sweeps share the substrate — and its accounting — with portal
    sessions and workflow stages.  Results are unchanged either way.

    ``backend`` selects how cache misses are computed — ``"scalar"``
    (per-set ``simulate`` calls, threaded when ``workers > 1``),
    ``"vector"`` (all misses in one call to ``batch``, e.g. the SoA
    TOPMODEL kernel), or ``"process-pool"`` (misses chunked into
    ``chunk_size``-set slices, in input order, across a
    ``ProcessPoolExecutor`` of ``workers`` processes; chunk results are
    merged in chunk order, so output order is deterministic).  Cache
    keys never include the backend, so a warm cache populated by one
    backend serves every other.  ``batch`` must map a sequence of
    parameter dicts to a list of results in input order; when it is
    ``None`` — or advertises ``vectorized = False`` (NumPy missing) —
    the runner quietly falls back to the scalar backend.
    """

    def __init__(self, simulate: Callable[[Dict[str, float]], Any],
                 model_id: str = "model", forcing: str = "",
                 cache: Optional[RunCache] = None,
                 workers: int = 1, sim=None, scheduler=None,
                 backend: str = "scalar",
                 batch: Optional[Callable[[Sequence[Dict[str, float]]],
                                          list]] = None,
                 chunk_size: int = 64):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; "
                             f"expected one of {BACKENDS}")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.simulate = simulate
        self.model_id = model_id
        self.forcing = forcing
        self.cache = cache
        self.workers = workers
        self.sim = sim
        self.scheduler = scheduler if sim is not None else None
        self.backend = backend
        self.batch = batch
        self.chunk_size = chunk_size
        self.backend_runs = {name: 0 for name in BACKENDS}
        self.chunks_dispatched = 0

    def resolve_backend(self) -> str:
        """The backend ``run_many`` will actually use.

        Falls back to ``"scalar"`` when no batch callable is bound or
        the callable advertises that vectorization is unavailable
        (``vectorized = False``, e.g. ``TopmodelEnsemble`` without
        NumPy), so selecting ``backend="vector"`` is always safe.
        """
        if self.backend == "scalar" or self.batch is None:
            return "scalar"
        # ``batch`` is typically a bound method (TopmodelEnsemble.batch)
        # whose ``vectorized`` flag lives on the instance behind it
        owner = getattr(self.batch, "__self__", None)
        flag = getattr(self.batch, "vectorized",
                       getattr(owner, "vectorized", True))
        if not flag:
            return "scalar"
        return self.backend

    # -- single evaluation --------------------------------------------------

    def key_of(self, parameters: Dict[str, float]) -> str:
        """The content-addressed cache key of one parameter set."""
        return RunCache.key_of(self.model_id, parameters, self.forcing)

    def run_one(self, parameters: Dict[str, float],
                capture_errors: bool = False) -> Any:
        """Evaluate one parameter set, consulting the cache.

        With ``capture_errors``, deterministic model failures come back
        as :class:`RunFailure` values (and are cached as such) instead
        of raising — a cache hit on a failure therefore reproduces the
        failure without re-running the model.
        """
        if self.cache is None:
            return self._evaluate(parameters, capture_errors)
        key = self.key_of(parameters)
        found, value = self.cache.lookup(key)
        if found:
            if isinstance(value, RunFailure) and not capture_errors:
                raise ValueError(
                    f"cached run failed: {value.error_type}: {value.message}")
            return value
        value = self._evaluate(parameters, capture_errors)
        self.cache.store(key, value)
        return value

    # -- batch evaluation ---------------------------------------------------

    def run_many(self, parameter_sets: Sequence[Dict[str, float]],
                 capture_errors: bool = False) -> List[Any]:
        """Evaluate a batch; output order always matches input order.

        The serial and parallel backends return bit-identical sequences:
        the thread pool only reorders *computation*, never results, and
        cache stores happen in first-occurrence order.
        """
        from contextlib import ExitStack
        span = None
        backend = self.resolve_backend()
        with ExitStack() as scope:
            if self.scheduler is not None:
                scope.enter_context(self.scheduler.batch_submission(
                    self.model_id, len(parameter_sets), self.workers))
            if self.sim is not None:
                from repro.obs.hub import obs_of
                hub = obs_of(self.sim)
                hits_before = self.cache.hits if self.cache else 0
                span = hub.tracer.start_span(
                    f"ensemble.run {self.model_id}", kind="perf",
                    attributes={"runs": len(parameter_sets),
                                "workers": self.workers,
                                "backend": backend})
            try:
                if backend != "scalar":
                    results = self._run_batched(parameter_sets,
                                                capture_errors, backend)
                elif self.workers == 1 or len(parameter_sets) < 2:
                    results = [self.run_one(p, capture_errors)
                               for p in parameter_sets]
                else:
                    results = self._run_parallel(parameter_sets,
                                                 capture_errors)
            finally:
                if span is not None:
                    if self.cache is not None:
                        span.set_attribute(
                            "cache_hits", self.cache.hits - hits_before)
                    span.finish()
                    hub.events.emit("perf.ensemble.batch",
                                    model=self.model_id,
                                    runs=len(parameter_sets),
                                    workers=self.workers,
                                    backend=backend)
        return results

    def _run_parallel(self, parameter_sets: Sequence[Dict[str, float]],
                      capture_errors: bool) -> List[Any]:
        if self.cache is None:
            # no cache: evaluate everything concurrently, merge by index
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                return list(pool.map(
                    lambda p: self._evaluate(p, capture_errors),
                    parameter_sets))
        # resolve hits up front; compute each unique miss exactly once
        keys = [self.key_of(p) for p in parameter_sets]
        resolved: Dict[str, Any] = {}
        seen = set()
        miss_keys: List[str] = []
        miss_params: List[Dict[str, float]] = []
        for key, params in zip(keys, parameter_sets):
            if key in seen:
                continue
            seen.add(key)
            found, value = self.cache.lookup(key)
            if found:
                resolved[key] = value
            else:
                miss_keys.append(key)
                miss_params.append(params)
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            computed = list(pool.map(
                lambda p: self._evaluate(p, capture_errors), miss_params))
        # store in first-occurrence order: the deterministic merge
        for key, value in zip(miss_keys, computed):
            self.cache.store(key, value)
            resolved[key] = value
        out = []
        for key in keys:
            value = resolved[key]
            if isinstance(value, RunFailure) and not capture_errors:
                raise ValueError(
                    f"cached run failed: {value.error_type}: {value.message}")
            out.append(value)
        return out

    def _run_batched(self, parameter_sets: Sequence[Dict[str, float]],
                     capture_errors: bool, backend: str) -> List[Any]:
        """Vector / process-pool evaluation with the same cache
        discipline as ``_run_parallel``: hits resolved up front, each
        unique miss computed exactly once, stores in first-occurrence
        order, outputs merged back to input order."""
        if self.cache is None:
            resolved = None
            miss_keys: List[str] = []
            miss_params = list(parameter_sets)
        else:
            keys = [self.key_of(p) for p in parameter_sets]
            resolved = {}
            seen = set()
            miss_keys = []
            miss_params = []
            for key, params in zip(keys, parameter_sets):
                if key in seen:
                    continue
                seen.add(key)
                found, value = self.cache.lookup(key)
                if found:
                    resolved[key] = value
                else:
                    miss_keys.append(key)
                    miss_params.append(params)

        computed = self._compute_batch(miss_params, capture_errors,
                                       backend)
        self.backend_runs[backend] += len(miss_params)

        if resolved is None:
            out = computed
        else:
            for key, value in zip(miss_keys, computed):
                self.cache.store(key, value)
                resolved[key] = value
            out = [resolved[key] for key in keys]
        for value in out:
            if isinstance(value, RunFailure) and not capture_errors:
                raise ValueError(
                    f"cached run failed: {value.error_type}: "
                    f"{value.message}")
        return out

    def _compute_batch(self, miss_params: Sequence[Dict[str, float]],
                       capture_errors: bool, backend: str) -> List[Any]:
        if not miss_params:
            return []
        if backend == "vector":
            self.chunks_dispatched += 1
            return _eval_batch_chunk(self.batch, capture_errors,
                                     miss_params)
        # process-pool: fixed-size chunks in input order; pool.map
        # preserves submission order, so the merged result — and, by
        # the kernel's chunk invariance, every bit of it — matches the
        # single-batch vector backend
        chunks = [list(miss_params[i:i + self.chunk_size])
                  for i in range(0, len(miss_params), self.chunk_size)]
        self.chunks_dispatched += len(chunks)
        evaluate = partial(_eval_batch_chunk, self.batch, capture_errors)
        if len(chunks) == 1:
            return evaluate(chunks[0])
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            computed: List[Any] = []
            for chunk_result in pool.map(evaluate, chunks):
                computed.extend(chunk_result)
        return computed

    def _evaluate(self, parameters: Dict[str, float],
                  capture_errors: bool) -> Any:
        self.backend_runs["scalar"] += 1
        if not capture_errors:
            return self.simulate(parameters)
        try:
            return self.simulate(parameters)
        except CAPTURED_ERRORS as err:
            return RunFailure.of(err)

    def stats(self) -> Dict[str, float]:
        """Cache stats plus per-backend evaluation counters.

        The ``runs{backend=…}`` keys count model evaluations actually
        computed by each backend (cache hits excluded), matching the
        label style of the telemetry plane so
        :meth:`~repro.obs.telemetry.TelemetryPlane.watch_ensemble_runner`
        can scrape them directly.
        """
        if self.cache is None:
            stats = {"hits": 0, "misses": 0, "evictions": 0,
                     "entries": 0, "hit_rate": 0.0}
        else:
            stats = self.cache.stats()
        for name in BACKENDS:
            stats[f"runs{{backend={name}}}"] = self.backend_runs[name]
        stats["chunks_dispatched"] = self.chunks_dispatched
        stats["chunk_size"] = self.chunk_size
        stats["pool_workers"] = (
            self.workers if self.backend == "process-pool" else 0)
        return stats

    # -- durable execution ---------------------------------------------------

    def durable_sweep(self, store, sweep_id: str,
                      checkpoint_every: int = 50, effects=None,
                      owner: str = "sweep-executor"):
        """A journaled, checkpointed sweep backed by this runner.

        ``store`` is a :class:`~repro.durable.journal.JournalStore`;
        the returned :class:`~repro.durable.ensemble.DurableSweep`
        checkpoints every ``checkpoint_every`` completed parameter sets
        and (with an ``effects`` container) publishes each result under
        its content-addressed run key exactly once across crashes.
        """
        from repro.durable.ensemble import DurableSweep
        return DurableSweep(self, store, sweep_id,
                            checkpoint_every=checkpoint_every,
                            effects=effects, owner=owner)

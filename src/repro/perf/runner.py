"""The shared ensemble runner every analysis path funnels through.

Calibration, OAT sensitivity, regional sensitivity and GLUE all reduce
to the same primitive — "evaluate this model for each of these parameter
sets" — and before this module each of them re-ran the model from
scratch.  :class:`EnsembleRunner` is that primitive made shared: one
``simulate`` callable, one content-addressed
:class:`~repro.perf.runcache.RunCache`, and an opt-in
``concurrent.futures`` parallel backend whose output is merged back in
input order so parallel and serial runs are bit-identical.

``simulate`` must be a pure function of its parameter dict (every model
binding in :mod:`repro.hydrology` is); deterministic *failures* are as
cacheable as results, so a parameter draw that blows the model up is
captured as a :class:`RunFailure` once and never re-raised from compute.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.perf.runcache import RunCache

#: Exception families a model evaluation may deterministically raise for
#: a bad parameter draw — information (a non-behavioural region), not an
#: error.  Matches the calibrator's historical tolerance.
CAPTURED_ERRORS = (ValueError, ArithmeticError)


@dataclass(frozen=True)
class RunFailure:
    """A deterministic simulation failure, captured and cacheable."""

    error_type: str
    message: str

    @classmethod
    def of(cls, error: BaseException) -> "RunFailure":
        """Wrap an exception."""
        return cls(error_type=type(error).__name__, message=str(error))


class EnsembleRunner:
    """Runs one model over many parameter sets, cached and optionally
    parallel.

    ``model_id`` and ``forcing`` scope the cache keys (same scheme as
    the workflow stage cache: model id + canonical parameters + forcing
    digest), so one :class:`RunCache` can safely back many runners.
    ``workers > 1`` enables a thread-pool backend; results are merged in
    input order, so the output sequence is identical to a serial run.
    ``sim`` (optional) attaches spans/events to that simulator's
    observability hub so cache behaviour shows up in traces.
    ``scheduler`` (optional, requires ``sim``) is a
    :class:`~repro.sched.router.ShardedRouter`; each batch is then
    scoped as a BATCH-class submission on the scheduling plane, so
    sweeps share the substrate — and its accounting — with portal
    sessions and workflow stages.  Results are unchanged either way.
    """

    def __init__(self, simulate: Callable[[Dict[str, float]], Any],
                 model_id: str = "model", forcing: str = "",
                 cache: Optional[RunCache] = None,
                 workers: int = 1, sim=None, scheduler=None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.simulate = simulate
        self.model_id = model_id
        self.forcing = forcing
        self.cache = cache
        self.workers = workers
        self.sim = sim
        self.scheduler = scheduler if sim is not None else None

    # -- single evaluation --------------------------------------------------

    def key_of(self, parameters: Dict[str, float]) -> str:
        """The content-addressed cache key of one parameter set."""
        return RunCache.key_of(self.model_id, parameters, self.forcing)

    def run_one(self, parameters: Dict[str, float],
                capture_errors: bool = False) -> Any:
        """Evaluate one parameter set, consulting the cache.

        With ``capture_errors``, deterministic model failures come back
        as :class:`RunFailure` values (and are cached as such) instead
        of raising — a cache hit on a failure therefore reproduces the
        failure without re-running the model.
        """
        if self.cache is None:
            return self._evaluate(parameters, capture_errors)
        key = self.key_of(parameters)
        found, value = self.cache.lookup(key)
        if found:
            if isinstance(value, RunFailure) and not capture_errors:
                raise ValueError(
                    f"cached run failed: {value.error_type}: {value.message}")
            return value
        value = self._evaluate(parameters, capture_errors)
        self.cache.store(key, value)
        return value

    # -- batch evaluation ---------------------------------------------------

    def run_many(self, parameter_sets: Sequence[Dict[str, float]],
                 capture_errors: bool = False) -> List[Any]:
        """Evaluate a batch; output order always matches input order.

        The serial and parallel backends return bit-identical sequences:
        the thread pool only reorders *computation*, never results, and
        cache stores happen in first-occurrence order.
        """
        from contextlib import ExitStack
        span = None
        with ExitStack() as scope:
            if self.scheduler is not None:
                scope.enter_context(self.scheduler.batch_submission(
                    self.model_id, len(parameter_sets), self.workers))
            if self.sim is not None:
                from repro.obs.hub import obs_of
                hub = obs_of(self.sim)
                hits_before = self.cache.hits if self.cache else 0
                span = hub.tracer.start_span(
                    f"ensemble.run {self.model_id}", kind="perf",
                    attributes={"runs": len(parameter_sets),
                                "workers": self.workers})
            try:
                if self.workers == 1 or len(parameter_sets) < 2:
                    results = [self.run_one(p, capture_errors)
                               for p in parameter_sets]
                else:
                    results = self._run_parallel(parameter_sets,
                                                 capture_errors)
            finally:
                if span is not None:
                    if self.cache is not None:
                        span.set_attribute(
                            "cache_hits", self.cache.hits - hits_before)
                    span.finish()
                    hub.events.emit("perf.ensemble.batch",
                                    model=self.model_id,
                                    runs=len(parameter_sets),
                                    workers=self.workers)
        return results

    def _run_parallel(self, parameter_sets: Sequence[Dict[str, float]],
                      capture_errors: bool) -> List[Any]:
        if self.cache is None:
            # no cache: evaluate everything concurrently, merge by index
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                return list(pool.map(
                    lambda p: self._evaluate(p, capture_errors),
                    parameter_sets))
        # resolve hits up front; compute each unique miss exactly once
        keys = [self.key_of(p) for p in parameter_sets]
        resolved: Dict[str, Any] = {}
        seen = set()
        miss_keys: List[str] = []
        miss_params: List[Dict[str, float]] = []
        for key, params in zip(keys, parameter_sets):
            if key in seen:
                continue
            seen.add(key)
            found, value = self.cache.lookup(key)
            if found:
                resolved[key] = value
            else:
                miss_keys.append(key)
                miss_params.append(params)
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            computed = list(pool.map(
                lambda p: self._evaluate(p, capture_errors), miss_params))
        # store in first-occurrence order: the deterministic merge
        for key, value in zip(miss_keys, computed):
            self.cache.store(key, value)
            resolved[key] = value
        out = []
        for key in keys:
            value = resolved[key]
            if isinstance(value, RunFailure) and not capture_errors:
                raise ValueError(
                    f"cached run failed: {value.error_type}: {value.message}")
            out.append(value)
        return out

    def _evaluate(self, parameters: Dict[str, float],
                  capture_errors: bool) -> Any:
        if not capture_errors:
            return self.simulate(parameters)
        try:
            return self.simulate(parameters)
        except CAPTURED_ERRORS as err:
            return RunFailure.of(err)

    def stats(self) -> Dict[str, float]:
        """The backing cache's stats (zeros when uncached)."""
        if self.cache is None:
            return {"hits": 0, "misses": 0, "evictions": 0,
                    "entries": 0, "hit_rate": 0.0}
        return self.cache.stats()

    # -- durable execution ---------------------------------------------------

    def durable_sweep(self, store, sweep_id: str,
                      checkpoint_every: int = 50, effects=None,
                      owner: str = "sweep-executor"):
        """A journaled, checkpointed sweep backed by this runner.

        ``store`` is a :class:`~repro.durable.journal.JournalStore`;
        the returned :class:`~repro.durable.ensemble.DurableSweep`
        checkpoints every ``checkpoint_every`` completed parameter sets
        and (with an ``effects`` container) publishes each result under
        its content-addressed run key exactly once across crashes.
        """
        from repro.durable.ensemble import DurableSweep
        return DurableSweep(self, store, sweep_id,
                            checkpoint_every=checkpoint_every,
                            effects=effects, owner=owner)

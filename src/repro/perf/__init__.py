"""The model-run fast path: shared ensemble runner and run cache.

The paper's "models on tap" promise means thousands of repeated model
evaluations per portal interaction (GLUE bounds, slider sweeps,
calibration refreshes).  This package is the shared machinery that makes
those evaluations cheap:

* :class:`~repro.perf.runcache.RunCache` — content-addressed (model id +
  canonical parameters + forcing digest), LRU-bounded cache of run
  results, with hit/miss counters that plug into
  :class:`~repro.sim.metrics.MetricsRegistry`;
* :class:`~repro.perf.runner.EnsembleRunner` — the single funnel that
  calibration, OAT/regional sensitivity and GLUE evaluate through, with
  an opt-in thread-pool backend whose results are bit-identical to
  serial order;
* :mod:`~repro.perf.keys` — canonical cache-key construction shared with
  the workflow engines' stage caches.
"""

from repro.perf.keys import (
    CanonicalisationError,
    canonical,
    canonical_json,
    content_key,
    forcing_digest,
    run_key,
)
from repro.perf.runcache import RunCache
from repro.perf.runner import CAPTURED_ERRORS, EnsembleRunner, RunFailure

__all__ = [
    "CAPTURED_ERRORS",
    "CanonicalisationError",
    "EnsembleRunner",
    "RunCache",
    "RunFailure",
    "canonical",
    "canonical_json",
    "content_key",
    "forcing_digest",
    "run_key",
]

"""Content-addressed, LRU-bounded cache of model-run results.

The GLUE/uncertainty widgets imply thousands of repeated model
evaluations per portal interaction, and most of them repeat parameter
sets the service has already run (calibration feeds GLUE; OAT sweeps
revisit reference points; two stakeholders poke the same slider).  The
:class:`RunCache` keys a run by *content* — model id + canonicalised
parameters + forcing digest, mirroring the stage-cache design in
:mod:`repro.workflow.engine` — so identical runs are served from memory
regardless of which analysis asked.

Hit/miss/eviction totals are plain counters, optionally mirrored into a
:class:`~repro.sim.metrics.MetricsRegistry` (``bind_metrics``) so cache
behaviour shows up in bench snapshots next to every other subsystem.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.perf.keys import forcing_digest, run_key


class RunCache:
    """LRU cache of model-run results keyed by content.

    ``max_entries`` bounds memory (each entry is one simulated series or
    result object); at the bound the least-recently-used entry is
    evicted.  The cache is agnostic to what a "result" is — it stores
    whatever the runner's ``simulate`` returned, including captured
    deterministic failures.
    """

    def __init__(self, max_entries: int = 1024):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._metrics = None

    # -- keys ---------------------------------------------------------------

    @staticmethod
    def key_of(model_id: str, parameters: Any, forcing: str = "") -> str:
        """Content-addressed key: model id + params + forcing digest."""
        return run_key(model_id, parameters, forcing)

    @staticmethod
    def digest_forcing(*series: Any) -> str:
        """Convenience re-export of :func:`~repro.perf.keys.forcing_digest`."""
        return forcing_digest(*series)

    # -- lookups ------------------------------------------------------------

    def lookup(self, key: str) -> Tuple[bool, Any]:
        """``(found, value)``; a hit refreshes the entry's recency."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            self._count("misses")
            return False, None
        self._entries.move_to_end(key)
        self.hits += 1
        self._count("hits")
        return True, value

    def peek(self, key: str) -> bool:
        """Whether ``key`` is cached, without touching any counter."""
        return key in self._entries

    def store(self, key: str, value: Any) -> None:
        """Insert (or refresh) ``key``, evicting LRU entries at the bound."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            self._count("evictions")

    def clear(self) -> None:
        """Drop every entry (counters are cumulative and survive)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    # -- observability ------------------------------------------------------

    def bind_metrics(self, registry) -> "RunCache":
        """Mirror counters into ``registry`` (a ``MetricsRegistry``).

        Existing totals are back-filled so late binding loses nothing;
        returns self for chaining.
        """
        self._metrics = registry
        for name, value in (("hits", self.hits), ("misses", self.misses),
                            ("evictions", self.evictions)):
            counter = registry.counter(name)
            if value > counter.value:
                counter.increment(value - counter.value)
        return self

    def _count(self, name: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).increment()

    def stats(self) -> Dict[str, float]:
        """Snapshot: hits, misses, evictions, entries, hit rate."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "hit_rate": self.hits / total if total else 0.0,
        }

"""Canonical cache keys for content-addressed run caching.

A cache key must depend only on the *content* of its inputs, never on
incidental representation details — dict insertion order, tuple-vs-list
spelling, or an object's ``repr`` (which can embed memory addresses and
silently defeats the cache).  :func:`canonical` normalises a parameter
structure into a JSON-stable form and *rejects* anything that has no
canonical JSON spelling, so a non-reproducible key is a loud error
instead of a silent cache miss.

Shared by the workflow engines' stage caches and the model-run
:class:`~repro.perf.runcache.RunCache`.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Optional, Sequence


class CanonicalisationError(TypeError):
    """A value cannot be canonicalised into a stable cache key."""


def canonical(value: Any, path: str = "value") -> Any:
    """Recursively normalise ``value`` for stable JSON serialisation.

    Dicts keep (string) keys and are sorted at dump time; tuples become
    lists so ``(1, 2)`` and ``[1, 2]`` address the same entry; scalars
    pass through.  Anything else — objects, sets, functions — raises
    :class:`CanonicalisationError` naming the offending path.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise CanonicalisationError(
                    f"{path}: dict key {key!r} is not a string; cache keys "
                    f"need JSON-compatible parameters")
            out[key] = canonical(item, f"{path}.{key}")
        return out
    if isinstance(value, (list, tuple)):
        return [canonical(item, f"{path}[{i}]")
                for i, item in enumerate(value)]
    raise CanonicalisationError(
        f"{path}: {type(value).__name__} value {value!r} is not "
        f"JSON-serialisable; cache keys need JSON-compatible parameters "
        f"(str, int, float, bool, None, list/tuple, dict)")


def canonical_json(value: Any, path: str = "value") -> str:
    """The canonical JSON text of ``value`` (sorted keys, no whitespace)."""
    return json.dumps(canonical(value, path), sort_keys=True,
                      separators=(",", ":"))


def content_key(value: Any, path: str = "value", length: int = 16) -> str:
    """Hex digest of the canonical JSON of ``value``."""
    return hashlib.sha256(
        canonical_json(value, path).encode()).hexdigest()[:length]


def forcing_digest(*series: Optional[Any]) -> str:
    """Content digest of one or more forcing :class:`TimeSeries`.

    ``None`` entries are allowed (an absent PET series is part of the
    content).  Two series digest equal iff their start, timestep and
    values match — name/units are presentation, not content.
    """
    hasher = hashlib.sha256()
    for entry in series:
        if entry is None:
            hasher.update(b"\x00none")
            continue
        hasher.update(repr(entry.start).encode())
        hasher.update(repr(entry.dt).encode())
        for value in entry:
            hasher.update(repr(value).encode())
        hasher.update(b"\x00")
    return hasher.hexdigest()[:16]


def run_key(model_id: str, parameters: Any, forcing: str = "") -> str:
    """The content-addressed key of one model run.

    ``model_id`` names the model binding (which catchment, which
    structure), ``parameters`` is the canonicalised parameter set and
    ``forcing`` is a :func:`forcing_digest` — the same triple the
    workflow engine's stage cache hashes, applied to single model runs.
    """
    return content_key({"model": model_id,
                        "params": canonical(parameters, "parameters"),
                        "forcing": forcing})

"""SOAP bindings for the OGC services — the Section IV-B compromise.

"The main stumbling block was that most of the standards in the
geospatial analysis community are specified using SOAP services.
Conforming to these standards is of high priority ... This meant not
having a completely RESTful architecture in order to enable easy
integration of models and composing more sophisticated OGC-compliant
web services.  We find this a fair compromise."

:class:`SoapWpsBinding` exposes a :class:`~repro.services.wps.WpsService`
through SOAP operations (``GetCapabilities`` / ``DescribeProcess`` /
``Execute``) on the *same* instance as the REST replica, so legacy OGC
clients and the portal share one deployment.  SOAP sessions are used
only as the standard demands — the execution itself still delegates to
the stateless process objects, so no scientific state is trapped on the
server.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.cloud.instance import Instance, Job
from repro.services.soap import SoapServer, SoapSession
from repro.services.wps import WpsService
from repro.sim import Simulator


class SoapWpsBinding:
    """A SOAP endpoint fronting a WPS service on one instance.

    The binding registers the three standard operations.  ``Execute``
    charges the process's full cost to the hosting instance — exactly
    what the REST path does — so capacity accounting is identical no
    matter which protocol a client speaks.
    """

    def __init__(self, sim: Simulator, wps: WpsService, instance: Instance):
        self.sim = sim
        self.wps = wps
        self.instance = instance
        self.server = SoapServer(sim, f"soap.{wps.name}", instance)
        self.server.operation("GetCapabilities", self._get_capabilities)
        self.server.operation("DescribeProcess", self._describe_process)
        self.server.operation("Execute", self._execute)

    @property
    def address(self) -> str:
        """Network address of the hosting instance."""
        return self.instance.address

    def bind(self, network) -> "SoapWpsBinding":
        """Register the SOAP server on the network; returns self."""
        self.server.bind(network)
        return self

    # -- operations ----------------------------------------------------------

    def _get_capabilities(self, session: SoapSession, payload: Any):
        return {
            "service": "WPS",
            "version": "1.0.0",
            "binding": "SOAP",
            "processes": self.wps.processes(),
        }

    def _describe_process(self, session: SoapSession, payload: Any):
        identifier = (payload or {}).get("identifier")
        process = self.wps._processes.get(identifier)
        if process is None:
            raise ValueError(f"no process {identifier!r}")
        return process.description.to_document()

    def _execute(self, session: SoapSession, payload: Any):
        """Synchronous Execute.

        The SOAP layer validates inputs and runs the process *inline*
        within its own (already-charged) server job plus an additional
        job covering the model cost, mirroring the REST deferred path.
        The response document follows the WPS ExecuteResponse shape.
        """
        payload = payload or {}
        identifier = payload.get("identifier")
        process = self.wps._processes.get(identifier)
        if process is None:
            raise ValueError(f"no process {identifier!r}")
        inputs = process.validate(payload.get("inputs", {}))
        # charge the model run to the instance: the SOAP handler job has
        # already been paid for, the model cost is burnt synchronously
        # here (host-instantaneous, simulated via the surcharge job)
        self.instance.submit(Job(cost=process.cost(inputs),
                                 name=f"soap-wps:{identifier}"))
        outputs = process.execute(inputs)
        session.state["last_execution"] = identifier
        return {
            "status": "ProcessSucceeded",
            "process": identifier,
            "outputs": outputs,
        }

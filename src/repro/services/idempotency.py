"""``Idempotency-Key``: exactly-once mutations at the API boundary.

The retry stack (PR 3) replays requests it believes are safe; a mutating
POST is only safe to replay if the server can recognise the replay.  A
client that may retry stamps the request with an ``Idempotency-Key``;
the server then guarantees that *one* execution happens per key and
every replay receives the original response, marked
``Idempotency-Replayed: true``.

The index is a blob container shared by every replica — like the WPS
status container, it keeps the replicas stateless: whichever replica a
retry lands on sees the same reservations.  The protocol per key:

1. **fresh** — no record: a *pending* reservation (with a TTL and an
   epoch) is written before the handler runs, then the final response
   is recorded against the same epoch.
2. **replay** — a completed record whose request fingerprint matches:
   the stored response is returned without running the handler.
3. **conflict** — a completed (or pending) record whose fingerprint
   differs: the client reused a key for a different request; that is a
   permanent 422, never retried.
4. **pending** — an unexpired reservation for the same fingerprint:
   another in-flight attempt is executing; the caller gets a
   retryable 409 and its backoff outwaits the first attempt.
5. An **expired** reservation (executor died mid-flight) is taken over
   with a bumped epoch; the dead attempt's late ``record`` is fenced
   by the epoch check, exactly like the journal lease protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.cloud.errors import BlobNotFound
from repro.cloud.storage import Container
from repro.perf.keys import content_key
from repro.sim import Simulator

#: How long a pending reservation blocks other attempts, seconds.
PENDING_TTL = 120.0


def request_fingerprint(method: str, path: str, body: Any) -> str:
    """The content identity of a request, for key-reuse detection.

    The version prefix is stripped so the same request through the
    legacy shim and the ``/v1`` route share one identity.
    """
    if path.startswith("/v1/"):
        path = path[len("/v1"):]
    try:
        return content_key({"method": method, "path": path, "body": body})
    except TypeError:
        return content_key({"method": method, "path": path,
                            "body": repr(body)})


@dataclass(frozen=True)
class Admission:
    """The verdict for one keyed request attempt.

    ``kind`` is ``fresh`` / ``replay`` / ``conflict`` / ``pending``;
    ``epoch`` fences the eventual :meth:`IdempotencyIndex.record` for
    fresh admissions; ``response`` carries the stored document for
    replays.
    """

    kind: str
    epoch: int = 0
    response: Optional[Dict[str, Any]] = None


class IdempotencyIndex:
    """The durable per-``(tenant, key)`` reservation/response table.

    Exactly-once is a *per-tenant* promise: tenants choose keys
    independently, so the same ``Idempotency-Key`` from two tenants is
    two unrelated requests and must never replay across the boundary.
    """

    def __init__(self, sim: Simulator, container: Container,
                 pending_ttl: float = PENDING_TTL):
        self.sim = sim
        self.pending_ttl = pending_ttl
        self._container = container
        self.replays = 0
        self.conflicts = 0
        self.takeovers = 0

    @staticmethod
    def _key(key: str, tenant: Optional[str] = None) -> str:
        # Keys are tenant-scoped: the same Idempotency-Key from two
        # tenants must never replay across the boundary.  The untenanted
        # path keeps the pre-tenancy blob name bit-identical.
        if tenant is None:
            return f"idem/{content_key(key)}"
        return f"idem/{content_key((tenant, key))}"

    def _read(self, key: str,
              tenant: Optional[str] = None) -> Optional[Dict[str, Any]]:
        try:
            return self._container.get(self._key(key, tenant)).payload
        except BlobNotFound:
            return None

    def admit(self, key: str, fingerprint: str,
              tenant: Optional[str] = None) -> Admission:
        """Classify one attempt and, when fresh, reserve the key.

        ``tenant`` scopes the key: reservations, replays and conflicts
        are all per ``(tenant, key)``.
        """
        record = self._read(key, tenant)
        if record is not None:
            if record["fingerprint"] != fingerprint:
                self.conflicts += 1
                return Admission(kind="conflict")
            if record["state"] == "done":
                self.replays += 1
                return Admission(kind="replay", response=record["response"])
            if record["expires"] > self.sim.now:
                return Admission(kind="pending")
            # Expired reservation: the executor died; take over.
            self.takeovers += 1
            epoch = record["epoch"] + 1
        else:
            epoch = 0
        self._container.put(self._key(key, tenant), {
            "state": "pending",
            "fingerprint": fingerprint,
            "epoch": epoch,
            "expires": self.sim.now + self.pending_ttl,
        })
        return Admission(kind="fresh", epoch=epoch)

    def record(self, key: str, epoch: int, status: int, body: Any,
               headers: Optional[Dict[str, str]] = None,
               tenant: Optional[str] = None) -> bool:
        """Store the final response for a fresh admission.

        Fenced: a stale executor (its reservation expired and was taken
        over) must not overwrite the new attempt's state.  Returns
        whether the response was stored.
        """
        record = self._read(key, tenant)
        if record is None or record["epoch"] != epoch:
            return False
        self._container.put(self._key(key, tenant), {
            "state": "done",
            "fingerprint": record["fingerprint"],
            "epoch": epoch,
            "response": {"status": status, "body": body,
                         "headers": dict(headers or {})},
        })
        return True

    def forget(self, key: str, tenant: Optional[str] = None) -> None:
        """Drop a reservation (a failed attempt that should not pin the
        key — e.g. the handler never produced a recordable response)."""
        try:
            self._container.delete(self._key(key, tenant))
        except BlobNotFound:
            pass

    def depth(self) -> int:
        """How many keys are tracked (pending + done)."""
        return len(self._container.list(prefix="idem/"))

"""Simulated request/response network.

Every client→service interaction in the reproduction flows through a
:class:`Network`: it adds propagation latency, accounts bytes against the
hosting instance's NIC counters, and reproduces the failure behaviours the
broker must handle:

* requests to a dead instance are *refused* (fast failure),
* requests to a blackholed instance are *received but never answered*
  (the caller times out — the paper's "zero outbound while receiving
  inbound" signature),
* responses from an instance that dies mid-request are lost.

Payload sizes are estimated structurally so benches can compare wire
overheads of REST, SOAP, WebSocket frames and polling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.cloud.instance import Instance
from repro.obs.context import extract_context, inject_context
from repro.obs.hub import obs_of
from repro.services.envelope import problem
from repro.sim import RandomStreams, Signal, Simulator
from repro.tenancy.context import TENANT_HEADER

#: Approximate HTTP header block, bytes.
HTTP_HEADER_BYTES = 220
#: Extra envelope weight of a SOAP message over plain HTTP, bytes.
SOAP_ENVELOPE_BYTES = 540
#: WebSocket frame header, bytes.
WS_FRAME_BYTES = 6
#: Transport-level acknowledgement emitted on receipt of a request.  A
#: healthy instance always acks inbound traffic even while a long model
#: run delays the application response — which is exactly what lets the
#: Load Balancer's "zero outbound while receiving inbound" heuristic
#: single out genuinely blackholed NICs (acks are suppressed with the
#: rest of the transmit path).
TCP_ACK_BYTES = 40
#: Default client-side request timeout, seconds.
DEFAULT_TIMEOUT = 30.0


def payload_bytes(body: Any) -> int:
    """Estimate the serialised size of a message body in bytes."""
    if body is None:
        return 0
    if isinstance(body, (bytes, bytearray)):
        return len(body)
    if isinstance(body, str):
        return len(body)
    try:
        return len(json.dumps(body, default=str))
    except (TypeError, ValueError):
        return len(repr(body))


@dataclass
class HttpRequest:
    """A request on the simulated wire."""

    method: str
    path: str
    body: Any = None
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)

    def wire_bytes(self) -> int:
        """Bytes this request occupies on the wire."""
        return HTTP_HEADER_BYTES + payload_bytes(self.body) + payload_bytes(self.query)


@dataclass
class HttpResponse:
    """A response on the simulated wire."""

    status: int
    body: Any = None
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the status is a 2xx."""
        return 200 <= self.status < 300

    def wire_bytes(self) -> int:
        """Bytes this response occupies on the wire."""
        return HTTP_HEADER_BYTES + payload_bytes(self.body)


@dataclass
class ConnectionRefused:
    """Delivered to the caller when the target address is not serving."""

    address: str


@dataclass
class RequestTimeout:
    """Delivered to the caller when no response arrived in time."""

    address: str
    after_seconds: float


class Network:
    """Routes requests to servers registered at instance addresses.

    A *server* here is any object with ``handle(request) -> Signal``
    returning a signal eventually fired with an :class:`HttpResponse`
    (both REST and SOAP engines satisfy this).  Each server is bound to
    the :class:`~repro.cloud.instance.Instance` hosting it so that byte
    counters and liveness checks hit the right VM.
    """

    def __init__(self, sim: Simulator, streams: Optional[RandomStreams] = None,
                 base_latency: float = 0.012, latency_jitter: float = 0.006):
        self.sim = sim
        self.streams = streams or RandomStreams()
        self.base_latency = base_latency
        self.latency_jitter = latency_jitter
        self._endpoints: Dict[str, tuple] = {}  # address -> (server, instance)
        self._partitions: set = set()           # frozenset({a, b}) pairs
        self.total_requests = 0
        self.total_bytes = 0.0

    def register(self, address: str, server: Any, instance: Instance) -> None:
        """Expose ``server`` at ``address``, hosted on ``instance``."""
        self._endpoints[address] = (server, instance)

    def unregister(self, address: str) -> None:
        """Remove the endpoint at ``address`` (idempotent)."""
        self._endpoints.pop(address, None)

    def is_registered(self, address: str) -> bool:
        """Whether anything is exposed at ``address``."""
        return address in self._endpoints

    def partition(self, a: str, b: str) -> None:
        """Cut connectivity between ``a`` and ``b`` (both directions).

        Partitioned traffic is *dropped*, not refused: the caller sees a
        timeout, exactly like a blackholed NIC — which is what makes
        split-brain scenarios interesting for lease-based ownership.
        """
        self._partitions.add(frozenset((a, b)))

    def heal_partition(self, a: str, b: str) -> None:
        """Restore connectivity between ``a`` and ``b`` (idempotent)."""
        self._partitions.discard(frozenset((a, b)))

    def is_partitioned(self, a: str, b: str) -> bool:
        """Whether traffic between ``a`` and ``b`` is currently cut."""
        return frozenset((a, b)) in self._partitions

    def _latency(self) -> float:
        jitter = self.streams.get("network.latency").uniform(0, self.latency_jitter)
        return self.base_latency + jitter

    def request(self, address: str, request: HttpRequest,
                timeout: float = DEFAULT_TIMEOUT,
                extra_request_bytes: int = 0,
                extra_response_bytes: int = 0,
                source: Optional[str] = None) -> Signal:
        """Send ``request`` to ``address``.

        Returns a signal fired with an :class:`HttpResponse`, a
        :class:`ConnectionRefused` or a :class:`RequestTimeout`.  The
        ``extra_*_bytes`` hooks let protocol layers (SOAP envelopes)
        charge their framing overhead without re-implementing routing.
        ``source`` is the caller's address, used only to honour network
        partitions — partitioned traffic is dropped (timeout), never
        refused.
        """
        reply = self.sim.signal(f"net.{address}.{request.method}.{request.path}")
        self.total_requests += 1
        request_bytes = request.wire_bytes() + extra_request_bytes
        self.total_bytes += request_bytes

        # distributed tracing: requests carrying a traceparent get a
        # client span; its own context rides the headers so the serving
        # side continues the same trace.  Untraced traffic pays nothing.
        parent_context = extract_context(request.headers)
        if parent_context is not None:
            attributes = {"address": address, "bytes": request_bytes}
            # tenant baggage rides the headers exactly like traceparent;
            # the client span carries the label so a trace is filterable
            # by tenant at every hop
            tenant = request.headers.get(TENANT_HEADER)
            if tenant is not None:
                attributes["tenant"] = tenant
            span = obs_of(self.sim).tracer.start_span(
                f"http {request.method} {request.path}",
                parent=parent_context, kind="client",
                attributes=attributes)
            inject_context(span.context, request.headers)

            def client_watch():
                outcome = yield reply
                if isinstance(outcome, HttpResponse):
                    span.set_attribute("status", outcome.status)
                    span.finish(error=None if outcome.status < 500
                                else f"http {outcome.status}")
                elif isinstance(outcome, ConnectionRefused):
                    span.finish(error="connection refused")
                elif isinstance(outcome, RequestTimeout):
                    span.finish(error=f"timeout after "
                                      f"{outcome.after_seconds:.0f}s")
                else:
                    span.finish(error=f"no response: {outcome!r}")

            self.sim.spawn(client_watch(), name=f"net.trace.{address}")

        # Every path that can complete this request funnels through one
        # settle helper: it cancels the timeout timer and fires the reply
        # only if nothing else fired first.  The guard is what makes the
        # timeout race safe — a slow response crossing the wire while the
        # timer pops (or a blackholed instance recovering and answering
        # long after the caller gave up) must never double-fire the
        # one-shot reply signal.
        timeout_handle = self.sim.schedule(timeout, self._settle, reply, None,
                                           RequestTimeout(address=address,
                                                          after_seconds=timeout))

        def deliver() -> None:
            if source is not None and self.is_partitioned(source, address):
                return  # dropped on the floor; the timeout settles it
            endpoint = self._endpoints.get(address)
            if endpoint is None:
                self._settle(reply, timeout_handle,
                             ConnectionRefused(address=address))
                return
            server, instance = endpoint
            if not instance.is_serving:
                self._settle(reply, timeout_handle,
                             ConnectionRefused(address=address))
                return
            instance.record_bytes_in(request_bytes)
            instance.record_bytes_out(TCP_ACK_BYTES)  # ack; dropped if blackholed
            if not instance.network_blackholed:
                self.total_bytes += TCP_ACK_BYTES
            response_signal = server.handle(request)

            def respond():
                response = yield response_signal
                if not isinstance(response, HttpResponse):
                    response = HttpResponse(status=500, body=problem(
                        500, "bad handler",
                        "handler produced no HttpResponse", retryable=False))
                response_bytes = response.wire_bytes() + extra_response_bytes
                if not instance.is_serving or instance.network_blackholed:
                    # response never makes it onto the wire; caller times out
                    return
                if (source is not None
                        and self.is_partitioned(source, address)):
                    # partition opened mid-request: the response is lost
                    return
                if reply.fired:
                    # the caller already saw a timeout: the late response
                    # still pays its wire bytes but must not re-fire
                    instance.record_bytes_out(response_bytes)
                    self.total_bytes += response_bytes
                    return
                instance.record_bytes_out(response_bytes)
                self.total_bytes += response_bytes
                yield self._latency()
                self._settle(reply, timeout_handle, response)

            self.sim.spawn(respond(), name=f"net.respond.{address}")

        self.sim.schedule(self._latency(), deliver)
        return reply

    @staticmethod
    def _settle(signal: Signal, timeout_handle: Optional[Any],
                value: Any) -> None:
        """Fire ``signal`` with ``value`` unless it already settled."""
        if timeout_handle is not None:
            timeout_handle.cancel()
        if not signal.fired:
            signal.fire(value)

"""Typed client for the v1 service API.

Every consumer of the portal/WPS/SOS services used to hand-build
:class:`~repro.services.transport.HttpRequest` objects — each call site
re-inventing paths, retry loops and ``If-None-Match`` bookkeeping.
:class:`RestClient` is the one place that knows the v1 contract: a
per-resource method for each route, the canonical ``/v1`` paths, and a
built-in revalidation cache (a 304 is transparently replaced by the
cached representation, so callers always see a full response).

All traffic flows through a :class:`~repro.resilience.client.ResilientClient`,
which is where retry, breaker, admission and hedging policy live — a
call site states *what* it wants and how urgent it is (``timeout`` /
``deadline``), never *how* to survive a fault.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.resilience.client import ResilientClient
from repro.services.transport import HttpRequest, HttpResponse, Network
from repro.sim import Signal, Simulator
from repro.tenancy.context import TENANT_HEADER

AddressLike = Union[str, Callable[[], Optional[str]]]


def encode_dataset_id(dataset_id: str) -> str:
    """Path-encode a dataset id (path params cannot contain ``/``)."""
    return dataset_id.replace("/", "__")


class RestClient:
    """Per-resource methods over the v1 API, resilient by construction."""

    def __init__(self, sim: Simulator, network: Network,
                 address: AddressLike, *,
                 resilient: Optional[ResilientClient] = None,
                 service: str = "rest",
                 trace: Any = None,
                 timeout: Optional[float] = None,
                 deadline: Optional[float] = None,
                 tenant: Optional[str] = None):
        self.sim = sim
        self.address = address
        self.trace = trace
        self.timeout = timeout
        self.deadline = deadline
        #: tenant identity stamped on every request (the ``Tenant``
        #: header the /v1 boundary validates and rate-limits on)
        self.tenant = tenant
        self.resilient = resilient or ResilientClient(sim, network,
                                                      service=service)
        self._etag_cache: Dict[str, Tuple[str, Any]] = {}
        self.revalidated_hits = 0

    # -- generic entry point -----------------------------------------------

    def request(self, method: str, path: str, *, body: Any = None,
                query: Optional[Dict[str, str]] = None,
                headers: Optional[Dict[str, str]] = None,
                safe: Optional[bool] = None,
                timeout: Optional[float] = None,
                deadline: Optional[float] = None,
                idempotency_key: Optional[str] = None) -> Signal:
        """Issue one v1 request; the signal always gets a response.

        GETs to previously seen resources carry ``If-None-Match``; a 304
        answer is replaced with the cached representation before the
        caller sees it.

        ``idempotency_key`` stamps a mutating request with an
        ``Idempotency-Key`` header.  A keyed mutation is exactly-once
        at the server, so the request becomes *safe* (unless the caller
        says otherwise): the retry stack may replay it on timeouts and
        transient failures without risking duplicate effects.
        """
        request_headers = dict(headers or {})
        if self.tenant is not None:
            request_headers.setdefault(TENANT_HEADER, self.tenant)
        if idempotency_key is not None:
            request_headers.setdefault("Idempotency-Key", idempotency_key)
            if safe is None:
                safe = True
        cached = self._etag_cache.get(path) if method == "GET" else None
        if cached is not None:
            request_headers.setdefault("If-None-Match", cached[0])
        raw = self.resilient.call(
            self.address,
            HttpRequest(method, path, body=body, query=dict(query or {}),
                        headers=request_headers),
            safe=safe, trace=self.trace,
            timeout=timeout if timeout is not None else self.timeout,
            deadline=deadline if deadline is not None else self.deadline)
        done = self.sim.signal(f"client.{method}.{path}")

        def translate():
            response = yield raw
            done.fire(self._revalidate(path, response))

        self.sim.spawn(translate(), name=f"client.request.{path}")
        return done

    def _revalidate(self, path: str, response: HttpResponse) -> HttpResponse:
        cached = self._etag_cache.get(path)
        if response.status == 304 and cached is not None:
            self.revalidated_hits += 1
            headers = dict(response.headers)
            headers["X-Revalidated"] = "true"
            return HttpResponse(status=200, body=cached[1], headers=headers)
        etag = response.headers.get("ETag")
        if etag and response.ok:
            self._etag_cache[path] = (etag, response.body)
        return response

    # -- API description ----------------------------------------------------

    def describe_api(self) -> Signal:
        """``GET /v1`` — the machine-readable route table."""
        return self.request("GET", "/v1")

    # -- datasets (upload service) ------------------------------------------

    def upload_dataset(self, document: Dict[str, Any],
                       idempotency_key: Optional[str] = None) -> Signal:
        """``POST /v1/uploads`` — publish a user-provided series.

        Pass ``idempotency_key`` to make the upload retryable without
        duplicate catalogue entries.
        """
        return self.request("POST", "/v1/uploads", body=document, safe=False,
                            idempotency_key=idempotency_key)

    def list_uploads(self, cursor: Optional[str] = None,
                     limit: Optional[int] = None) -> Signal:
        """``GET /v1/uploads`` — paginated dataset listing."""
        return self.request("GET", "/v1/uploads",
                            query=_page_query({}, cursor, limit))

    def describe_dataset(self, dataset_id: str) -> Signal:
        """``GET /v1/uploads/{id}`` — dataset metadata (revalidated)."""
        return self.request(
            "GET", f"/v1/uploads/{encode_dataset_id(dataset_id)}")

    def download_dataset(self, dataset_id: str,
                         principal: Optional[str] = None) -> Signal:
        """``GET /v1/uploads/{id}/data`` — the raw series, ACL-checked."""
        headers = {"X-Principal": principal} if principal else None
        return self.request(
            "GET", f"/v1/uploads/{encode_dataset_id(dataset_id)}/data",
            headers=headers)

    # -- WPS ----------------------------------------------------------------

    def wps_capabilities(self, cursor: Optional[str] = None,
                         limit: Optional[int] = None) -> Signal:
        """``GET /v1/wps`` — published processes (paginated)."""
        return self.request("GET", "/v1/wps",
                            query=_page_query({}, cursor, limit))

    def describe_process(self, identifier: str) -> Signal:
        """``GET /v1/wps/processes/{id}`` — the DescribeProcess document."""
        return self.request("GET", f"/v1/wps/processes/{identifier}")

    def execute_wps(self, identifier: str, inputs: Dict[str, Any],
                    mode: str = "sync",
                    timeout: Optional[float] = None,
                    deadline: Optional[float] = None,
                    idempotency_key: Optional[str] = None) -> Signal:
        """``POST /v1/wps/processes/{id}/execute``.

        Declared safe: model execution is deterministic and records no
        per-request server state, so replaying a lost Execute is
        harmless — which is exactly what lets retries mask a mid-run
        instance crash.  With ``idempotency_key`` the server goes
        further: exactly one execution happens per key, and replays get
        the original response (one ``runId``, one run event).
        """
        return self.request(
            "POST", f"/v1/wps/processes/{identifier}/execute",
            body={"mode": mode, "inputs": inputs}, safe=True,
            timeout=timeout, deadline=deadline,
            idempotency_key=idempotency_key)

    def poll_status(self, status_location: str) -> Signal:
        """``GET <statusLocation>`` — poll an async execution."""
        return self.request("GET", status_location)

    # -- SOS ----------------------------------------------------------------

    def sos_capabilities(self) -> Signal:
        """``GET /v1/sos`` — offerings."""
        return self.request("GET", "/v1/sos")

    def describe_sensor(self, procedure_id: str) -> Signal:
        """``GET /v1/sos/sensors/{id}`` — the DescribeSensor document."""
        return self.request("GET", f"/v1/sos/sensors/{procedure_id}")

    def get_observations(self, procedure_id: str,
                         begin: Optional[float] = None,
                         end: Optional[float] = None,
                         cursor: Optional[str] = None,
                         limit: Optional[int] = None) -> Signal:
        """``GET /v1/sos/observations/{id}`` with a temporal filter
        (paginated)."""
        query: Dict[str, str] = {}
        if begin is not None:
            query["begin"] = str(begin)
        if end is not None:
            query["end"] = str(end)
        return self.request("GET", f"/v1/sos/observations/{procedure_id}",
                            query=_page_query(query, cursor, limit))

    # -- the CQRS read API (materialized views) -----------------------------

    def list_catchments(self, cursor: Optional[str] = None,
                        limit: Optional[int] = None) -> Signal:
        """``GET /v1/catchments`` — materialized catchments (paginated)."""
        return self.request("GET", "/v1/catchments",
                            query=_page_query({}, cursor, limit))

    def catchment_stats(self, catchment: str) -> Signal:
        """``GET /v1/catchments/{id}/stats`` — rolling stats (revalidated)."""
        return self.request("GET", f"/v1/catchments/{catchment}/stats")

    def latest_observations(self, cursor: Optional[str] = None,
                            limit: Optional[int] = None) -> Signal:
        """``GET /v1/observations/latest`` — latest table (paginated)."""
        return self.request("GET", "/v1/observations/latest",
                            query=_page_query({}, cursor, limit))

    def list_runs(self, status: Optional[str] = None,
                  cursor: Optional[str] = None,
                  limit: Optional[int] = None) -> Signal:
        """``GET /v1/runs`` — the run-summary index (paginated)."""
        query: Dict[str, str] = {}
        if status is not None:
            query["status"] = status
        return self.request("GET", "/v1/runs",
                            query=_page_query(query, cursor, limit))

    def get_run(self, run_id: str) -> Signal:
        """``GET /v1/runs/{id}`` — one run's summary."""
        return self.request("GET", f"/v1/runs/{run_id}")


def _page_query(query: Dict[str, str], cursor: Optional[str],
                limit: Optional[int]) -> Dict[str, str]:
    """Fold pagination params into a query dict."""
    if cursor is not None:
        query["cursor"] = cursor
    if limit is not None:
        query["limit"] = str(limit)
    return query

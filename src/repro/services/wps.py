"""OGC Web Processing Service (WPS) over the REST engine.

EVOp exposes every model as a WPS endpoint: ``GetCapabilities``,
``DescribeProcess`` and ``Execute`` (synchronous and asynchronous).  The
operation vocabulary follows the OGC standard; the transport is the
project's REST engine — mirroring the paper's compromise of "not having a
completely RESTful architecture in order to enable easy integration of
models".

Statelessness is preserved even for asynchronous execution: execution
status lives in a shared blob-store container, not on the serving
replica, so *any* replica can answer a status poll.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.cloud.instance import Instance, Job
from repro.cloud.storage import Container
from repro.durable.journal import jsonable
from repro.services.envelope import problem
from repro.services.pagination import CursorError, is_paginated, paginate
from repro.services.rest import (
    HttpError,
    RestApi,
    RestBackground,
    RestCacheable,
    RestDeferred,
    RestServer,
)
from repro.services.transport import HttpRequest
from repro.sim import Simulator
from repro.tenancy.context import TENANT_HEADER

_execution_ids = itertools.count()

#: Output keys worth indexing in the run-summary view: the scalar
#: results a stakeholder compares across runs.  Everything else (full
#: hydrographs, series payloads) stays behind the execution status
#: document.
RUN_SUMMARY_KEYS = ("peak_mm_h", "peak_time_hours", "volume_mm",
                    "threshold_exceeded", "model")


@dataclass(frozen=True)
class InputSpec:
    """Declared WPS process input: type, default and optional bounds."""

    name: str
    data_type: str = "float"
    required: bool = True
    default: Any = None
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    abstract: str = ""


@dataclass
class ProcessDescription:
    """The DescribeProcess document for one process."""

    identifier: str
    title: str
    abstract: str = ""
    inputs: List[InputSpec] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    version: str = "1.0.0"

    def to_document(self) -> Dict[str, Any]:
        """Serialisable DescribeProcess response body."""
        return {
            "identifier": self.identifier,
            "title": self.title,
            "abstract": self.abstract,
            "version": self.version,
            "inputs": [
                {
                    "name": spec.name,
                    "dataType": spec.data_type,
                    "required": spec.required,
                    "default": spec.default,
                    "minimum": spec.minimum,
                    "maximum": spec.maximum,
                    "abstract": spec.abstract,
                }
                for spec in self.inputs
            ],
            "outputs": list(self.outputs),
        }


class WpsProcess:
    """A runnable process behind ``Execute``.

    ``run`` maps validated inputs to an outputs dict; ``cost`` estimates
    the CPU charge of a run from those inputs (e.g. proportional to the
    number of simulated timesteps).
    """

    def __init__(self, description: ProcessDescription,
                 run: Callable[[Dict[str, Any]], Dict[str, Any]],
                 cost: Callable[[Dict[str, Any]], float]):
        self.description = description
        self._run = run
        self._cost = cost

    @property
    def identifier(self) -> str:
        """The process identifier."""
        return self.description.identifier

    def validate(self, raw_inputs: Dict[str, Any]) -> Dict[str, Any]:
        """Apply defaults, check presence, types-by-bounds; raise 400s."""
        inputs: Dict[str, Any] = {}
        known = {spec.name for spec in self.description.inputs}
        for name in raw_inputs:
            if name not in known:
                raise HttpError(400, f"unknown input {name!r}")
        for spec in self.description.inputs:
            if spec.name in raw_inputs:
                value = raw_inputs[spec.name]
            elif spec.default is not None or not spec.required:
                value = spec.default
            else:
                raise HttpError(400, f"missing required input {spec.name!r}")
            if value is not None and spec.minimum is not None and value < spec.minimum:
                raise HttpError(400, f"input {spec.name!r} below minimum "
                                     f"{spec.minimum}")
            if value is not None and spec.maximum is not None and value > spec.maximum:
                raise HttpError(400, f"input {spec.name!r} above maximum "
                                     f"{spec.maximum}")
            inputs[spec.name] = value
        return inputs

    def cost(self, inputs: Dict[str, Any]) -> float:
        """CPU charge (reference-core seconds) of running with ``inputs``."""
        return self._cost(inputs)

    def execute(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        """Run the process (host-instantaneous; charged via the job cost)."""
        return self._run(inputs)


class WpsService:
    """A WPS endpoint: builds the shared :class:`RestApi` for replicas.

    ``status_container`` holds asynchronous execution state; pass the
    same container to every replica of the same service.
    """

    def __init__(self, sim: Simulator, name: str, status_container: Container,
                 tenants=None, limiter=None, idempotency=None):
        self.sim = sim
        self.name = name
        self.status = status_container
        self._processes: Dict[str, WpsProcess] = {}
        self._outbox = None
        self._run_stream = "runs"
        self.api = RestApi(f"wps.{name}")
        # the tenancy boundary and the idempotency index both guard the
        # mutating execute path; all three are shared across replicas
        self.api.tenants = tenants
        self.api.limiter = limiter
        self.api.idempotency = idempotency
        self.api.get("/wps", self._get_capabilities, cacheable=False)
        self.api.get("/wps/processes/{identifier}", self._describe_process)
        # Execute replays deterministically (same inputs, same outputs),
        # so the route is declared safe: clients may retry and hedge it.
        self.api.post("/wps/processes/{identifier}/execute", self._execute,
                      safe=True)
        self.api.get("/wps/executions/{execution_id}", self._get_status,
                     cacheable=True)

    def attach_outbox(self, outbox, stream: str = "runs") -> None:
        """Publish run lifecycle events to the data plane.

        Each Execute records ``run.submitted`` and later
        ``run.finished``/``run.failed`` in the transactional outbox —
        the same step as the execution's own state change, so the
        run-summary view never sees a run the service forgot.
        """
        self._outbox = outbox
        self._run_stream = stream

    def _publish_run(self, run_id: str, process: str, status: str,
                     submitted_at: float,
                     finished_at: Optional[float] = None,
                     outputs: Optional[Dict[str, Any]] = None,
                     tenant: Optional[str] = None) -> None:
        if self._outbox is None:
            return
        payload: Dict[str, Any] = {"process": process,
                                   "submittedAt": submitted_at}
        if tenant is not None:
            payload["tenant"] = tenant
        if finished_at is not None:
            payload["finishedAt"] = finished_at
        for key in RUN_SUMMARY_KEYS:
            if outputs and key in outputs:
                ok, value = jsonable(outputs[key])
                if ok:
                    payload[key] = value
        self._outbox.record(self._run_stream, f"run.{status}", key=run_id,
                            payload=payload)

    def add_process(self, process: WpsProcess) -> None:
        """Publish a process on this service."""
        if process.identifier in self._processes:
            raise ValueError(f"duplicate process {process.identifier!r}")
        self._processes[process.identifier] = process

    def processes(self) -> List[str]:
        """Identifiers of all published processes."""
        return sorted(self._processes)

    def replica(self, instance: Instance) -> RestServer:
        """Create a server replica of this service on ``instance``."""
        return RestServer(self.sim, self.api, instance)

    # -- handlers ------------------------------------------------------------------

    def _get_capabilities(self, request: HttpRequest, params: Dict[str, str]):
        processes = [
            {"identifier": identifier,
             "title": self._processes[identifier].description.title}
            for identifier in sorted(self._processes)
        ]
        body = {
            "service": "WPS",
            "version": "1.0.0",
            "title": self.name,
            "processes": processes,
        }
        if not is_paginated(request):
            # legacy shim keeps the historical unpaginated body
            return body
        keys = [p["identifier"] for p in processes]
        try:
            page = paginate(request, processes, keys)
        except CursorError as err:
            return 400, problem(400, "invalid cursor", str(err),
                                retryable=False)
        body["processes"] = page.items
        body["total"] = page.total
        body["nextCursor"] = page.next_cursor
        return 200, body, page.headers

    def _describe_process(self, request: HttpRequest, params: Dict[str, str]):
        process = self._processes.get(params["identifier"])
        if process is None:
            return 404, problem(404, "no such process",
                                f"no process {params['identifier']!r}",
                                retryable=False)
        return process.description.to_document()

    def _execute(self, request: HttpRequest, params: Dict[str, str]):
        process = self._processes.get(params["identifier"])
        if process is None:
            return 404, problem(404, "no such process",
                                f"no process {params['identifier']!r}",
                                retryable=False)
        body = request.body or {}
        if not isinstance(body, dict):
            return 400, problem(400, "malformed execute body",
                                f"execute body must be an object, got "
                                f"{type(body).__name__}", retryable=False)
        mode = body.get("mode", "sync")
        try:
            inputs = process.validate(body.get("inputs", {}))
        except HttpError as err:
            return err.status, err.to_problem()
        tenant = request.headers.get(TENANT_HEADER)
        if mode == "sync":
            return self._execute_sync(process, inputs, tenant=tenant)
        if mode == "async":
            return self._execute_async(process, inputs, tenant=tenant)
        return 400, problem(400, "unknown execute mode",
                            f"unknown mode {mode!r}", retryable=False)

    def _execute_sync(self, process: WpsProcess, inputs: Dict[str, Any],
                      tenant: Optional[str] = None):
        run_id = f"run-{next(_execution_ids):06d}"
        submitted_at = self.sim.now
        self._publish_run(run_id, process.identifier, "submitted",
                          submitted_at, tenant=tenant)
        job = Job(cost=process.cost(inputs),
                  name=f"wps:{process.identifier}",
                  compute=lambda: process.execute(inputs))

        def render(outputs):
            self._publish_run(run_id, process.identifier, "finished",
                              submitted_at, finished_at=self.sim.now,
                              outputs=outputs, tenant=tenant)
            return 200, {"status": "succeeded", "runId": run_id,
                         "outputs": outputs}

        return RestDeferred(job=job, render=render)

    def _execute_async(self, process: WpsProcess, inputs: Dict[str, Any],
                       tenant: Optional[str] = None):
        execution_id = f"exec-{next(_execution_ids):06d}"
        submitted_at = self.sim.now
        status_doc: Dict[str, Any] = {
            "status": "accepted",
            "process": process.identifier,
            "submitted_at": submitted_at,
        }
        if tenant is not None:
            status_doc["tenant"] = tenant
        self.status.put(execution_id, status_doc)
        self._publish_run(execution_id, process.identifier, "submitted",
                          submitted_at, tenant=tenant)

        def run_and_record():
            try:
                outputs = process.execute(inputs)
            except Exception as err:  # noqa: BLE001 - recorded as failure
                self.status.put(execution_id, {
                    "status": "failed",
                    "process": process.identifier,
                    "error": str(err),
                    "finished_at": self.sim.now,
                })
                self._publish_run(execution_id, process.identifier,
                                  "failed", submitted_at,
                                  finished_at=self.sim.now, tenant=tenant)
                return None
            self.status.put(execution_id, {
                "status": "succeeded",
                "process": process.identifier,
                "outputs": outputs,
                "finished_at": self.sim.now,
            })
            self._publish_run(execution_id, process.identifier, "finished",
                              submitted_at, finished_at=self.sim.now,
                              outputs=outputs, tenant=tenant)
            return outputs

        job = Job(cost=process.cost(inputs),
                  name=f"wps-async:{process.identifier}",
                  compute=run_and_record)
        return RestBackground(job=job, status=202, body={
            "status": "accepted",
            "executionId": execution_id,
            "statusLocation": f"/v1/wps/executions/{execution_id}",
        })

    def purge_executions(self, older_than_seconds: float) -> int:
        """Housekeeping: drop finished execution records older than a cutoff.

        The XaaS uniform view "simplifies housekeeping tasks"; this is
        one — async status documents accumulate in shared storage and a
        periodic purge keeps the container bounded.  Returns how many
        records were removed; running/accepted executions are kept.
        """
        cutoff = self.sim.now - older_than_seconds
        removed = 0
        for key in self.status.list():
            doc = self.status.get(key).payload
            finished = doc.get("finished_at")
            if doc.get("status") in ("succeeded", "failed") \
                    and finished is not None and finished < cutoff:
                self.status.delete(key)
                removed += 1
        return removed

    def _get_status(self, request: HttpRequest, params: Dict[str, str]):
        # status documents are polled until they settle; the blob etag
        # lets a poller revalidate instead of re-downloading the outputs
        execution_id = params["execution_id"]
        if not self.status.exists(execution_id):
            return 404, problem(404, "no such execution",
                                f"no execution {execution_id!r}",
                                retryable=False)
        blob = self.status.get(execution_id)
        return RestCacheable(body=dict(blob.payload), etag=blob.etag)

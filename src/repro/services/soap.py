"""Stateful, transaction-oriented SOAP baseline.

Section IV-B argues that SOAP-style services "require high communication
and operation overheads in order to maintain transaction state on the
server" with "a knock on effect on performance, scalability, and fault
tolerance".  This module implements exactly that style so the benches can
measure the effect:

* clients must ``begin`` a session on one specific server;
* every subsequent call must hit *that* server (state lives there);
* each call pays envelope overhead on the wire and a state-bookkeeping
  CPU surcharge on the server;
* when the server dies, every session it held is lost.

It is also the substrate for the OGC-standard endpoints where the
standard is SOAP-shaped.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.cloud.instance import Instance, Job
from repro.services.envelope import problem
from repro.services.transport import (
    HttpRequest,
    HttpResponse,
    Network,
    SOAP_ENVELOPE_BYTES,
)
from repro.sim import Signal, Simulator

#: Extra CPU charge per call for transaction-state bookkeeping.
STATE_BOOKKEEPING_COST = 0.004

_session_ids = itertools.count()


@dataclass
class SoapFault:
    """A SOAP fault body (returned inside an HTTP 500).

    ``retryable`` mirrors the problem-document field: ``Client.*`` faults
    are permanent, but a ``Server`` fault from a transient condition may
    set it so resilient callers know a replay can help.
    """

    code: str
    reason: str
    retryable: bool = False


@dataclass
class SoapSession:
    """Server-held conversational state for one client."""

    session_id: str
    server_address: str
    state: Dict[str, Any] = field(default_factory=dict)
    operations: int = 0


class SoapServer:
    """A stateful service endpoint bound to one instance.

    Operations are registered as ``fn(session, payload) -> result``;
    the reserved operations ``begin`` and ``end`` manage sessions.
    """

    def __init__(self, sim: Simulator, name: str, instance: Instance,
                 operation_cost: float = 0.005):
        self.sim = sim
        self.name = name
        self.instance = instance
        self.operation_cost = operation_cost
        self._operations: Dict[str, Callable[[SoapSession, Any], Any]] = {}
        self._sessions: Dict[str, SoapSession] = {}

    @property
    def address(self) -> str:
        """Network address of the hosting instance."""
        return self.instance.address

    def bind(self, network: Network) -> "SoapServer":
        """Register on the network; returns self."""
        network.register(self.instance.address, self, self.instance)
        return self

    def operation(self, name: str,
                  fn: Callable[[SoapSession, Any], Any]) -> None:
        """Register operation ``name``."""
        self._operations[name] = fn

    def live_sessions(self) -> int:
        """Number of sessions currently held on this server."""
        return len(self._sessions)

    # -- request handling -------------------------------------------------------

    def handle(self, request: HttpRequest) -> Signal:
        """Process a SOAP call: body = {op, session_id, payload}."""
        done = self.sim.signal(f"soap.{self.name}")
        body = request.body or {}
        op = body.get("op")
        cost = self.operation_cost + STATE_BOOKKEEPING_COST

        def run() -> Any:
            if op == "begin":
                session = SoapSession(
                    session_id=f"soap-{next(_session_ids):06d}",
                    server_address=self.instance.address)
                self._sessions[session.session_id] = session
                return {"session_id": session.session_id}
            session_id = body.get("session_id")
            session = self._sessions.get(session_id)
            if session is None:
                return SoapFault(code="Client.NoSuchSession",
                                 reason=f"unknown session {session_id!r}")
            session.operations += 1
            if op == "end":
                del self._sessions[session_id]
                return {"ended": session_id, "operations": session.operations}
            fn = self._operations.get(op)
            if fn is None:
                return SoapFault(code="Client.NoSuchOperation",
                                 reason=f"unknown operation {op!r}")
            return fn(session, body.get("payload"))

        job = Job(cost=cost, name=f"soap:{op}", compute=run)
        outcome_signal = self.instance.submit(job)

        def waiter():
            outcome = yield outcome_signal
            if not outcome.succeeded:
                if outcome.error == "queue full":
                    # previously a silent drop that forced the caller to
                    # burn its full timeout; an explicit 503 problem lets
                    # a resilient client back off and try again
                    done.fire(HttpResponse(status=503, body=problem(
                        503, "server overloaded", "accept queue full",
                        retryable=True)))
                elif outcome.error and outcome.error.startswith("job raised"):
                    done.fire(HttpResponse(status=500,
                                           body=SoapFault("Server", outcome.error)))
                return
            result = outcome.value
            if isinstance(result, SoapFault):
                done.fire(HttpResponse(status=500, body=result))
            else:
                done.fire(HttpResponse(status=200, body=result))

        self.sim.spawn(waiter(), name=f"soap.wait.{self.name}")
        return done


class SoapClient:
    """Client-side helper that pays SOAP envelope overhead per call."""

    def __init__(self, network: Network, address: str):
        self.network = network
        self.address = address
        self.session_id: Optional[str] = None

    def call(self, op: str, payload: Any = None,
             timeout: float = 30.0) -> Signal:
        """Invoke ``op``; returns the transport signal."""
        body = {"op": op, "payload": payload}
        if self.session_id is not None:
            body["session_id"] = self.session_id
        return self.network.request(
            self.address,
            HttpRequest(method="POST", path=f"/soap/{op}", body=body),
            timeout=timeout,
            extra_request_bytes=SOAP_ENVELOPE_BYTES,
            extra_response_bytes=SOAP_ENVELOPE_BYTES,
        )

    def begin_process(self, sim: Simulator):
        """Process: open a session, storing ``session_id`` on success."""
        reply = yield self.call("begin")
        if isinstance(reply, HttpResponse) and reply.ok:
            self.session_id = reply.body["session_id"]
            return True
        return False

"""The one error envelope: RFC-7807-style problem documents.

Every non-2xx body the service fabric produces is built here.  Before
this module each engine invented its own ``{"error": ...}`` dict, which
left clients string-matching to decide whether a failure was worth
retrying.  A problem document makes that decision explicit:

* ``type`` — a stable, machine-readable slug for the failure class;
* ``title`` — the short human summary;
* ``status`` — the HTTP status, repeated in the body so a problem
  document is self-describing even off the wire;
* ``detail`` — the specific occurrence;
* ``retryable`` — whether an *identical* request may succeed later.

``retryable`` is the field the resilience layer keys on: a
:class:`~repro.resilience.policy.RetryPolicy` consults it before
scheduling a backoff, so a handler that knows its failure is permanent
(validation, missing resource, access denied) can stop a client from
burning its retry budget.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

#: Namespace prefix of problem ``type`` URIs (a label, never dereferenced).
PROBLEM_TYPE_BASE = "evop:problem:"

#: Statuses that default to ``retryable=True`` when the builder is not
#: told otherwise: timeouts, throttling and upstream overload are the
#: transient conditions a backoff can outwait.
RETRYABLE_STATUSES = frozenset({408, 429, 502, 503, 504})


def problem(status: int, title: str, detail: str = "",
            retryable: Optional[bool] = None,
            type_slug: Optional[str] = None,
            **extra: Any) -> Dict[str, Any]:
    """Build a problem document body.

    ``retryable`` defaults from the status class (see
    :data:`RETRYABLE_STATUSES`); pass it explicitly whenever the handler
    knows better.  ``extra`` fields ride along for problem-specific
    context (the offending input name, the shed queue depth, ...).
    """
    if retryable is None:
        retryable = status in RETRYABLE_STATUSES
    slug = type_slug or _slug_of(title)
    doc: Dict[str, Any] = {
        "type": f"{PROBLEM_TYPE_BASE}{slug}",
        "title": title,
        "status": int(status),
        "detail": detail or title,
        "retryable": bool(retryable),
    }
    doc.update(extra)
    return doc


def is_problem(body: Any) -> bool:
    """Whether ``body`` looks like a problem document."""
    return (isinstance(body, dict) and "status" in body
            and "title" in body and "retryable" in body)


def retryable_from_body(body: Any) -> Optional[bool]:
    """The body's own retryability verdict, if it carries one."""
    if isinstance(body, dict) and isinstance(body.get("retryable"), bool):
        return body["retryable"]
    return None


def _slug_of(title: str) -> str:
    slug = "".join(c if c.isalnum() else "-" for c in title.lower())
    while "--" in slug:
        slug = slug.replace("--", "-")
    return slug.strip("-") or "error"

"""Cursor pagination for the v1 collection routes.

Cursors are *keyset* cursors, not offsets: a cursor names the sort key
of the last item the client saw, and the next page is everything
strictly after that key.  Offsets break under ingest — a row appended
mid-pagination shifts every offset and the client skips or repeats
items — whereas a keyset cursor stays stable: new items sort after the
keys already handed out, so an old cursor keeps meaning "after that
item" forever.

The wire format is an opaque urlsafe-base64 blob of canonical JSON.
Clients must treat it as a token; the encoding exists so the server can
validate and order it, and so a cursor survives being pasted into a
query string.  Responses carry the next cursor twice: in the body
(``nextCursor``) and as an RFC-8288 ``Link: rel="next"`` header that
preserves the request's non-pagination query parameters.
"""

from __future__ import annotations

import base64
import bisect
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.perf.keys import canonical_json
from repro.services.transport import HttpRequest

#: Page size when the client sends no ``limit``.
DEFAULT_LIMIT = 100

#: Upper bound on any requested ``limit``.
MAX_LIMIT = 500


class CursorError(ValueError):
    """A cursor that cannot be decoded or does not fit the route."""


def encode_cursor(key: Any) -> str:
    """Encode a sort key into an opaque cursor token."""
    text = canonical_json({"a": key})
    return base64.urlsafe_b64encode(text.encode()).decode().rstrip("=")


def decode_cursor(token: str) -> Any:
    """Decode a cursor token back into its sort key.

    Raises :class:`CursorError` on garbage — a tampered or truncated
    cursor is a client error (400), never a server fault.
    """
    try:
        padded = token + "=" * (-len(token) % 4)
        doc = json.loads(base64.urlsafe_b64decode(padded.encode()).decode())
    except (ValueError, UnicodeDecodeError) as err:
        raise CursorError(f"undecodable cursor {token!r}") from None
    if not isinstance(doc, dict) or "a" not in doc:
        raise CursorError(f"malformed cursor {token!r}")
    return doc["a"]


@dataclass
class Page:
    """One page of a collection, plus how to ask for the next one."""

    items: List[Any]
    next_cursor: Optional[str] = None
    headers: Dict[str, str] = field(default_factory=dict)
    total: int = 0


def parse_limit(query: Dict[str, str],
                default_limit: int = DEFAULT_LIMIT,
                max_limit: int = MAX_LIMIT) -> int:
    """The effective page size, validated.

    Raises :class:`CursorError` for a non-integer or non-positive
    ``limit``; values above the cap are clamped, not rejected —
    over-asking is a tuning mistake, not a protocol violation.
    """
    raw = query.get("limit")
    if raw is None:
        return default_limit
    try:
        limit = int(raw)
    except (TypeError, ValueError):
        raise CursorError(f"limit {raw!r} is not an integer") from None
    if limit < 1:
        raise CursorError(f"limit {limit} must be positive")
    return min(limit, max_limit)


def _next_link(request: HttpRequest, cursor: str, limit: int) -> str:
    """The RFC-8288 ``Link`` value for the next page.

    Non-pagination query parameters (temporal filters, etc.) are
    preserved so following the link keeps the client's filter.
    """
    query = {k: v for k, v in (request.query or {}).items()
             if k not in ("cursor", "limit")}
    query["cursor"] = cursor
    query["limit"] = str(limit)
    qs = "&".join(f"{k}={v}" for k, v in sorted(query.items()))
    return f"<{request.path}?{qs}>; rel=\"next\""


def paginate(request: HttpRequest, items: List[Any], keys: List[Any],
             *, default_limit: int = DEFAULT_LIMIT,
             max_limit: int = MAX_LIMIT) -> Page:
    """Slice ``items`` by the request's ``cursor``/``limit`` params.

    ``keys`` are the items' sort keys, parallel to ``items`` and in
    ascending order; each key must be a JSON-canonical value (the
    cursor round-trips through JSON, so tuples become lists).  A cursor
    past the end yields an empty page with no next link — the natural
    "you have seen everything" answer, not an error.

    Raises :class:`CursorError` on an undecodable cursor or bad limit;
    handlers convert that to a 400 problem document.
    """
    query = request.query or {}
    limit = parse_limit(query, default_limit, max_limit)
    start = 0
    token = query.get("cursor")
    if token:
        after = decode_cursor(token)
        try:
            start = bisect.bisect_right(keys, after)
        except TypeError:
            raise CursorError(
                f"cursor {token!r} does not fit this collection") from None
    page_items = items[start:start + limit]
    page = Page(items=page_items, total=len(items))
    if start + limit < len(items):
        page.next_cursor = encode_cursor(keys[start + limit - 1])
        page.headers["Link"] = _next_link(request, page.next_cursor, limit)
    return page


def is_paginated(request: HttpRequest) -> bool:
    """Whether this request came in on a canonical (paginated) route.

    Legacy shim paths keep their historical unpaginated bodies — the
    shim's ``Deprecation``/``Link`` headers already steer clients to
    the ``/v1`` successor, which is where pagination lives.
    """
    return request.path.startswith("/v1/") or request.path == "/v1"

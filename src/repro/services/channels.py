"""Session-update channels: WebSocket push versus periodic polling.

Section IV-D: WebSockets give "event-based asynchronous duplex
communication without the need for periodic polling or streaming, which
are costly and inefficient modes of background browser traffic exchange.
This reduces network overhead and browser memory usage, and enables RB to
manipulate the user session more efficiently."

Both strategies implement the same contract — the server pushes session
updates, the client eventually observes them — so the WS benchmark can
compare bytes, message counts and notification latency like-for-like:

* :class:`PushGateway` / :class:`WebSocketConnection` — frames cost
  ``WS_FRAME_BYTES`` + payload; delivery after one network latency;
  optional keepalive pings.
* :class:`PollingClient` — each poll is a full HTTP exchange whether or
  not updates are pending; delivery waits for the next poll tick.

Byte and CPU costs are charged to the hosting instance, so heavy polling
visibly loads the broker VM.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.cloud.instance import Instance, Job
from repro.services.transport import HTTP_HEADER_BYTES, WS_FRAME_BYTES, payload_bytes
from repro.sim import MetricsRegistry, RandomStreams, Simulator

_conn_ids = itertools.count()

#: CPU charge on the host for accepting/answering one poll request.
POLL_CPU_COST = 0.002
#: CPU charge on the host for emitting one push frame.
PUSH_CPU_COST = 0.0002


class ChannelClosed(Exception):
    """Raised when using a connection after it was closed."""


class WebSocketConnection:
    """One duplex connection between a client and the gateway."""

    def __init__(self, gateway: "PushGateway", client_name: str):
        self.gateway = gateway
        self.connection_id = f"ws-{next(_conn_ids):06d}"
        self.client_name = client_name
        self.closed = False
        self._client_handlers: List[Callable[[Any], None]] = []
        self._server_handlers: List[Callable[[Any], None]] = []
        self.messages_to_client = 0
        self.messages_to_server = 0

    def on_client_message(self, handler: Callable[[Any], None]) -> None:
        """Register a client-side handler for pushed payloads."""
        self._client_handlers.append(handler)

    def on_server_message(self, handler: Callable[[Any], None]) -> None:
        """Register a server-side handler for client sends."""
        self._server_handlers.append(handler)

    def push(self, payload: Any) -> None:
        """Server → client frame."""
        self.gateway._transmit(self, payload, to_client=True)

    def send(self, payload: Any) -> None:
        """Client → server frame."""
        self.gateway._transmit(self, payload, to_client=False)

    def close(self) -> None:
        """Close the connection; later frames raise :class:`ChannelClosed`."""
        if not self.closed:
            self.closed = True
            self.gateway._closed(self)

    def _deliver(self, payload: Any, to_client: bool) -> None:
        handlers = self._client_handlers if to_client else self._server_handlers
        if to_client:
            self.messages_to_client += 1
        else:
            self.messages_to_server += 1
        for handler in handlers:
            handler(payload)


class PushGateway:
    """Server side of the WebSocket channel, bound to a host instance."""

    def __init__(self, sim: Simulator, instance: Instance,
                 streams: Optional[RandomStreams] = None,
                 latency: float = 0.012,
                 ping_interval: Optional[float] = None):
        self.sim = sim
        self.instance = instance
        self.streams = streams or RandomStreams()
        self.latency = latency
        self.ping_interval = ping_interval
        self.metrics = MetricsRegistry(sim, namespace="channel.ws")
        self._connections: Dict[str, WebSocketConnection] = {}

    def connect(self, client_name: str) -> WebSocketConnection:
        """Open a connection; charges a handshake exchange."""
        conn = WebSocketConnection(self, client_name)
        self._connections[conn.connection_id] = conn
        handshake = 2 * HTTP_HEADER_BYTES  # HTTP upgrade round trip
        self.instance.record_bytes_in(HTTP_HEADER_BYTES)
        self.instance.record_bytes_out(HTTP_HEADER_BYTES)
        self.metrics.counter("bytes").increment(handshake)
        self.metrics.counter("messages").increment(2)
        self.metrics.gauge("connections").add(1)
        if self.ping_interval is not None:
            self.sim.spawn(self._ping_loop(conn), name=f"ws.ping.{conn.connection_id}")
        return conn

    def connections(self) -> List[WebSocketConnection]:
        """Open connections."""
        return [c for c in self._connections.values() if not c.closed]

    def broadcast(self, payload: Any) -> None:
        """Push ``payload`` to every open connection."""
        for conn in self.connections():
            conn.push(payload)

    def _transmit(self, conn: WebSocketConnection, payload: Any,
                  to_client: bool) -> None:
        if conn.closed:
            raise ChannelClosed(conn.connection_id)
        frame_bytes = WS_FRAME_BYTES + payload_bytes(payload)
        self.metrics.counter("bytes").increment(frame_bytes)
        self.metrics.counter("messages").increment()
        if to_client:
            self.instance.record_bytes_out(frame_bytes)
        else:
            self.instance.record_bytes_in(frame_bytes)
        self.instance.submit(Job(cost=PUSH_CPU_COST, name="ws-frame"))
        sent_at = self.sim.now

        def deliver() -> None:
            if conn.closed:
                return
            if to_client and self.instance.network_blackholed:
                return
            self.metrics.recorder("delivery_latency").record(self.sim.now - sent_at)
            conn._deliver(payload, to_client)

        jitter = self.streams.get("ws.latency").uniform(0, self.latency / 2)
        self.sim.schedule(self.latency + jitter, deliver)

    def _closed(self, conn: WebSocketConnection) -> None:
        self.metrics.gauge("connections").add(-1)

    def _ping_loop(self, conn: WebSocketConnection):
        while not conn.closed and self.instance.is_serving:
            yield self.ping_interval
            if conn.closed or not self.instance.is_serving:
                return
            ping_bytes = 2 * WS_FRAME_BYTES  # ping + pong
            self.metrics.counter("bytes").increment(ping_bytes)
            self.metrics.counter("messages").increment(2)
            self.instance.record_bytes_out(WS_FRAME_BYTES)
            self.instance.record_bytes_in(WS_FRAME_BYTES)


class PollingClient:
    """Periodic-poll alternative to the push channel.

    The server side is a mailbox of pending updates per client; each poll
    round-trips full HTTP headers and drains the mailbox.  Notification
    latency is therefore uniform(0, interval) + transfer, and idle
    clients still cost two header blocks per tick — the inefficiency the
    paper avoids.
    """

    def __init__(self, sim: Simulator, instance: Instance, client_name: str,
                 interval: float = 5.0,
                 metrics: Optional[MetricsRegistry] = None):
        self.sim = sim
        self.instance = instance
        self.client_name = client_name
        self.interval = interval
        self.metrics = metrics or MetricsRegistry(sim, namespace="channel.poll")
        self._pending: Deque[Tuple[float, Any]] = deque()
        self._client_handlers: List[Callable[[Any], None]] = []
        self._running = False
        self.polls = 0
        self.updates_delivered = 0

    def on_client_message(self, handler: Callable[[Any], None]) -> None:
        """Register a client-side handler for delivered updates."""
        self._client_handlers.append(handler)

    def push(self, payload: Any) -> None:
        """Server enqueues an update for the client's next poll."""
        self._pending.append((self.sim.now, payload))

    def start(self) -> None:
        """Begin the poll loop."""
        if self._running:
            return
        self._running = True
        self.sim.spawn(self._poll_loop(), name=f"poll.{self.client_name}")

    def stop(self) -> None:
        """Stop polling after the current tick."""
        self._running = False

    def _poll_loop(self):
        while self._running:
            yield self.interval
            if not self._running or not self.instance.is_serving:
                return
            self.polls += 1
            drained = list(self._pending)
            self._pending.clear()
            request_bytes = HTTP_HEADER_BYTES
            response_bytes = HTTP_HEADER_BYTES + sum(
                payload_bytes(p) for _t, p in drained)
            self.instance.record_bytes_in(request_bytes)
            self.instance.record_bytes_out(response_bytes)
            self.metrics.counter("bytes").increment(request_bytes + response_bytes)
            self.metrics.counter("messages").increment(2)
            self.instance.submit(Job(cost=POLL_CPU_COST, name="poll"))
            for enqueued_at, payload in drained:
                self.updates_delivered += 1
                self.metrics.recorder("delivery_latency").record(
                    self.sim.now - enqueued_at)
                for handler in self._client_handlers:
                    handler(payload)

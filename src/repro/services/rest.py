"""Stateless, resource-oriented REST engine.

The paper's architectural core: "RESTful web services remain completely
stateless with all data required to transition between different states
being included in the service request".  Consequences the benches verify:

* any replica of a service can answer any request (enabling the LB to
  route "to any available hosted service regardless of previous
  interactions"),
* killing a server loses no session state,
* the per-request server cost is flat — no transaction-state lookkeeping.

A :class:`RestApi` is a route table shared by every replica; a
:class:`RestServer` binds the api to one hosting instance, charging each
request's processing cost as a job on that instance (so CPU utilisation
and queueing reflect request load, which the LB observes).

The route table is **versioned**: every registered pattern is mounted
canonically under ``/v1`` and, for compatibility, at its original
unversioned path as a *deprecation shim* — same handler, same cost, but
responses carry a ``Deprecation`` header and a ``Link`` to the successor
route.  ``GET /v1`` answers with a machine-readable description of the
table (method, path, cost, safety, cacheability) — the contract a typed
client or a substitutable execution node programs against.  All error
bodies are RFC-7807-style problem documents (:mod:`.envelope`) whose
``retryable`` field feeds the client-side retry decision.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cloud.instance import Instance, Job
from repro.obs.context import extract_context
from repro.obs.hub import obs_of
from repro.obs.tracer import Span
from repro.services.envelope import problem
from repro.services.idempotency import request_fingerprint
from repro.services.transport import HttpRequest, HttpResponse, Network
from repro.sim import Signal, Simulator
from repro.tenancy.context import TENANT_HEADER, valid_tenant_id

#: Default CPU cost (reference-core seconds) of a lightweight handler.
DEFAULT_HANDLER_COST = 0.005

#: The current (and only) API version routes are mounted under.
API_VERSION = "v1"

#: Sentinel: the idempotency admission already answered the request.
_REQUEST_ANSWERED = object()


class HttpError(Exception):
    """Raise inside a handler to produce a non-200 response.

    ``retryable`` flows into the problem-document body so clients know
    whether backing off and replaying the identical request can help;
    ``None`` defers to the status-class default.
    """

    def __init__(self, status: int, message: str,
                 retryable: Optional[bool] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.retryable = retryable

    def to_problem(self) -> Dict[str, Any]:
        """The problem document for this error."""
        return problem(self.status, self.message, retryable=self.retryable)


@dataclass
class Route:
    """One method+path-pattern binding.

    Patterns use ``{name}`` placeholders: ``/datasets/{dataset_id}``.
    ``cost`` is the CPU charge of running the handler; handlers that do
    real modelling work instead return a :class:`RestDeferred` carrying
    their own job.  ``safe`` declares the handler side-effect-free /
    replayable (defaults to ``True`` for GET); ``cacheable`` declares
    that responses carry an ``ETag`` worth revalidating.  Shim routes
    (``deprecated=True``) answer with a ``Deprecation`` header naming
    their ``successor``.
    """

    method: str
    pattern: str
    handler: Callable[[HttpRequest, Dict[str, str]], Any]
    cost: float = DEFAULT_HANDLER_COST
    safe: Optional[bool] = None
    cacheable: bool = False
    deprecated: bool = False
    successor: Optional[str] = None

    def __post_init__(self) -> None:
        if self.safe is None:
            self.safe = self.method == "GET"
        regex = re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", self.pattern)
        self._compiled = re.compile(f"^{regex}$")

    def match(self, method: str, path: str) -> Optional[Dict[str, str]]:
        """Path params when the route matches, else ``None``."""
        if method != self.method:
            return None
        found = self._compiled.match(path)
        if found is None:
            return None
        return found.groupdict()


@dataclass
class RestDeferred:
    """A handler result that needs heavy compute.

    The server submits ``job`` to its instance and answers with
    ``render(job_outcome)`` once it completes — this is how WPS Execute
    turns a model run into instance load.
    """

    job: Job
    render: Callable[[Any], Tuple[int, Any]]


@dataclass
class RestCacheable:
    """A handler result carrying a revalidation token.

    The server compares ``etag`` against the request's ``If-None-Match``
    header: on a match it answers ``304 Not Modified`` with no body —
    the widget polling a dataset pays header bytes, not payload bytes —
    otherwise the full ``status``/``body`` goes out, stamped with an
    ``ETag`` header the client replays on its next poll.
    """

    body: Any
    etag: str
    status: int = 200
    headers: Dict[str, str] = field(default_factory=dict)


@dataclass
class RestBackground:
    """A handler result that answers now and keeps computing.

    The server responds immediately with ``status``/``body`` and submits
    ``job`` in the background (asynchronous WPS Execute: the job's
    ``compute`` records its own completion in shared storage).
    """

    job: Job
    status: int
    body: Any


class RestApi:
    """A versioned route table; stateless by construction.

    Registering ``GET /datasets`` mounts the canonical route at
    ``/v1/datasets`` *and* an unversioned deprecation shim at
    ``/datasets``; ``GET /v1`` describes the canonical table.
    """

    def __init__(self, name: str):
        self.name = name
        self._routes: List[Route] = []
        self._canonical: List[Route] = []
        #: Shared :class:`~repro.services.idempotency.IdempotencyIndex`;
        #: when set, mutating requests carrying an ``Idempotency-Key``
        #: header execute exactly once across every replica of this api.
        self.idempotency: Optional[Any] = None
        #: Optional admission guard: a callable taking the request and
        #: returning an :class:`HttpResponse` to answer with instead of
        #: serving, or ``None`` to admit.  Runs after routing, before
        #: any handler work — the geo layer installs one that sheds
        #: ``/v1`` traffic with a problem-document ``503 Retry-After``
        #: while the serving region is degraded and spillover saturated.
        self.guard: Optional[Callable[[HttpRequest],
                                      Optional[HttpResponse]]] = None
        #: Optional :class:`~repro.tenancy.registry.TenantRegistry`;
        #: when set, ``Tenant`` headers are validated at the boundary
        #: (400 malformed, 403 unknown-in-strict-mode) and responses,
        #: spans and RED metrics carry the tenant label.
        self.tenants: Optional[Any] = None
        #: Optional :class:`~repro.tenancy.ratelimit.RateLimiter`;
        #: when set, each request spends a token from its tenant's
        #: bucket and exhaustion answers 429 with ``Retry-After`` and
        #: ``X-RateLimit-*`` headers before any handler work.
        self.limiter: Optional[Any] = None
        #: When True (and a registry is installed) requests without a
        #: ``Tenant`` header are refused with 401 instead of running as
        #: the anonymous default principal.
        self.require_tenant: bool = False
        describe = Route("GET", f"/{API_VERSION}", self._describe_api)
        self._routes.append(describe)
        self._canonical.append(describe)

    def route(self, method: str, pattern: str,
              handler: Callable[[HttpRequest, Dict[str, str]], Any],
              cost: float = DEFAULT_HANDLER_COST,
              safe: Optional[bool] = None, cacheable: bool = False) -> None:
        """Register ``handler`` for ``method pattern`` (v1 + legacy shim)."""
        canonical = Route(method, f"/{API_VERSION}{pattern}", handler,
                          cost, safe=safe, cacheable=cacheable)
        shim = Route(method, pattern, handler, cost, safe=safe,
                     cacheable=cacheable, deprecated=True,
                     successor=canonical.pattern)
        self._routes.extend((canonical, shim))
        self._canonical.append(canonical)

    def get(self, pattern: str, handler, cost: float = DEFAULT_HANDLER_COST,
            safe: Optional[bool] = None, cacheable: bool = False) -> None:
        """Register a GET route."""
        self.route("GET", pattern, handler, cost, safe=safe,
                   cacheable=cacheable)

    def post(self, pattern: str, handler, cost: float = DEFAULT_HANDLER_COST,
             safe: Optional[bool] = None, cacheable: bool = False) -> None:
        """Register a POST route."""
        self.route("POST", pattern, handler, cost, safe=safe,
                   cacheable=cacheable)

    def resolve(self, request: HttpRequest) -> Tuple[Optional[Route], Dict[str, str]]:
        """Find the route matching ``request`` (first match wins)."""
        for route in self._routes:
            params = route.match(request.method, request.path)
            if params is not None:
                return route, params
        return None, {}

    @property
    def routes(self) -> List[Route]:
        """The registered routes, in registration order."""
        return list(self._routes)

    def describe(self) -> Dict[str, Any]:
        """The machine-readable contract of the canonical (v1) table."""
        return {
            "service": self.name,
            "version": API_VERSION,
            "routes": [
                {
                    "method": route.method,
                    "path": route.pattern,
                    "cost": route.cost,
                    "safe": bool(route.safe),
                    "cacheable": route.cacheable,
                }
                for route in self._canonical
            ],
        }

    def _describe_api(self, request: HttpRequest, params: Dict[str, str]):
        return self.describe()


class RestServer:
    """One replica of a :class:`RestApi` hosted on an instance."""

    def __init__(self, sim: Simulator, api: RestApi, instance: Instance):
        self.sim = sim
        self.api = api
        self.instance = instance
        self.requests_handled = 0

    @property
    def address(self) -> str:
        """The network address of the hosting instance."""
        return self.instance.address

    def bind(self, network: Network) -> "RestServer":
        """Register this replica on the network; returns self."""
        network.register(self.instance.address, self, self.instance)
        return self

    def handle(self, request: HttpRequest) -> Signal:
        """Process a request; returns a signal fired with the response."""
        done = self.sim.signal(f"rest.{self.api.name}.{request.path}")
        route, params = self.api.resolve(request)
        # traced requests get a server span covering route resolution
        # through response emission; the job it submits continues below it
        context = extract_context(request.headers)
        span: Optional[Span] = None
        if context is not None:
            span = obs_of(self.sim).tracer.start_span(
                f"rest {self.api.name} {request.method} "
                f"{route.pattern if route else request.path}",
                parent=context, kind="server",
                attributes={"instance": self.instance.instance_id})
        # server-side RED metrics ride a second waiter on the response
        # signal: requests/errors counters plus a duration histogram
        # whose buckets retain a trace exemplar when the request was
        # traced (a replica that never answers records nothing — the
        # client's view covers that failure mode)
        started = self.sim.now
        api_metrics = obs_of(self.sim).api_metrics.sub(self.api.name)
        tenant_id: Optional[str] = None

        def metered():
            response = yield done
            api_metrics.counter("requests").increment()
            if response.status >= 500:
                api_metrics.counter("errors").increment()
            if tenant_id is not None:
                # per-tenant RED series ride the same registry under
                # brace-labeled names (the scraper's label convention)
                api_metrics.counter(
                    f"requests{{tenant={tenant_id}}}").increment()
                if response.status >= 500:
                    api_metrics.counter(
                        f"errors{{tenant={tenant_id}}}").increment()
                if response.status == 429:
                    api_metrics.counter(
                        f"throttled{{tenant={tenant_id}}}").increment()
            exemplar = None
            if span is not None:
                exemplar = {"trace_id": span.trace_id, "t": self.sim.now,
                            "status": response.status}
            api_metrics.histogram("duration").observe(
                self.sim.now - started, exemplar=exemplar)

        self.sim.spawn(metered(), name=f"rest.meter.{self.api.name}")
        if route is None:
            self._finish(done, HttpResponse(
                status=404,
                body=problem(404, "no route",
                             f"no route {request.method} {request.path}",
                             retryable=False)),
                span)
            return done
        tenant_id, denied = self._resolve_tenant(request)
        if denied is not None:
            self._finish(done, denied, span, route)
            return done
        if span is not None and tenant_id is not None:
            span.set_attribute("tenant", tenant_id)
        if self.api.guard is not None:
            denial = self.api.guard(request)
            if denial is not None:
                self._finish(done, denial, span, route)
                return done
        ticket = self._admit_idempotent(done, request, route, span,
                                        tenant_id)
        if ticket is _REQUEST_ANSWERED:
            return done
        job = Job(cost=route.cost, name=f"rest:{request.method}:{route.pattern}",
                  compute=lambda: route.handler(request, params))
        if span is not None:
            job.trace = span.context
        outcome_signal = self.instance.submit(job)

        def waiter():
            outcome = yield outcome_signal
            self.requests_handled += 1
            if not outcome.succeeded:
                if outcome.error == "queue full":
                    self._finish(done, self._overloaded(), span, route, ticket)
                elif outcome.error and outcome.error.startswith("job raised"):
                    self._finish(done, self._error_response(outcome.error),
                                 span, route, ticket)
                elif span is not None:
                    # instance died: the response never leaves; the caller
                    # times out, and the server span records why
                    span.finish(error=outcome.error or "instance lost")
                return
            result = outcome.value
            if isinstance(result, RestDeferred):
                deferred_job = result.job
                if span is not None and deferred_job.trace is None:
                    deferred_job.trace = span.context
                deferred_signal = self.instance.submit(deferred_job)

                def deferred_waiter():
                    deferred = yield deferred_signal
                    if not deferred.succeeded:
                        if deferred.error == "queue full":
                            self._finish(done, self._overloaded(), span,
                                         route, ticket)
                        elif deferred.error and deferred.error.startswith("job raised"):
                            self._finish(done, self._error_response(
                                deferred.error), span, route, ticket)
                        elif span is not None:
                            span.finish(error=deferred.error or "instance lost")
                        return
                    status, body, headers = self._coerce(
                        result.render(deferred.value))
                    self._finish(done, HttpResponse(status=status, body=body,
                                                    headers=headers),
                                 span, route, ticket)

                self.sim.spawn(deferred_waiter(), name="rest.deferred")
            elif isinstance(result, RestCacheable):
                self._finish(done, self._revalidate(request, result), span,
                             route, ticket)
            elif isinstance(result, RestBackground):
                background_job = result.job
                if span is not None and background_job.trace is None:
                    background_job.trace = span.context
                self.instance.submit(background_job)
                self._finish(done, HttpResponse(status=result.status,
                                                body=result.body), span, route,
                             ticket)
            else:
                status, body, headers = self._coerce(result)
                self._finish(done, HttpResponse(status=status, body=body,
                                                headers=headers),
                             span, route, ticket)

        self.sim.spawn(waiter(), name=f"rest.wait.{self.api.name}")
        return done

    def _resolve_tenant(self, request: HttpRequest
                        ) -> Tuple[Optional[str], Optional[HttpResponse]]:
        """Extract-and-validate the ``Tenant`` header at the boundary.

        Returns ``(tenant_id, denial)``: a malformed header is a 400, an
        unknown tenant under a strict registry a 403, a missing header
        under ``require_tenant`` a 401, and an exhausted token bucket a
        429 carrying ``Retry-After`` + ``X-RateLimit-*``.  With neither
        registry nor limiter installed every request passes untouched —
        the pre-tenancy path.
        """
        api = self.api
        raw = request.headers.get(TENANT_HEADER)
        if raw is None:
            if api.require_tenant and api.tenants is not None:
                return None, HttpResponse(status=401, body=problem(
                    401, "tenant required",
                    f"requests to {api.name} must carry a "
                    f"{TENANT_HEADER} header",
                    retryable=False, type_slug="tenant-required"))
            if api.limiter is not None:
                # anonymous traffic shares the default principal's
                # bucket — an unlabelled flood is still a flood
                decision = api.limiter.check(None)
                if not decision.allowed:
                    return None, self._throttled(decision)
            return None, None
        if not valid_tenant_id(raw):
            return None, HttpResponse(status=400, body=problem(
                400, "invalid tenant",
                f"malformed {TENANT_HEADER} header {raw!r}",
                retryable=False, type_slug="invalid-tenant"))
        if api.tenants is not None and api.tenants.strict \
                and not api.tenants.known(raw):
            return None, HttpResponse(status=403, body=problem(
                403, "unknown tenant",
                f"tenant {raw!r} is not registered with {api.name}",
                retryable=False, type_slug="unknown-tenant"))
        if api.limiter is not None:
            decision = api.limiter.check(raw)
            if not decision.allowed:
                return raw, self._throttled(decision)
        return raw, None

    @staticmethod
    def _throttled(decision) -> HttpResponse:
        body = problem(
            429, "rate limit exceeded",
            f"tenant {decision.tenant!r} exhausted its request budget; "
            f"retry after {decision.retry_after:.0f}s",
            retryable=True, type_slug="rate-limited",
            tenant=decision.tenant)
        return HttpResponse(status=429, body=body,
                            headers=decision.headers())

    def _admit_idempotent(self, done: Signal, request: HttpRequest,
                          route: Route, span: Optional[Span],
                          tenant: Optional[str] = None):
        """Classify a keyed mutating request before any work happens.

        Returns the ``(key, epoch, tenant)`` ticket the final
        ``_finish`` must record under, ``None`` when the request is
        unkeyed, or the :data:`_REQUEST_ANSWERED` sentinel when the
        admission itself produced the response (replay, conflict,
        in-flight).  Keys are tenant-scoped: the same key from two
        tenants is two independent requests."""
        index = self.api.idempotency
        key = request.headers.get("Idempotency-Key")
        if index is None or not key or request.method == "GET":
            return None
        admission = index.admit(key, request_fingerprint(
            request.method, request.path, request.body), tenant=tenant)
        if admission.kind == "replay":
            stored = admission.response or {}
            headers = dict(stored.get("headers") or {})
            headers["Idempotency-Replayed"] = "true"
            self._finish(done, HttpResponse(
                status=stored.get("status", 200), body=stored.get("body"),
                headers=headers), span, route)
            return _REQUEST_ANSWERED
        if admission.kind == "conflict":
            self._finish(done, HttpResponse(status=422, body=problem(
                422, "idempotency key reuse",
                f"Idempotency-Key {key!r} was already used with a "
                f"different request", retryable=False)), span, route)
            return _REQUEST_ANSWERED
        if admission.kind == "pending":
            # Another attempt with this key is executing right now; a
            # retryable 409 lets the client's backoff outwait it and
            # collect the replay.
            self._finish(done, HttpResponse(status=409, body=problem(
                409, "request in flight",
                f"Idempotency-Key {key!r} has an attempt in flight",
                retryable=True)), span, route)
            return _REQUEST_ANSWERED
        return (key, admission.epoch, tenant)

    @staticmethod
    def _overloaded() -> HttpResponse:
        # a full accept queue is the canonical transient failure: the
        # same request against a quieter (or newly booted) replica works
        return HttpResponse(status=503, body=problem(
            503, "server overloaded", "accept queue full", retryable=True))

    def _error_response(self, error: str) -> HttpResponse:
        # handler raised: HttpError carries a status, anything else is a 500
        match = re.search(r"job raised: (.*)", error)
        message = match.group(1) if match else error
        return HttpResponse(status=500, body=problem(
            500, "handler error", message, retryable=False))

    @staticmethod
    def _revalidate(request: HttpRequest,
                    cacheable: RestCacheable) -> HttpResponse:
        headers = dict(cacheable.headers)
        headers["ETag"] = cacheable.etag
        if request.headers.get("If-None-Match") == cacheable.etag:
            return HttpResponse(status=304, body=None, headers=headers)
        return HttpResponse(status=cacheable.status, body=cacheable.body,
                            headers=headers)

    @staticmethod
    def _coerce(result: Any) -> Tuple[int, Any, Dict[str, str]]:
        # handlers return a body, a (status, body) pair, or a
        # (status, body, headers) triple
        if isinstance(result, tuple) and isinstance(result[0], int):
            if len(result) == 2:
                return result[0], result[1], {}
            if len(result) == 3:
                return result[0], result[1], dict(result[2] or {})
        return 200, result, {}

    def _finish(self, done: Signal, response: HttpResponse,
                span: Optional[Span] = None,
                route: Optional[Route] = None,
                ticket: Optional[Tuple[str, int, Optional[str]]] = None
                ) -> None:
        if ticket is not None and self.api.idempotency is not None:
            key, epoch, tenant = ticket
            if response.status < 500:
                # pin the outcome: every replay of this key now gets
                # exactly this response without re-running the handler
                self.api.idempotency.record(key, epoch, response.status,
                                            response.body, response.headers,
                                            tenant=tenant)
            else:
                # the handler never completed usefully (5xx); release
                # the reservation so a retry can execute fresh
                self.api.idempotency.forget(key, tenant=tenant)
        if route is not None and route.deprecated:
            # the legacy shim answers, but tells the client where to go
            response.headers.setdefault("Deprecation", "true")
            if route.successor:
                response.headers.setdefault(
                    "Link", f"<{route.successor}>; rel=\"successor-version\"")
        if span is not None and not span.finished:
            span.set_attribute("status", response.status)
            span.finish(error=None if response.status < 500
                        else f"http {response.status}")
        if not done.fired:
            done.fire(response)


def handler_error_to_response(fn: Callable) -> Callable:
    """Wrap a handler so :class:`HttpError` becomes a status tuple.

    Job execution converts exceptions to failed outcomes, losing the
    status code; wrapping keeps 4xx semantics (and the ``retryable``
    verdict) intact.
    """

    def wrapped(request: HttpRequest, params: Dict[str, str]):
        try:
            return fn(request, params)
        except HttpError as err:
            return err.status, err.to_problem()

    return wrapped

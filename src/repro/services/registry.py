"""Service registry — the catalogue of everything-as-a-service.

The XaaS ethos makes every dataset, model and management function "a
system resource that is made accessible via a web service interface";
the registry is where those resources are advertised and discovered.
Records carry the interface standard (``rest``, ``wps``, ``sos``,
``soap``) so composition code can pick compatible endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass
class ServiceRecord:
    """One advertised service endpoint."""

    name: str
    service_type: str          # "wps" | "sos" | "rest" | "soap"
    address: str
    standard: str = ""         # e.g. "OGC WPS 1.0.0"
    metadata: Dict[str, str] = field(default_factory=dict)


class ServiceRegistry:
    """Register/lookup of service records.

    Multiple records may share a name (replicas of the same service at
    different addresses); ``deregister`` removes by exact
    ``(name, address)`` so replacing a failed replica is precise.
    """

    def __init__(self) -> None:
        self._records: List[ServiceRecord] = []

    def register(self, record: ServiceRecord) -> ServiceRecord:
        """Advertise a record; duplicate (name, address) pairs are errors."""
        if any(r.name == record.name and r.address == record.address
               for r in self._records):
            raise ValueError(
                f"{record.name!r} already registered at {record.address!r}")
        self._records.append(record)
        return record

    def deregister(self, name: str, address: str) -> bool:
        """Remove a record; returns whether anything was removed."""
        before = len(self._records)
        self._records = [r for r in self._records
                         if not (r.name == name and r.address == address)]
        return len(self._records) < before

    def lookup(self, name: str) -> List[ServiceRecord]:
        """All records advertising ``name`` (replicas)."""
        return [r for r in self._records if r.name == name]

    def by_type(self, service_type: str) -> List[ServiceRecord]:
        """All records of the given interface type."""
        return [r for r in self._records if r.service_type == service_type]

    def find(self, predicate: Callable[[ServiceRecord], bool]) -> List[ServiceRecord]:
        """Records matching an arbitrary predicate."""
        return [r for r in self._records if predicate(r)]

    def first_address(self, name: str) -> Optional[str]:
        """Address of the first replica of ``name``, if any."""
        records = self.lookup(name)
        return records[0].address if records else None

    def all(self) -> List[ServiceRecord]:
        """Every record, in registration order."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

"""The `/v1/observability` API: the telemetry plane over the wire.

Operators (and the admin console, and the bench's protected client) read
the deployment's health the same way stakeholders read catchment data —
through a versioned REST service on the simulated network, with RFC-7807
problems for misses and ``ETag`` revalidation on the heavy read paths
(a span tree is immutable once its trace goes quiet; polling it should
cost header bytes, not payload bytes).

Routes (all mounted under ``/v1`` with deprecated unversioned shims,
like every other API in the fabric):

* ``GET /observability/health`` — composite health score + plane vitals;
* ``GET /observability/slo`` — per-SLO state with burn rates;
* ``GET /observability/alerts`` — firing alerts + transition history;
* ``GET /observability/metrics`` — the series catalogue;
* ``GET /observability/metrics/{name}`` — range query (``start``/``end``
  query params; any other query key is a label matcher);
* ``GET /observability/exemplars/{metric}`` — trace exemplars retained
  by a histogram's buckets, worst first;
* ``GET /observability/traces/{trace_id}`` — the span tree, nested and
  rendered.
"""

from __future__ import annotations

from typing import Any, Dict, TYPE_CHECKING

from repro.obs.export import render_tree, span_tree
from repro.obs.tracer import Tracer
from repro.perf.keys import content_key
from repro.services.envelope import problem
from repro.services.rest import RestApi, RestCacheable
from repro.services.transport import HttpRequest
from repro.sim.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.telemetry import TelemetryPlane

#: points returned per series by a range query before downsampling
MAX_POINTS_PER_SERIES = 500


def build_observability_api(sim: Simulator, plane: "TelemetryPlane",
                            tracer: Tracer) -> RestApi:
    """The observability route table over ``plane`` and ``tracer``."""
    api = RestApi("observability")

    def health(request: HttpRequest, params: Dict[str, str]):
        body = dict(plane.snapshot())
        body["time"] = sim.now
        return body

    def slo_status(request: HttpRequest, params: Dict[str, str]):
        return {"time": sim.now, "slos": plane.slo_status()}

    def alerts(request: HttpRequest, params: Dict[str, str]):
        return {
            "time": sim.now,
            "firing": plane.firing_alerts(),
            "history": list(plane.alerts.history),
        }

    def metric_names(request: HttpRequest, params: Dict[str, str]):
        body = {"names": plane.store.names(),
                "series": plane.store.series_count()}
        return RestCacheable(body=body, etag=content_key(body, "metrics"))

    def metric_range(request: HttpRequest, params: Dict[str, str]):
        name = params["name"]
        query = dict(request.query)
        try:
            start = float(query.pop("start")) if "start" in query else None
            end = float(query.pop("end")) if "end" in query else None
        except ValueError:
            return 400, problem(400, "bad range",
                                "start/end must be numbers", retryable=False)
        matches = plane.store.query(name, **query)
        if not matches:
            return 404, problem(
                404, "no such metric",
                f"no series named {name!r} matching {query}",
                retryable=False)
        series_out = []
        for series in matches:
            points = series.points(start, end)
            if len(points) > MAX_POINTS_PER_SERIES:
                # evenly thinned, endpoints kept: a dashboard wants the
                # shape of an hour, not ten thousand rows of it
                step = len(points) / float(MAX_POINTS_PER_SERIES)
                points = [points[int(i * step)]
                          for i in range(MAX_POINTS_PER_SERIES - 1)] \
                    + [points[-1]]
            series_out.append({"labels": dict(series.labels),
                               "points": [[t, v] for t, v in points]})
        return {"name": name, "series": series_out}

    def exemplars(request: HttpRequest, params: Dict[str, str]):
        try:
            floor = float(request.query.get("min", 0.0))
        except ValueError:
            return 400, problem(400, "bad threshold",
                                "min must be a number", retryable=False)
        found = plane.exemplars(params["metric"], min_value=floor)
        if not found:
            return 404, problem(
                404, "no exemplars",
                f"no bucket of {params['metric']!r} retains an exemplar "
                f"above {floor}", retryable=False)
        return {"metric": params["metric"], "exemplars": found}

    def trace(request: HttpRequest, params: Dict[str, str]):
        trace_id = params["trace_id"]
        spans = tracer.spans(trace_id=trace_id)
        if not spans:
            return 404, problem(404, "no such trace",
                                f"no spans for trace {trace_id!r}",
                                retryable=False)
        roots = span_tree(spans, trace_id=trace_id)
        body: Dict[str, Any] = {
            "trace_id": trace_id,
            "spans": [
                {
                    "name": s.name,
                    "span_id": s.span_id,
                    "parent_id": s.parent_id,
                    "start": s.start,
                    "end": s.end,
                    "status": s.status,
                    "error": s.error,
                } for s in sorted(spans,
                                  key=lambda s: (s.start, s.span_id))
            ],
            "rendered": render_tree(roots),
        }
        return RestCacheable(body=body,
                             etag=content_key(body, f"trace/{trace_id}"))

    api.get("/observability/health", health, cost=0.002)
    api.get("/observability/slo", slo_status, cost=0.002)
    api.get("/observability/alerts", alerts, cost=0.002)
    api.get("/observability/metrics", metric_names, cost=0.002,
            cacheable=True)
    api.get("/observability/metrics/{name}", metric_range, cost=0.005)
    api.get("/observability/exemplars/{metric}", exemplars, cost=0.003)
    api.get("/observability/traces/{trace_id}", trace, cost=0.005,
            cacheable=True)
    return api

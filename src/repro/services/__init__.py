"""Web-service fabric of the EVOp infrastructure.

Everything in EVOp is "as a service": datasets, models and management
functions are resources behind uniform interfaces.  This package
reproduces that fabric over the simulated network:

* :mod:`repro.services.transport` — the simulated HTTP-ish network
  (latency, byte accounting, timeouts, dead-instance behaviour).
* :mod:`repro.services.rest` — stateless resource-oriented engine, the
  paper's architectural default.
* :mod:`repro.services.soap` — stateful transaction-oriented baseline the
  paper argues against (kept for the comparison benchmarks, and because
  OGC standards are SOAP-shaped).
* :mod:`repro.services.wps` / :mod:`repro.services.sos` — the two OGC
  standards EVOp adopts for models and sensors.
* :mod:`repro.services.channels` — HTML5-WebSocket-style duplex push and
  the periodic-polling baseline.
* :mod:`repro.services.registry` — the service catalogue.
* :mod:`repro.services.envelope` — the one RFC-7807-style problem
  document every error body is built from.
* :mod:`repro.services.client` — the typed v1 client every consumer
  goes through (resilient, revalidating).
"""

from repro.services.client import RestClient
from repro.services.envelope import problem
from repro.services.transport import (
    ConnectionRefused,
    HttpRequest,
    HttpResponse,
    Network,
    RequestTimeout,
)
from repro.services.rest import (
    HttpError,
    RestApi,
    RestBackground,
    RestDeferred,
    RestServer,
    Route,
)
from repro.services.soap import SoapClient, SoapFault, SoapServer, SoapSession
from repro.services.ogc_soap import SoapWpsBinding
from repro.services.wps import (
    InputSpec,
    ProcessDescription,
    WpsProcess,
    WpsService,
)
from repro.services.sos import (
    InMemoryObservationSource,
    Observation,
    SensorDescription,
    SosService,
)
from repro.services.channels import (
    ChannelClosed,
    PollingClient,
    PushGateway,
    WebSocketConnection,
)
from repro.services.registry import ServiceRecord, ServiceRegistry

__all__ = [
    "ChannelClosed",
    "ConnectionRefused",
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "InMemoryObservationSource",
    "InputSpec",
    "Network",
    "Observation",
    "PollingClient",
    "ProcessDescription",
    "PushGateway",
    "RequestTimeout",
    "RestApi",
    "RestBackground",
    "RestClient",
    "RestDeferred",
    "RestServer",
    "Route",
    "problem",
    "SensorDescription",
    "ServiceRecord",
    "ServiceRegistry",
    "SoapClient",
    "SoapFault",
    "SoapServer",
    "SoapSession",
    "SoapWpsBinding",
    "SosService",
    "WebSocketConnection",
    "WpsProcess",
    "WpsService",
]

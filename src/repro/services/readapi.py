"""The redesigned ``/v1`` read API over the data plane's views.

These are the routes the portal's million-reader traffic lands on, so
every one of them is a dictionary lookup against a materialized view —
never a recomputation from raw rows — and the heavy ones revalidate:

* ``GET /catchments`` — known catchments (paginated);
* ``GET /catchments/{catchment}/stats`` — the rolling-window stats
  document, ``ETag``-keyed on the per-catchment revision counter so an
  unchanged catchment answers ``304`` for header bytes;
* ``GET /observations/latest`` — the latest-observation table, cursor
  paginated over procedure ids;
* ``GET /runs`` — the run-summary index, cursor paginated in
  submission order, filterable by ``status``;
* ``GET /runs/{run_id}`` — one run's summary;
* ``GET /dataplane`` — pipeline health (lag, DLQ depth, view
  revisions) for the admin console.

All collection routes take ``cursor``/``limit`` and answer with
``nextCursor`` plus an RFC-8288 ``Link: rel="next"`` header; all
misses are RFC-7807 problems.
"""

from __future__ import annotations

from typing import Dict, TYPE_CHECKING

from repro.services.envelope import problem
from repro.services.pagination import CursorError, paginate
from repro.services.rest import RestApi, RestCacheable
from repro.services.transport import HttpRequest
from repro.sim.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dataplane.plane import DataPlane


def build_read_api(sim: Simulator, plane: "DataPlane",
                   tenants=None, limiter=None) -> RestApi:
    """The CQRS read-side route table over ``plane``'s views.

    ``tenants``/``limiter`` install the tenancy boundary: ``Tenant``
    header validation and per-tenant token-bucket admission (429 +
    ``Retry-After`` on exhaustion) exactly as on the WPS apis.
    """
    api = RestApi("read")
    api.tenants = tenants
    api.limiter = limiter

    def catchments(request: HttpRequest, params: Dict[str, str]):
        names = plane.stats.catchments()
        try:
            page = paginate(request, names, names)
        except CursorError as err:
            return 400, problem(400, "invalid cursor", str(err),
                                retryable=False)
        return 200, {"catchments": page.items, "total": page.total,
                     "nextCursor": page.next_cursor}, page.headers

    def catchment_stats(request: HttpRequest, params: Dict[str, str]):
        catchment = params["catchment"]
        stats = plane.stats.stats(catchment)
        if stats is None:
            return 404, problem(
                404, "no such catchment",
                f"no observations materialized for {catchment!r}",
                retryable=False)
        revision = plane.stats.catchment_revision(catchment)
        return RestCacheable(body=stats,
                             etag=f'"stats-{catchment}-{revision}"')

    def latest_observations(request: HttpRequest, params: Dict[str, str]):
        rows = plane.latest.rows()
        keys = [row["procedure"] for row in rows]
        try:
            page = paginate(request, rows, keys)
        except CursorError as err:
            return 400, problem(400, "invalid cursor", str(err),
                                retryable=False)
        return 200, {"observations": page.items, "total": page.total,
                     "nextCursor": page.next_cursor}, page.headers

    def runs(request: HttpRequest, params: Dict[str, str]):
        status = (request.query or {}).get("status")
        # the sort key is the run's position in the *unfiltered* index:
        # append-only, so cursors stay stable even when a run's status
        # (and thus its filtered membership) changes mid-pagination
        pairs = [(i, row) for i, row in enumerate(plane.runs.rows())
                 if not status or row.get("status") == status]
        keys = [i for i, _ in pairs]
        rows = [row for _, row in pairs]
        try:
            page = paginate(request, rows, keys)
        except CursorError as err:
            return 400, problem(400, "invalid cursor", str(err),
                                retryable=False)
        return 200, {"runs": page.items, "total": page.total,
                     "nextCursor": page.next_cursor}, page.headers

    def run_detail(request: HttpRequest, params: Dict[str, str]):
        run = plane.runs.run(params["run_id"])
        if run is None:
            return 404, problem(404, "no such run",
                                f"no run {params['run_id']!r}",
                                retryable=False)
        return run

    def dataplane_health(request: HttpRequest, params: Dict[str, str]):
        body = plane.snapshot()
        body["time"] = sim.now
        return body

    # flat, tiny handler costs: the whole point of the materialized
    # read side is that serving cost does not grow with data volume
    api.get("/catchments", catchments, cost=0.002)
    api.get("/catchments/{catchment}/stats", catchment_stats, cost=0.002,
            cacheable=True)
    api.get("/observations/latest", latest_observations, cost=0.002)
    api.get("/runs", runs, cost=0.002)
    api.get("/runs/{run_id}", run_detail, cost=0.002)
    api.get("/dataplane", dataplane_health, cost=0.002)
    return api

"""OGC Sensor Observation Service (SOS) over the REST engine.

The live in-situ feeds (rain gauges, river-level sensors, webcams) are
published through SOS's core operation set: ``GetCapabilities``,
``DescribeSensor`` and ``GetObservation`` with temporal filtering.  The
service is backed by any *observation source* — an object exposing
``procedures()``, ``describe(procedure_id)`` and
``observations(procedure_id, begin, end)`` — which is how the data layer
plugs in without this module knowing about catchments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.cloud.instance import Instance
from repro.services.envelope import problem
from repro.services.pagination import CursorError, is_paginated, paginate
from repro.services.rest import RestApi, RestServer
from repro.services.transport import HttpRequest
from repro.sim import Simulator


@dataclass(frozen=True)
class SensorDescription:
    """The DescribeSensor document for one procedure."""

    procedure_id: str
    observed_property: str
    units: str
    latitude: float
    longitude: float
    catchment: str = ""
    description: str = ""

    def to_document(self) -> Dict[str, Any]:
        """Serialisable DescribeSensor response body."""
        return {
            "procedure": self.procedure_id,
            "observedProperty": self.observed_property,
            "uom": self.units,
            "position": {"lat": self.latitude, "lon": self.longitude},
            "catchment": self.catchment,
            "description": self.description,
        }


@dataclass(frozen=True)
class Observation:
    """One observed value at one instant."""

    procedure_id: str
    observed_property: str
    time: float
    value: float
    units: str

    def to_document(self) -> Dict[str, Any]:
        """Serialisable observation record."""
        return {
            "procedure": self.procedure_id,
            "observedProperty": self.observed_property,
            "time": self.time,
            "value": self.value,
            "uom": self.units,
        }


class SosService:
    """An SOS endpoint over an observation source."""

    def __init__(self, sim: Simulator, name: str, source: Any):
        self.sim = sim
        self.name = name
        self.source = source
        self.api = RestApi(f"sos.{name}")
        self.api.get("/sos", self._get_capabilities)
        self.api.get("/sos/sensors/{procedure_id}", self._describe_sensor)
        self.api.get("/sos/observations/{procedure_id}", self._get_observation,
                     cost=0.01)

    def replica(self, instance: Instance) -> RestServer:
        """Create a server replica of this service on ``instance``."""
        return RestServer(self.sim, self.api, instance)

    # -- handlers ---------------------------------------------------------------

    def _get_capabilities(self, request: HttpRequest, params: Dict[str, str]):
        offerings = []
        for procedure_id in self.source.procedures():
            desc: SensorDescription = self.source.describe(procedure_id)
            offerings.append({
                "procedure": procedure_id,
                "observedProperty": desc.observed_property,
                "catchment": desc.catchment,
            })
        return {"service": "SOS", "version": "2.0.0", "title": self.name,
                "offerings": offerings}

    def _describe_sensor(self, request: HttpRequest, params: Dict[str, str]):
        procedure_id = params["procedure_id"]
        if procedure_id not in self.source.procedures():
            return 404, problem(404, "no such procedure",
                                f"no procedure {procedure_id!r}",
                                retryable=False)
        return self.source.describe(procedure_id).to_document()

    def _get_observation(self, request: HttpRequest, params: Dict[str, str]):
        procedure_id = params["procedure_id"]
        if procedure_id not in self.source.procedures():
            return 404, problem(404, "no such procedure",
                                f"no procedure {procedure_id!r}",
                                retryable=False)
        try:
            begin, end = self._temporal_filter(request)
        except ValueError as err:
            return 400, problem(400, "invalid temporal filter", str(err),
                                retryable=False)
        observations: List[Observation] = self.source.observations(
            procedure_id, begin, end)
        documents = [obs.to_document() for obs in observations]
        body = {
            "procedure": procedure_id,
            "begin": begin,
            "end": end,
            "observations": documents,
        }
        if not is_paginated(request):
            # legacy shim: the historical unpaginated body, behind the
            # Deprecation/Link headers the shim route already adds
            return body
        # keyset: [time, position] — ties on time break by position, and
        # a later ingest only ever appends larger keys, so a cursor a
        # client is holding stays valid across new observations
        keys = [[doc["time"], i] for i, doc in enumerate(documents)]
        try:
            page = paginate(request, documents, keys)
        except CursorError as err:
            return 400, problem(400, "invalid cursor", str(err),
                                retryable=False)
        body["observations"] = page.items
        body["total"] = page.total
        body["nextCursor"] = page.next_cursor
        return 200, body, page.headers

    @staticmethod
    def _temporal_filter(request: HttpRequest) -> Tuple[float, float]:
        query = request.query or {}
        try:
            begin = float(query.get("begin", 0.0))
            end = float(query.get("end", float("inf")))
        except (TypeError, ValueError):
            raise ValueError(
                f"begin/end must be numbers, got begin={query.get('begin')!r} "
                f"end={query.get('end')!r}") from None
        return begin, end


class InMemoryObservationSource:
    """A simple observation source for tests and composition.

    Real deployments back SOS with the sensor network in
    :mod:`repro.data.sensors`; this in-memory variant lets services be
    tested without the data layer.
    """

    def __init__(self) -> None:
        self._descriptions: Dict[str, SensorDescription] = {}
        self._observations: Dict[str, List[Observation]] = {}

    def add_sensor(self, description: SensorDescription) -> None:
        """Register a sensor procedure."""
        self._descriptions[description.procedure_id] = description
        self._observations.setdefault(description.procedure_id, [])

    def add_observation(self, observation: Observation) -> None:
        """Append an observation for a registered procedure."""
        if observation.procedure_id not in self._descriptions:
            raise KeyError(observation.procedure_id)
        self._observations[observation.procedure_id].append(observation)

    def procedures(self) -> List[str]:
        """All registered procedure ids, sorted."""
        return sorted(self._descriptions)

    def describe(self, procedure_id: str) -> SensorDescription:
        """DescribeSensor payload for ``procedure_id``."""
        return self._descriptions[procedure_id]

    def observations(self, procedure_id: str, begin: float,
                     end: float) -> List[Observation]:
        """Observations in ``[begin, end]`` ordered by time."""
        return sorted(
            (obs for obs in self._observations[procedure_id]
             if begin <= obs.time <= end),
            key=lambda obs: obs.time)

"""Competing consumers: lease-claimed streams, redelivery, dead letters.

Several consumer instances share the work of applying streams to the
materialized views.  Coordination mirrors the PR 4 journal lease
protocol: a consumer *claims* a stream by writing a lease blob with a
TTL and a monotonically-increasing epoch; a dead consumer's claim
expires and a peer takes over with a higher epoch, fencing any late
writes from the previous holder.

Delivery is at-least-once — a consumer can die after applying an event
but before committing its cursor, so the next holder redelivers.  The
views deduplicate by ``(stream, seq)``, making the apply idempotent.

A *poison* event (one whose apply raises, deterministically) must not
stall the partition: after ``max_attempts`` deliveries it is parked in
the :class:`DeadLetterQueue` and the cursor advances past it.  Parked
events stay durable and inspectable, and can be redriven after a fix.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.cloud.errors import BlobNotFound
from repro.cloud.storage import Container
from repro.dataplane.events import Event
from repro.dataplane.stream import StreamSet
from repro.obs.hub import obs_of
from repro.sim import Simulator

#: Deliveries before an event is declared poison and parked.
MAX_ATTEMPTS = 3

#: How long a stream claim lives without renewal.
CLAIM_TTL = 30.0


class ClaimTable:
    """Durable per-stream leases with TTL expiry and epoch fencing."""

    def __init__(self, sim: Simulator, container: Container,
                 ttl: float = CLAIM_TTL):
        self.sim = sim
        self.ttl = ttl
        self._container = container

    @staticmethod
    def _key(stream: str) -> str:
        return f"claims/{stream}"

    def _read(self, stream: str) -> Optional[Dict[str, Any]]:
        try:
            return self._container.get(self._key(stream)).payload
        except BlobNotFound:
            return None

    def claim(self, stream: str, owner: str) -> Optional[int]:
        """Try to claim ``stream``; returns the epoch held, or ``None``.

        A live claim by another owner refuses; an expired or absent
        claim is taken over with a bumped epoch (fencing the old
        holder's late commits).
        """
        current = self._read(stream)
        now = self.sim.now
        if current is not None:
            alive = current["expires"] > now
            if alive and current["owner"] != owner:
                return None
            epoch = current["epoch"] + (0 if current["owner"] == owner
                                        and alive else 1)
        else:
            epoch = 0
        self._container.put(self._key(stream), {
            "owner": owner, "epoch": epoch, "expires": now + self.ttl})
        return epoch

    def renew(self, stream: str, owner: str, epoch: int) -> bool:
        """Extend a held claim; ``False`` if it was lost (fenced)."""
        current = self._read(stream)
        if (current is None or current["owner"] != owner
                or current["epoch"] != epoch):
            return False
        self._container.put(self._key(stream), {
            "owner": owner, "epoch": epoch,
            "expires": self.sim.now + self.ttl})
        return True

    def holds(self, stream: str, owner: str, epoch: int) -> bool:
        """Whether ``owner`` still holds ``stream`` at ``epoch``."""
        current = self._read(stream)
        return (current is not None and current["owner"] == owner
                and current["epoch"] == epoch
                and current["expires"] > self.sim.now)

    def release(self, stream: str, owner: str) -> None:
        """Drop a claim so peers can take the stream immediately."""
        current = self._read(stream)
        if current is not None and current["owner"] == owner:
            try:
                self._container.delete(self._key(stream))
            except BlobNotFound:  # pragma: no cover - defensive
                pass

    def owner_of(self, stream: str) -> Optional[str]:
        """The live holder of ``stream``, if any."""
        current = self._read(stream)
        if current is None or current["expires"] <= self.sim.now:
            return None
        return current["owner"]


class DeadLetterQueue:
    """Durable parking lot for poison events."""

    def __init__(self, sim: Simulator, container: Container):
        self.sim = sim
        self._container = container
        self.parked = 0

    def park(self, event: Event, error: str, attempts: int) -> None:
        """Park a poison event, keeping the failure context."""
        key = f"dlq/{event.stream}/{event.seq:08d}"
        self._container.put(key, {
            "event": event.to_document(),
            "error": error,
            "attempts": attempts,
            "parked_at": self.sim.now,
        })
        self.parked += 1
        obs_of(self.sim).events.emit(
            "dataplane.dlq.parked", stream=event.stream, seq=event.seq,
            event_kind=event.kind, error=error, attempts=attempts)

    def depth(self) -> int:
        """How many events are parked."""
        return len(self._container.list(prefix="dlq/"))

    def entries(self) -> List[Dict[str, Any]]:
        """Every parked entry, oldest key first."""
        return [self._container.get(k).payload
                for k in self._container.list(prefix="dlq/")]

    def redrive(self, apply: Callable[[Event], None]) -> int:
        """Re-apply parked events through ``apply``; drop the ones that
        now succeed.  Returns how many were drained."""
        drained = 0
        for key in self._container.list(prefix="dlq/"):
            doc = self._container.get(key).payload["event"]
            event = Event(stream=doc["stream"], seq=doc["seq"],
                          time=doc["time"], kind=doc["kind"],
                          key=doc["key"], payload=doc["payload"])
            try:
                apply(event)
            except Exception:  # noqa: BLE001 - still poison, keep parked
                continue
            self._container.delete(key)
            drained += 1
        return drained


class ConsumerGroup:
    """One consumer instance of the competing group.

    Every instance shares the claim table, cursor blobs and DLQ through
    the plane's container; ``poll_once`` claims whatever streams are
    free and drains them, so running several instances splits the
    partitions without any further coordination.
    """

    def __init__(self, sim: Simulator, name: str, streams: StreamSet,
                 claims: ClaimTable, dlq: DeadLetterQueue,
                 container: Container,
                 apply: Callable[[Event], None],
                 max_attempts: int = MAX_ATTEMPTS,
                 poll_interval: float = 0.5):
        self.sim = sim
        self.name = name
        self.streams = streams
        self.claims = claims
        self.dlq = dlq
        self.apply = apply
        self.max_attempts = max_attempts
        self.poll_interval = poll_interval
        self._container = container
        self._epochs: Dict[str, int] = {}
        self.delivered = 0
        self.redelivered = 0
        self._stopped = False

    # -- durable cursors & attempt counts ------------------------------------

    def _cursor_key(self, stream: str) -> str:
        return f"cursors/{stream}"

    def committed_cursor(self, stream: str) -> int:
        """The first sequence not yet durably applied for ``stream``."""
        try:
            return self._container.get(self._cursor_key(stream)).payload
        except BlobNotFound:
            return 0

    def _commit_cursor(self, stream: str, seq: int, epoch: int) -> None:
        # Fenced commit: a holder that lost its claim must not move the
        # cursor under the new holder's feet.
        if not self.claims.holds(stream, self.name, epoch):
            return
        self._container.put(self._cursor_key(stream), seq)

    def _attempts_key(self, stream: str, seq: int) -> str:
        return f"attempts/{stream}/{seq:08d}"

    def _attempts(self, stream: str, seq: int) -> int:
        try:
            return self._container.get(
                self._attempts_key(stream, seq)).payload
        except BlobNotFound:
            return 0

    def _bump_attempts(self, stream: str, seq: int) -> int:
        count = self._attempts(stream, seq) + 1
        self._container.put(self._attempts_key(stream, seq), count)
        return count

    def _clear_attempts(self, stream: str, seq: int) -> None:
        try:
            self._container.delete(self._attempts_key(stream, seq))
        except BlobNotFound:
            pass

    # -- the drain loop ------------------------------------------------------

    def poll_once(self) -> int:
        """Claim free streams and drain them; returns events applied."""
        applied = 0
        for stream_name in self.streams.names():
            epoch = self._epochs.get(stream_name)
            if epoch is None or not self.claims.renew(
                    stream_name, self.name, epoch):
                epoch = self.claims.claim(stream_name, self.name)
                if epoch is None:
                    self._epochs.pop(stream_name, None)
                    continue
                self._epochs[stream_name] = epoch
            applied += self._drain_stream(stream_name, epoch)
        return applied

    def _drain_stream(self, stream_name: str, epoch: int) -> int:
        stream = self.streams.stream(stream_name)
        cursor = self.committed_cursor(stream_name)
        applied = 0
        for event in stream.read(from_seq=cursor):
            attempts = self._bump_attempts(stream_name, event.seq)
            if attempts > 1:
                self.redelivered += 1
            try:
                self.apply(event)
            except Exception as exc:  # noqa: BLE001 - poison isolation
                if attempts >= self.max_attempts:
                    self.dlq.park(event, error=repr(exc), attempts=attempts)
                    self._clear_attempts(stream_name, event.seq)
                    # Advance past the poison event: the partition must
                    # not stall behind one bad record.
                    cursor = event.seq + 1
                    self._commit_cursor(stream_name, cursor, epoch)
                    continue
                # Leave the cursor where it is; the event redelivers on
                # the next poll (ours or a peer's after failover).
                break
            self.delivered += 1
            applied += 1
            self._clear_attempts(stream_name, event.seq)
            cursor = event.seq + 1
            self._commit_cursor(stream_name, cursor, epoch)
        return applied

    def lag(self) -> int:
        """Undelivered events across all streams (consumer lag)."""
        return sum(
            max(0, self.streams.stream(name).head
                - self.committed_cursor(name))
            for name in self.streams.names())

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spawn the background poll loop."""
        self._stopped = False
        self.sim.spawn(self._run(), name=f"consumer-{self.name}")

    def stop(self) -> None:
        """Stop polling and release held claims (graceful shutdown)."""
        self._stopped = True
        for stream_name in list(self._epochs):
            self.claims.release(stream_name, self.name)
            self._epochs.pop(stream_name, None)

    def crash(self) -> None:
        """Stop polling *without* releasing claims (failure injection):
        peers must wait out the claim TTL before taking over."""
        self._stopped = True
        self._epochs.clear()

    def _run(self):
        obs_of(self.sim).events.emit(
            "dataplane.consumer.started", consumer=self.name)
        while not self._stopped:
            self.poll_once()
            yield self.poll_interval

"""Transactional outbox: write-plus-publish without dual-write races.

A writer (the warehouse, a sensor network, the WPS) must both update
its own state and announce the change.  Doing those as two independent
durable writes loses events when the process dies between them; the
outbox pattern instead records the event *next to* the data write —
in the simulator both happen in the same cooperative step, so they are
atomic — and a separate :class:`OutboxRelay` publishes pending entries
to the event streams, marking each only after the stream append is
durable.

The relay can die between append and mark: the entry is then drained
again, so publication is at-least-once.  Each entry carries its outbox
sequence as a dedup token, which :meth:`EventStream.append
<repro.dataplane.stream.EventStream.append>` absorbs — making the
outbox → stream hop effectively exactly-once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.cloud.errors import BlobNotFound
from repro.cloud.storage import Container
from repro.durable.journal import jsonable
from repro.obs.hub import obs_of
from repro.sim import Simulator


@dataclass(frozen=True)
class OutboxEntry:
    """One pending publication: which stream, what event."""

    seq: int
    time: float
    stream: str
    kind: str
    key: str
    payload: Dict[str, Any]

    @property
    def token(self) -> str:
        """The stream-side dedup token for this entry."""
        return f"outbox:{self.seq:010d}"

    def to_document(self) -> Dict[str, Any]:
        return {"seq": self.seq, "time": self.time, "stream": self.stream,
                "kind": self.kind, "key": self.key,
                "payload": dict(self.payload)}

    @classmethod
    def from_document(cls, doc: Dict[str, Any]) -> "OutboxEntry":
        return cls(seq=doc["seq"], time=doc["time"], stream=doc["stream"],
                   kind=doc["kind"], key=doc["key"],
                   payload=dict(doc["payload"]))


class TransactionalOutbox:
    """The durable pending-event table writers record into."""

    def __init__(self, sim: Simulator, container: Container):
        self.sim = sim
        self._container = container
        self.recorded = 0
        # Resume the sequence past whatever a predecessor left pending.
        keys = container.list(prefix="pending/")
        self._next_seq = (
            int(keys[-1].rsplit("/", 1)[1]) + 1 if keys else 0)

    @staticmethod
    def _key(seq: int) -> str:
        return f"pending/{seq:010d}"

    def record(self, stream: str, kind: str, key: str = "",
               payload: Optional[Dict[str, Any]] = None) -> OutboxEntry:
        """Record one event for publication (the writer-side half)."""
        ok, canonical = jsonable(dict(payload or {}))
        if not ok:
            raise ValueError(
                f"outbox event {kind!r} for stream {stream!r} has a "
                f"non-JSON payload")
        entry = OutboxEntry(seq=self._next_seq, time=self.sim.now,
                            stream=stream, kind=kind, key=key,
                            payload=canonical)
        self._next_seq += 1
        self._container.put(self._key(entry.seq), entry.to_document())
        self.recorded += 1
        return entry

    def pending(self) -> List[OutboxEntry]:
        """Entries recorded but not yet marked published, oldest first."""
        entries = []
        for key in self._container.list(prefix="pending/"):
            try:
                entries.append(
                    OutboxEntry.from_document(self._container.get(key).payload))
            except BlobNotFound:  # pragma: no cover - concurrent mark
                continue
        return entries

    def mark_published(self, entry: OutboxEntry) -> None:
        """Drop a pending entry once its stream append is durable."""
        try:
            self._container.delete(self._key(entry.seq))
        except BlobNotFound:
            pass

    def depth(self) -> int:
        """How many entries await publication."""
        return len(self._container.list(prefix="pending/"))


class OutboxRelay:
    """Drains one outbox into a :class:`~repro.dataplane.stream.StreamSet`.

    ``drain_once`` is also callable directly (and synchronously) — the
    plane's ``pump`` uses that for deterministic benchmarks, while
    ``start`` spawns the background polling loop for end-to-end runs.
    """

    def __init__(self, sim: Simulator, outbox: TransactionalOutbox,
                 streams, poll_interval: float = 0.5):
        self.sim = sim
        self.outbox = outbox
        self.streams = streams
        self.poll_interval = poll_interval
        self.published = 0
        self._stopped = False

    def drain_once(self) -> int:
        """Publish every pending entry; returns how many moved."""
        moved = 0
        for entry in self.outbox.pending():
            stream = self.streams.stream(entry.stream)
            stream.append(entry.kind, key=entry.key, token=entry.token,
                          payload=entry.payload)
            # Mark only after the append is durable; a crash before this
            # line redelivers, and the token dedups on the stream side.
            self.outbox.mark_published(entry)
            self.published += 1
            moved += 1
        return moved

    def start(self) -> None:
        """Spawn the background drain loop."""
        self._stopped = False
        self.sim.spawn(self._run(), name="outbox-relay")

    def stop(self) -> None:
        self._stopped = True

    def _run(self):
        obs_of(self.sim).events.emit("dataplane.relay.started")
        while not self._stopped:
            self.drain_once()
            yield self.poll_interval

"""Materialized read models, updated incrementally, pinned to recompute.

The CQRS promise is that a view maintained event-by-event equals the
view you would get by recomputing from the raw rows.  With floats that
is only true if the *fold order* matches: ``sum`` over a window must
accumulate left-to-right in event-time order both incrementally and in
the recompute.  :func:`fold_values` is that single fold, used by the
incremental path (append extends the fold; eviction re-folds the
remaining window from scratch) and by :func:`recompute_catchment_stats`
alike — which is what makes the bench's bit-identity assertion hold.

Views deduplicate by ``(stream, seq)``: consumers deliver at least
once, and replay-based rebuild delivers everything again.  All state an
event touches is keyed by its stream, so the order in which different
partitions drain never changes a view's contents.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro.dataplane.events import Event
from repro.perf.keys import content_key

#: Rolling-statistics window over observation event time, in hours.
STATS_WINDOW_HOURS = 24.0


def fold_values(values) -> Tuple[int, float, Optional[float], Optional[float]]:
    """The one left-to-right fold: ``(count, sum, min, max)``.

    Both the incremental view and the recompute arm call this (or
    extend its accumulation one value at a time, which is the same
    operation), so their float results are bit-identical.
    """
    count = 0
    total = 0.0
    lo: Optional[float] = None
    hi: Optional[float] = None
    for v in values:
        count += 1
        total += v
        if lo is None or v < lo:
            lo = v
        if hi is None or v > hi:
            hi = v
    return count, total, lo, hi


def stats_document(catchment: str, count: int, total: float,
                   lo: Optional[float], hi: Optional[float],
                   latest_time: Optional[float],
                   window_hours: float = STATS_WINDOW_HOURS
                   ) -> Dict[str, Any]:
    """The canonical stats rendering both arms serve."""
    return {
        "catchment": catchment,
        "windowHours": window_hours,
        "count": count,
        "sum": total,
        "mean": (total / count) if count else None,
        "min": lo,
        "max": hi,
        "latestTime": latest_time,
    }


def recompute_catchment_stats(catchment: str,
                              rows: List[Dict[str, Any]],
                              window_hours: float = STATS_WINDOW_HOURS
                              ) -> Dict[str, Any]:
    """Stats for ``catchment`` from raw observation rows (the arm the
    views are pinned against).

    ``rows`` are observation dicts with ``time`` and ``value`` keys, in
    event-time order — the same order the event stream delivers them.
    """
    ordered = [r for r in rows]
    latest = ordered[-1]["time"] if ordered else None
    if latest is not None:
        horizon = latest - window_hours * 3600.0
        ordered = [r for r in ordered if r["time"] >= horizon]
    count, total, lo, hi = fold_values(r["value"] for r in ordered)
    return stats_document(catchment, count, total, lo, hi, latest,
                          window_hours)


class MaterializedView:
    """Base class: sequence dedup, revision counting, ETags.

    ``apply`` is idempotent under redelivery — an event at or below the
    stream's applied high-water mark is dropped.  ``revision`` bumps on
    every state change, which is what the read API's ETags key off.
    """

    name = "view"

    def __init__(self):
        self._positions: Dict[str, int] = {}
        self.revision = 0
        self.applied = 0
        self.duplicates = 0

    def apply(self, event: Event) -> bool:
        """Apply one event; ``False`` when it was a duplicate."""
        seen = self._positions.get(event.stream, -1)
        if event.seq <= seen:
            self.duplicates += 1
            return False
        self._apply(event)
        self._positions[event.stream] = event.seq
        self.revision += 1
        self.applied += 1
        return True

    def _apply(self, event: Event) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        """Drop all state (the rebuild-from-replay entry point)."""
        self._positions = {}
        self.revision = 0
        self.applied = 0
        self.duplicates = 0

    def etag(self) -> str:
        """A revision-derived validator for conditional reads."""
        return f'"{self.name}-{self.revision}"'


class LatestObservationView(MaterializedView):
    """Per-procedure latest observation (the SOS dashboard table).

    Keeps the observation with the greatest event time per procedure —
    backfill events older than the current latest never regress it.
    """

    name = "latest"

    def __init__(self):
        super().__init__()
        self._latest: Dict[str, Dict[str, Any]] = {}

    def _apply(self, event: Event) -> None:
        if event.kind != "observation":
            return
        row = dict(event.payload)
        current = self._latest.get(event.key)
        if current is None or row["time"] >= current["time"]:
            self._latest[event.key] = row

    def latest(self, procedure: str) -> Optional[Dict[str, Any]]:
        return self._latest.get(procedure)

    def rows(self) -> List[Dict[str, Any]]:
        """All latest rows, keyed and sorted by procedure id."""
        return [dict(self._latest[p], procedure=p)
                for p in sorted(self._latest)]


class CatchmentStatsView(MaterializedView):
    """Per-catchment rolling stats over a sliding event-time window.

    The incremental contract: appending a value extends the running
    fold exactly as :func:`fold_values` would have; evicting expired
    values re-folds the surviving window from scratch.  Either way the
    resulting ``(count, sum, min, max)`` is what a full recompute over
    the same rows produces, bit for bit.
    """

    name = "stats"

    def __init__(self, window_hours: float = STATS_WINDOW_HOURS):
        super().__init__()
        self.window_hours = window_hours
        self._windows: Dict[str, deque] = {}
        self._sums: Dict[str, float] = {}
        self._latest_time: Dict[str, Optional[float]] = {}
        self._revisions: Dict[str, int] = {}

    def _apply(self, event: Event) -> None:
        if event.kind != "observation":
            return
        row = event.payload
        catchment = row.get("catchment") or event.key
        window = self._windows.setdefault(catchment, deque())
        window.append((row["time"], row["value"]))
        latest = self._latest_time.get(catchment)
        if latest is None or row["time"] > latest:
            self._latest_time[catchment] = row["time"]
        horizon = self._latest_time[catchment] - self.window_hours * 3600.0
        if window and window[0][0] < horizon:
            # Eviction: drop expired rows, then re-fold the survivors so
            # the float accumulation matches a from-scratch recompute.
            while window and window[0][0] < horizon:
                window.popleft()
            _, total, _, _ = fold_values(v for _, v in window)
            self._sums[catchment] = total
        else:
            # Pure append: extend the fold by one term, which is the
            # same operation fold_values performs last.
            self._sums[catchment] = self._sums.get(catchment, 0.0) \
                + row["value"]
        self._revisions[catchment] = self._revisions.get(catchment, 0) + 1

    def stats(self, catchment: str) -> Optional[Dict[str, Any]]:
        """The materialized stats document, or ``None`` if unknown."""
        window = self._windows.get(catchment)
        if window is None:
            return None
        values = [v for _, v in window]
        count = len(values)
        lo = min(values) if values else None
        hi = max(values) if values else None
        return stats_document(
            catchment, count, self._sums.get(catchment, 0.0), lo, hi,
            self._latest_time.get(catchment), self.window_hours)

    def catchments(self) -> List[str]:
        return sorted(self._windows)

    def catchment_revision(self, catchment: str) -> int:
        """Per-catchment change counter (the stats route's ETag key)."""
        return self._revisions.get(catchment, 0)

    def reset(self) -> None:
        super().reset()
        self._windows = {}
        self._sums = {}
        self._latest_time = {}
        self._revisions = {}


class RunSummaryView(MaterializedView):
    """Index of model runs: submitted / finished, with result summaries."""

    name = "runs"

    def __init__(self):
        super().__init__()
        self._runs: Dict[str, Dict[str, Any]] = {}
        self._order: List[str] = []

    def _apply(self, event: Event) -> None:
        if event.kind not in ("run.submitted", "run.finished",
                              "run.failed"):
            return
        run_id = event.key
        entry = self._runs.get(run_id)
        if entry is None:
            entry = {"runId": run_id, "status": "submitted"}
            self._runs[run_id] = entry
            self._order.append(run_id)
        entry.update(event.payload)
        if event.kind == "run.finished":
            entry["status"] = "finished"
        elif event.kind == "run.failed":
            entry["status"] = "failed"

    def run(self, run_id: str) -> Optional[Dict[str, Any]]:
        return self._runs.get(run_id)

    def rows(self) -> List[Dict[str, Any]]:
        """All runs, in first-seen order (stable pagination keys)."""
        return [dict(self._runs[r]) for r in self._order]

    def reset(self) -> None:
        super().reset()
        self._runs = {}
        self._order = []


def view_fingerprint(view: MaterializedView) -> str:
    """A content hash of a view's user-visible state (rebuild pinning)."""
    if isinstance(view, CatchmentStatsView):
        state: Any = {c: view.stats(c) for c in view.catchments()}
    elif isinstance(view, LatestObservationView):
        state = view.rows()
    elif isinstance(view, RunSummaryView):
        state = view.rows()
    else:  # pragma: no cover - future view types
        state = repr(view.__dict__)
    return content_key(state)

"""The data-plane facade: containers, wiring, lifecycle, rebuild.

One :class:`DataPlane` owns the whole event-sourced pipeline for a
deployment: the transactional outbox writers record into, the durable
event streams, the competing consumer group, the dead-letter queue, and
the materialized views the read API serves.  ``pump()`` drains the
pipeline synchronously (deterministic tests and benchmarks);
``start()`` spawns the background relay and consumer loops instead.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cloud.storage import BlobStore
from repro.dataplane.consumers import (
    ClaimTable,
    ConsumerGroup,
    DeadLetterQueue,
    MAX_ATTEMPTS,
)
from repro.dataplane.events import Event
from repro.dataplane.outbox import OutboxRelay, TransactionalOutbox
from repro.dataplane.stream import StreamSet
from repro.dataplane.views import (
    CatchmentStatsView,
    LatestObservationView,
    MaterializedView,
    RunSummaryView,
    view_fingerprint,
)
from repro.obs.hub import obs_of
from repro.sim import Simulator


class DataPlane:
    """Outbox → streams → consumers → views, wired and rebuildable."""

    def __init__(self, sim: Simulator, store: BlobStore,
                 prefix: str = "dataplane",
                 consumer_count: int = 2,
                 max_attempts: int = MAX_ATTEMPTS,
                 window_hours: float = 24.0):
        self.sim = sim
        self.outbox = TransactionalOutbox(
            sim, store.create_container(f"{prefix}-outbox"))
        self.streams = StreamSet(
            sim, store.create_container(f"{prefix}-streams"))
        coordination = store.create_container(f"{prefix}-coordination")
        self.claims = ClaimTable(sim, coordination)
        self.dlq = DeadLetterQueue(sim, coordination)
        self.relay = OutboxRelay(sim, self.outbox, self.streams)

        self.stats = CatchmentStatsView(window_hours=window_hours)
        self.latest = LatestObservationView()
        self.runs = RunSummaryView()
        self.views: Tuple[MaterializedView, ...] = (
            self.stats, self.latest, self.runs)

        self.consumers: List[ConsumerGroup] = [
            ConsumerGroup(sim, f"consumer-{i}", self.streams, self.claims,
                          self.dlq, coordination, self._dispatch,
                          max_attempts=max_attempts)
            for i in range(consumer_count)]
        #: Optional hook tests use to inject poison behaviour: called
        #: with each event before the views see it; raising marks the
        #: event poison.
        self.apply_hook: Optional[Callable[[Event], None]] = None

    # -- the single apply path ----------------------------------------------

    def _dispatch(self, event: Event) -> None:
        """Apply one delivered event to every view (the consumer target)."""
        if self.apply_hook is not None:
            self.apply_hook(event)
        for view in self.views:
            view.apply(event)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spawn the relay and all consumer loops."""
        self.relay.start()
        for consumer in self.consumers:
            consumer.start()
        obs_of(self.sim).events.emit(
            "dataplane.started", consumers=len(self.consumers))

    def stop(self) -> None:
        self.relay.stop()
        for consumer in self.consumers:
            consumer.stop()

    def pump(self, rounds: int = 10) -> int:
        """Drain outbox → streams → views synchronously.

        Runs relay and consumer passes until a quiet round (or the
        round budget runs out, e.g. while events keep failing on their
        way to the DLQ).  Returns the number of events applied.
        """
        applied = 0
        for _ in range(rounds):
            moved = self.relay.drain_once()
            delivered = sum(c.poll_once() for c in self.consumers)
            applied += delivered
            if not moved and not delivered and self.lag() == 0:
                break
        return applied

    # -- health --------------------------------------------------------------

    def lag(self) -> int:
        """Published-but-unapplied events across all streams."""
        if not self.consumers:
            return self.streams.total_events()
        return self.consumers[0].lag()

    def probes(self) -> List[Any]:
        """Telemetry probes: ``(series_name, labels, fn)`` triples —
        the saturation signals of the data plane (consumer lag, DLQ and
        outbox depth), shaped like the scheduling plane's probes so
        :meth:`TelemetryPlane.watch_dataplane
        <repro.obs.telemetry.TelemetryPlane.watch_dataplane>` can mount
        them directly."""
        return [
            ("dataplane.consumer.lag", {}, lambda: float(self.lag())),
            ("dataplane.dlq.depth", {}, lambda: float(self.dlq.depth())),
            ("dataplane.outbox.depth", {},
             lambda: float(self.outbox.depth())),
            ("dataplane.stream.events", {},
             lambda: float(self.streams.total_events())),
        ]

    def snapshot(self) -> Dict[str, Any]:
        """An admin/debug rendering of pipeline health."""
        return {
            "streams": {name: self.streams.stream(name).head
                        for name in self.streams.names()},
            "outboxDepth": self.outbox.depth(),
            "published": self.relay.published,
            "lag": self.lag(),
            "dlqDepth": self.dlq.depth(),
            "views": {view.name: {"revision": view.revision,
                                  "applied": view.applied,
                                  "duplicates": view.duplicates}
                      for view in self.views},
        }

    # -- rebuild (replay for backfill) ---------------------------------------

    def rebuild(self, view: MaterializedView) -> str:
        """Rebuild a (possibly dropped) view from full stream replay.

        Events whose apply raises are skipped — exactly mirroring the
        DLQ path the live pipeline takes — so a rebuilt view matches
        the incrementally-maintained one bit for bit even when poison
        events exist.  Returns the rebuilt view's fingerprint.
        """
        view.reset()
        for name in self.streams.names():
            for event in self.streams.stream(name).replay():
                try:
                    if self.apply_hook is not None:
                        self.apply_hook(event)
                except Exception:  # noqa: BLE001 - mirrors DLQ skip
                    continue
                view.apply(event)
        obs_of(self.sim).events.emit(
            "dataplane.view.rebuilt", view=view.name,
            revision=view.revision)
        return view_fingerprint(view)

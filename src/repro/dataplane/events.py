"""The one event shape flowing through the data plane.

An :class:`Event` is immutable and content-addressed by its position:
``(stream, seq)`` identifies it forever, which is what lets consumers
redeliver safely (views deduplicate by sequence) and lets a dropped
view be rebuilt bit-identically from replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict


@dataclass(frozen=True)
class Event:
    """One durable event on one stream.

    ``key`` is the partition/entity key (procedure id, dataset id, run
    id) — all state a view derives from an event must be scoped to its
    key's stream, so that cross-stream consumption order never matters.
    ``payload`` is a JSON-safe dict (enforced at append time).
    """

    stream: str
    seq: int
    time: float
    kind: str
    key: str = ""
    payload: Dict[str, Any] = field(default_factory=dict)

    def to_document(self) -> Dict[str, Any]:
        """A serialisable rendering (DLQ entries, admin views)."""
        return {
            "stream": self.stream,
            "seq": self.seq,
            "time": self.time,
            "kind": self.kind,
            "key": self.key,
            "payload": dict(self.payload),
        }

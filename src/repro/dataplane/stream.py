"""Append-only event streams on the durable journal substrate.

An :class:`EventStream` is a sequence of CRC-checked records in a blob
container — the same record format, keying scheme (``<name>/<seq>``)
and torn-tail truncation the write-ahead run journal uses, so every
storage fault the chaos harness can inject applies to event streams
too, and a reopened stream exposes exactly what its writers made
durable.

Streams are *partitions*: observation events are partitioned per
catchment, run events live on one ``runs`` stream.  Consumers claim
whole streams (see :mod:`~repro.dataplane.consumers`), so ordering is
total within a stream and undefined across streams — which is why
views must key their state by the event's partition (documented on
:class:`~repro.dataplane.events.Event`).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.cloud.errors import BlobNotFound
from repro.cloud.storage import Container
from repro.dataplane.events import Event
from repro.durable.journal import EVENT, JournalRecord, jsonable
from repro.obs.hub import obs_of
from repro.sim import Simulator


class EventStream:
    """One append-only, durable, replayable event partition."""

    def __init__(self, sim: Simulator, container: Container, name: str):
        if "/" in name:
            raise ValueError(f"stream name {name!r} must not contain '/'")
        self.sim = sim
        self.name = name
        self._container = container
        self._events: List[Event] = []
        self._tokens: set = set()
        self.truncated_records = 0
        self.deduplicated = 0
        self._load()

    # -- durability ---------------------------------------------------------

    def _key(self, seq: int) -> str:
        return f"{self.name}/{seq:08d}"

    def _load(self) -> None:
        """Replay the container, truncating any torn tail (open path)."""
        keys = self._container.list(prefix=f"{self.name}/")
        expected = 0
        good: List[JournalRecord] = []
        bad_from: Optional[int] = None
        for i, key in enumerate(keys):
            record = self._safe_parse(key)
            if record is None or record.seq != expected:
                bad_from = i
                break
            good.append(record)
            expected += 1
        if bad_from is not None:
            dropped = keys[bad_from:]
            for key in dropped:
                try:
                    self._container.delete(key)
                except BlobNotFound:  # pragma: no cover - defensive
                    pass
            self.truncated_records += len(dropped)
            obs_of(self.sim).events.emit(
                "dataplane.stream.truncated", stream=self.name,
                dropped=len(dropped), first_bad=dropped[0])
        for record in good:
            self._absorb(record)

    def _safe_parse(self, key: str) -> Optional[JournalRecord]:
        try:
            return JournalRecord.parse(self._container.get(key).payload)
        except BlobNotFound:  # pragma: no cover - defensive
            return None

    def _absorb(self, record: JournalRecord) -> Event:
        data = record.payload
        event = Event(stream=self.name, seq=record.seq, time=record.time,
                      kind=data["kind"], key=data.get("key", ""),
                      payload=data.get("data", {}))
        self._events.append(event)
        token = data.get("token")
        if token is not None:
            self._tokens.add(token)
        return event

    # -- append / read ------------------------------------------------------

    @property
    def head(self) -> int:
        """The sequence number the next appended event will take."""
        return len(self._events)

    def append(self, kind: str, key: str = "",
               token: Optional[str] = None,
               payload: Optional[Dict] = None) -> Optional[Event]:
        """Append one durable event; returns it (or ``None`` if deduped).

        ``token`` is the publisher's dedup token (the outbox sequence):
        re-publishing after a relay crash between append and
        mark-published is absorbed here, making outbox→stream
        publication effectively exactly-once.
        """
        if token is not None and token in self._tokens:
            self.deduplicated += 1
            return None
        data = dict(payload or {})
        ok, canonical_data = jsonable(data)
        if not ok:
            raise ValueError(
                f"stream {self.name}: event payload for kind {kind!r} is "
                f"not JSON-serialisable")
        record = JournalRecord(
            seq=self.head, time=self.sim.now, run_id=self.name, kind=EVENT,
            payload={"kind": kind, "key": key, "data": canonical_data,
                     "token": token})
        self._container.put(self._key(record.seq), record.to_text())
        return self._absorb(record)

    def read(self, from_seq: int = 0,
             limit: Optional[int] = None) -> List[Event]:
        """Events with ``seq >= from_seq``, oldest first, up to ``limit``."""
        if limit is None:
            return self._events[from_seq:]
        return self._events[from_seq:from_seq + limit]

    def replay(self) -> Iterator[Event]:
        """Every durable event, oldest first (the backfill path)."""
        return iter(list(self._events))

    def __len__(self) -> int:
        return len(self._events)


class StreamSet:
    """All streams of one data plane, sharing a container.

    Streams are created lazily on first publish and rediscovered from
    the container on open, so a restarted plane sees every partition
    its predecessor wrote.
    """

    def __init__(self, sim: Simulator, container: Container):
        self.sim = sim
        self._container = container
        self._streams: Dict[str, EventStream] = {}
        for key in container.list():
            name = key.split("/", 1)[0]
            if name not in self._streams:
                self._streams[name] = EventStream(sim, container, name)

    def stream(self, name: str) -> EventStream:
        """The named stream, created (empty) if it does not exist."""
        found = self._streams.get(name)
        if found is None:
            found = EventStream(self.sim, self._container, name)
            self._streams[name] = found
        return found

    def names(self) -> List[str]:
        """All stream names, sorted."""
        return sorted(self._streams)

    def total_events(self) -> int:
        """Durable events across every stream."""
        return sum(len(s) for s in self._streams.values())

"""Event-sourced data plane: outbox → streams → consumers → views.

The portal is read-dominated: a million stakeholders polling catchment
statistics would recompute the same aggregates from raw warehouse rows
over and over.  This package turns every sensor ingest and run effect
into an append-only event stream on the durable journal substrate
(:mod:`repro.durable.journal`), and maintains *materialized read
models* — per-catchment rolling stats, latest-observation tables, a
run-summary index — updated incrementally by competing consumers so a
read is a dictionary lookup, never a recomputation.

The pieces, in data-flow order:

* :class:`TransactionalOutbox` — writers (warehouse, sensor networks,
  WPS) record events in the same step as their data write;
* :class:`OutboxRelay` — drains the outbox into per-partition
  :class:`EventStream`\\ s (CRC-checked, torn-tail-truncating, replayable);
* :class:`ConsumerGroup` — competing consumers with lease-based stream
  claims, at-least-once delivery, and a :class:`DeadLetterQueue` for
  poison events;
* :mod:`~repro.dataplane.views` — the materialized views, deduplicating
  by stream sequence so redelivery is harmless;
* :class:`DataPlane` — the facade wiring all of it, rebuildable from
  replay, served by :mod:`repro.services.readapi`.
"""

from repro.dataplane.consumers import (
    ClaimTable,
    ConsumerGroup,
    DeadLetterQueue,
)
from repro.dataplane.events import Event
from repro.dataplane.outbox import OutboxEntry, OutboxRelay, TransactionalOutbox
from repro.dataplane.plane import DataPlane
from repro.dataplane.stream import EventStream, StreamSet
from repro.dataplane.views import (
    CatchmentStatsView,
    LatestObservationView,
    MaterializedView,
    RunSummaryView,
    fold_values,
    recompute_catchment_stats,
    stats_document,
)

__all__ = [
    "CatchmentStatsView",
    "ClaimTable",
    "ConsumerGroup",
    "DataPlane",
    "DeadLetterQueue",
    "Event",
    "EventStream",
    "LatestObservationView",
    "MaterializedView",
    "OutboxEntry",
    "OutboxRelay",
    "RunSummaryView",
    "StreamSet",
    "TransactionalOutbox",
    "fold_values",
    "recompute_catchment_stats",
    "stats_document",
]

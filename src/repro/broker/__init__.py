"""Infrastructure Manager: Resource Broker and Load Balancer.

Figure 1's control plane.  The **Resource Broker** (RB) hands each portal
session "an address of a cloud instance that is suitable for the type of
computation required", keeps the session informed over its push channel,
and migrates it when the Load Balancer says so.  The **Load Balancer**
(LB) watches instance health with two objectives — *minimise costs* and
*maintain instance responsiveness* — bursting to the public cloud when
the private pool saturates, reversing when demand fades, and replacing
instances whose statistics betray the failure signatures the paper lists.
"""

from repro.broker.sessions import SessionState, SessionTable, UserSession
from repro.broker.health import HealthMonitor, HealthVerdict, VerdictTransition
from repro.broker.policies import (
    PlacementContext,
    PrivateFirstPolicy,
    PublicOnlyPolicy,
    PrivateOnlyPolicy,
    SchedulingPolicy,
    WorkloadSplitPolicy,
)
from repro.broker.pool import ManagedService
from repro.broker.load_balancer import LoadBalancer
from repro.broker.resource_broker import ResourceBroker

__all__ = [
    "HealthMonitor",
    "HealthVerdict",
    "VerdictTransition",
    "LoadBalancer",
    "ManagedService",
    "PlacementContext",
    "PrivateFirstPolicy",
    "PrivateOnlyPolicy",
    "PublicOnlyPolicy",
    "ResourceBroker",
    "SchedulingPolicy",
    "SessionState",
    "SessionTable",
    "UserSession",
    "WorkloadSplitPolicy",
]

"""The Load Balancer: autoscaling, cloudbursting, failure recovery.

Responsibilities, straight from Section IV-D:

* *minimise costs* — serve from private instances by default; upon
  saturation enter **cloudbursting** mode (public instances beside
  private ones); reverse on underuse, migrating users back to private;
* *maintain responsiveness* — watch instance statistics and, on the
  degradation signatures, start a replacement and redirect the affected
  users to it;
* redistribute sessions over running instances and use RB's push channel
  to deliver updated session information.

The LB is deliberately the only component that launches or terminates
instances; everything else asks it.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.broker.health import HealthMonitor, HealthVerdict
from repro.broker.policies import PlacementContext, SchedulingPolicy
from repro.broker.pool import ManagedService
from repro.broker.sessions import SessionTable, UserSession
from repro.cloud.errors import CloudError
from repro.cloud.instance import Instance
from repro.cloud.multicloud import MultiCloud, NodeTemplate
from repro.obs.hub import obs_of
from repro.obs.tracer import Span
from repro.services.registry import ServiceRecord, ServiceRegistry
from repro.services.transport import Network
from repro.sim import MetricsRegistry, Signal, Simulator


class LoadBalancer:
    """Pool manager for every :class:`ManagedService`."""

    def __init__(self, sim: Simulator, multicloud: MultiCloud, network: Network,
                 sessions: SessionTable, policy: SchedulingPolicy,
                 monitor: Optional[HealthMonitor] = None,
                 registry: Optional[ServiceRegistry] = None,
                 private_location: str = "private",
                 public_location: str = "public",
                 autoscale_interval: float = 15.0,
                 breakers=None):
        self.sim = sim
        self.multicloud = multicloud
        self.network = network
        self.sessions = sessions
        self.policy = policy
        self.monitor = monitor if monitor is not None else HealthMonitor(sim)
        # explicit None check: an empty registry is falsy (it has __len__)
        self.registry = registry if registry is not None else ServiceRegistry()
        self.private_location = private_location
        self.public_location = public_location
        self.autoscale_interval = autoscale_interval
        #: shared BreakerRegistry; per-location launch breakers stop the
        #: LB hammering a provider whose control plane keeps refusing
        self.breakers = breakers
        #: accept-queue bound per replica, as a multiple of its vCPUs;
        #: None disables back-pressure (the ablation baseline)
        self.queue_bound_factor: Optional[int] = 4
        self.metrics = MetricsRegistry(sim, namespace="lb")
        self.events: List[Dict] = []
        self._services: Dict[str, ManagedService] = {}
        self._waiting: Dict[str, Deque[UserSession]] = {}
        self._place_spans: Dict[str, Span] = {}  # session_id -> open span
        self._replacing: set = set()
        self._autoscaler_running = False
        self.cloudbursting = False
        self.monitor.on_verdict(self._on_verdict)

    # -- service management -----------------------------------------------------

    def manage(self, service: ManagedService,
               initial_replicas: Optional[int] = None) -> ManagedService:
        """Take ownership of ``service`` and launch its initial replicas."""
        if service.name in self._services:
            raise ValueError(f"service {service.name!r} already managed")
        self._services[service.name] = service
        self._waiting[service.name] = deque()
        count = (initial_replicas if initial_replicas is not None
                 else service.min_replicas)
        for _ in range(count):
            self.scale_up(service)
        if not self._autoscaler_running:
            self._autoscaler_running = True
            self.sim.spawn(self._autoscale_loop(), name="lb-autoscaler")
        return service

    def service(self, name: str) -> ManagedService:
        """Look up a managed service by name."""
        return self._services[name]

    def services(self) -> List[ManagedService]:
        """All managed services."""
        return list(self._services.values())

    def _service_of(self, instance: Instance) -> Optional[ManagedService]:
        for service in self._services.values():
            if instance in service.replicas:
                return service
        return None

    # -- placement ----------------------------------------------------------------

    def place_session(self, session: UserSession, service_name: str) -> None:
        """Assign ``session`` to the least-loaded replica, or queue it.

        Queued sessions are drained as soon as a replica boots — the
        session wait-time recorder is the QoS series the flash-crowd
        bench reports.
        """
        service = self._services[service_name]
        span: Optional[Span] = None
        if session.trace_context is not None:
            span = obs_of(self.sim).tracer.start_span(
                "lb.place", parent=session.trace_context, kind="placement",
                attributes={"service": service_name,
                            "session": session.session_id})
        replica = service.least_loaded()
        if replica is not None:
            session.assign(replica)
            self.metrics.recorder("session.wait").record(session.wait_time or 0.0)
            if span is not None:
                span.set_attribute("instance", replica.instance_id)
                span.finish()
        else:
            # the placement span stays open across the queue wait; it
            # closes when a booted replica drains this session
            if span is not None:
                span.annotate("queued", waiting=len(self._waiting[service_name]))
                self._place_spans[session.session_id] = span
            self._waiting[service_name].append(session)
            if service.projected_size() == 0:
                self.scale_up(service)

    def _finish_place_span(self, session: UserSession,
                           replica: Optional[Instance]) -> None:
        span = self._place_spans.pop(session.session_id, None)
        if span is None:
            return
        if replica is not None:
            span.set_attribute("instance", replica.instance_id)
            span.finish()
        else:
            span.finish(error="session ended while waiting")

    def _drain_waiting(self, service: ManagedService) -> None:
        queue = self._waiting[service.name]
        while queue:
            replica = service.least_loaded()
            if replica is None:
                return
            session = queue.popleft()
            if session.state.value == "ended":
                self._finish_place_span(session, None)
                continue
            session.assign(replica)
            self._finish_place_span(session, replica)
            self.metrics.recorder("session.wait").record(session.wait_time or 0.0)

    # -- scaling ---------------------------------------------------------------------

    def scale_up(self, service: ManagedService) -> Optional[Instance]:
        """Launch one replica per the scheduling policy.

        Returns the PENDING instance, or ``None`` if every allowed
        location refused (the private-only policy at saturation — the
        paper's grid-quota analogue).
        """
        if service.projected_size() >= service.max_replicas:
            return None
        context = PlacementContext(image=service.image, purpose=service.purpose)
        instance: Optional[Instance] = None
        chosen_location: Optional[str] = None
        for location in self.policy.locations(context):
            breaker = (self.breakers.get(f"launch@{location}")
                       if self.breakers is not None else None)
            if breaker is not None and not breaker.allow():
                self.metrics.counter(f"launch.skipped.{location}").increment()
                self._log("launch.skipped", service=service.name,
                          location=location)
                continue
            try:
                instance = self.multicloud.compute(location).launch(
                    service.image, service.flavor)
                chosen_location = location
                if breaker is not None:
                    breaker.record_success()
                break
            except CloudError:
                if breaker is not None:
                    breaker.record_failure()
                continue
        if instance is None:
            self.metrics.counter("scaleup.refused").increment()
            self._log("scaleup.refused", service=service.name)
            return None
        service.pending_launches += 1
        self._update_burst_state(chosen_location)
        self.metrics.counter(f"launch.{chosen_location}").increment()
        self._log("launch", service=service.name, location=chosen_location,
                  instance=instance.instance_id)

        def on_ready():
            booted = yield instance.ready
            service.pending_launches -= 1
            if booted is None or not instance.is_serving:
                self._log("boot.failed", instance=instance.instance_id)
                return
            # bounded accept queue: overload turns into fast 503s the
            # client retries elsewhere, not hour-long queueing
            if self.queue_bound_factor is not None:
                instance.max_queue = (self.queue_bound_factor
                                      * instance.flavor.vcpus)
            server = service.make_server(instance)
            service.replicas.append(instance)
            self.monitor.watch(instance)
            try:
                self.registry.register(ServiceRecord(
                    name=service.name, service_type="rest",
                    address=instance.address,
                    metadata={"location": chosen_location or ""}))
            except ValueError:
                pass
            self._log("replica.ready", service=service.name,
                      instance=instance.instance_id)
            self._drain_waiting(service)
            return server

        self.sim.spawn(on_ready(), name=f"lb.boot.{instance.instance_id}")
        return instance

    def scale_down(self, service: ManagedService) -> bool:
        """Retire one replica, preferring public (cost) then idle ones.

        Sessions on the victim are migrated to the remaining replicas
        before termination — the graceful migration REST statelessness
        buys.  Returns whether a replica was retired.
        """
        serving = service.serving()
        if len(serving) <= service.min_replicas:
            return False
        public = [inst for inst in serving
                  if self._location_of(inst) == self.public_location]
        candidates = public or serving
        # graceful drain: only retire replicas with no in-flight work, so
        # no caller ever loses a response to a scale-down
        idle = [inst for inst in candidates if inst.load() == 0]
        if not idle:
            return False
        victim = min(idle,
                     key=lambda inst: len(self.sessions.on_instance(inst)))
        remaining = [inst for inst in serving if inst is not victim]
        if not remaining:
            return False
        self._migrate_sessions(victim, service, reason="scale-down")
        self._retire(victim, service)
        self._log("scaledown", service=service.name, instance=victim.instance_id)
        self._update_burst_state(None)
        return True

    def _retire(self, instance: Instance, service: ManagedService) -> None:
        service.drop_replica(instance)
        self.monitor.unwatch(instance)
        self.registry.deregister(service.name, instance.address)
        self.network.unregister(instance.address)
        if not instance.is_gone:
            self.multicloud.destroy_node(instance)

    def _migrate_sessions(self, source: Instance, service: ManagedService,
                          reason: str) -> None:
        for session in self.sessions.on_instance(source):
            target = min(
                (inst for inst in service.serving() if inst is not source),
                key=lambda inst: inst.load(), default=None)
            if target is None:
                session.unassign()
                self._waiting[service.name].append(session)
            else:
                session.assign(target)
            self.metrics.counter("migrations").increment()
            self._log("migrate", session=session.session_id, reason=reason)

    def drain(self, instance: Instance) -> Signal:
        """Gracefully retire one replica on operator request.

        The maintenance path: stop routing new sessions to the instance
        (it leaves the pool immediately), migrate its sessions, wait for
        in-flight work to finish, then terminate.  Returns a signal
        fired with True when the instance is gone, or False if it was
        not a managed replica.
        """
        done = self.sim.signal(f"drain.{instance.instance_id}")
        service = self._service_of(instance)
        if service is None:
            self.sim.schedule(0.0, done.fire, False)
            return done
        service.drop_replica(instance)
        self.monitor.unwatch(instance)
        self.registry.deregister(service.name, instance.address)
        self._migrate_sessions(instance, service, reason="drain")
        self._log("drain.start", instance=instance.instance_id)

        def drainer():
            while instance.load() > 0 and instance.is_serving:
                yield 5.0
            self.network.unregister(instance.address)
            if not instance.is_gone:
                self.multicloud.destroy_node(instance)
            self._log("drain.done", instance=instance.instance_id)
            self._update_burst_state(None)
            done.fire(True)

        self.sim.spawn(drainer(), name=f"drain.{instance.instance_id}")
        return done

    # -- failure handling --------------------------------------------------------------

    def _on_verdict(self, instance: Instance, verdict: HealthVerdict) -> None:
        if not verdict.is_fault:
            return  # OVERLOADED is handled by the autoscale loop
        if instance.instance_id in self._replacing:
            return
        service = self._service_of(instance)
        if service is None:
            return
        self._replacing.add(instance.instance_id)
        self.metrics.counter(f"fault.{verdict.value}").increment()
        self._log("fault.detected", instance=instance.instance_id,
                  verdict=verdict.value)
        # redirect users first, then replace capacity, then destroy
        self._migrate_sessions(instance, service, reason=f"fault:{verdict.value}")
        self._retire(instance, service)
        self.scale_up(service)
        self._log("fault.recovered", instance=instance.instance_id)

    # -- autoscaling --------------------------------------------------------------------

    def _autoscale_loop(self):
        while True:
            yield self.autoscale_interval
            for service in self._services.values():
                self._autoscale_service(service)

    def _autoscale_service(self, service: ManagedService) -> None:
        demand = (sum(len(self.sessions.on_instance(inst))
                      for inst in service.serving())
                  + len(self._waiting[service.name]))
        desired = max(service.min_replicas,
                      min(service.max_replicas,
                          math.ceil(demand / service.sessions_per_replica)))
        current = service.projected_size()
        if desired > current:
            for _ in range(desired - current):
                if self.scale_up(service) is None:
                    break
        elif desired < current - service.pending_launches:
            for _ in range(current - service.pending_launches - desired):
                if not self.scale_down(service):
                    break
        self._rebalance(service)

    def _rebalance(self, service: ManagedService) -> None:
        """Even out session counts across serving replicas."""
        serving = service.serving()
        if len(serving) < 2:
            return
        counts = {inst.instance_id: len(self.sessions.on_instance(inst))
                  for inst in serving}
        while True:
            busiest = max(serving, key=lambda i: counts[i.instance_id])
            quietest = min(serving, key=lambda i: counts[i.instance_id])
            if counts[busiest.instance_id] - counts[quietest.instance_id] <= 1:
                break
            session = self.sessions.on_instance(busiest)[0]
            session.assign(quietest)
            counts[busiest.instance_id] -= 1
            counts[quietest.instance_id] += 1
            self.metrics.counter("rebalances").increment()

    # -- cloudburst bookkeeping -----------------------------------------------------------

    def _update_burst_state(self, just_launched_location: Optional[str]) -> None:
        public_nodes = [inst for service in self._services.values()
                        for inst in service.replicas
                        if self._location_of(inst) == self.public_location
                        and not inst.is_gone]
        bursting_now = bool(public_nodes) or (
            just_launched_location == self.public_location)
        if bursting_now and not self.cloudbursting:
            self.cloudbursting = True
            self.metrics.counter("cloudburst.activations").increment()
            self._log("cloudburst.enter")
        elif not bursting_now and self.cloudbursting:
            self.cloudbursting = False
            self.metrics.counter("cloudburst.reversals").increment()
            self._log("cloudburst.exit")

    def _location_of(self, instance: Instance) -> str:
        try:
            return self.multicloud.location_of(instance)
        except CloudError:
            return "unknown"

    def _log(self, kind: str, **fields) -> None:
        entry = {"t": self.sim.now, "event": kind}
        entry.update(fields)
        self.events.append(entry)
        # mirror every decision into the shared structured event log, so
        # LB activity lines up with traces and instance lifecycle events
        obs_of(self.sim).events.emit(f"lb.{kind}", **fields)

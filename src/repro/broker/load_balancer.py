"""The Load Balancer: autoscaling, cloudbursting, failure recovery.

Responsibilities, straight from Section IV-D:

* *minimise costs* — serve from private instances by default; upon
  saturation enter **cloudbursting** mode (public instances beside
  private ones); reverse on underuse, migrating users back to private;
* *maintain responsiveness* — watch instance statistics and, on the
  degradation signatures, start a replacement and redirect the affected
  users to it;
* redistribute sessions over running instances and use RB's push channel
  to deliver updated session information.

The LB is deliberately the only component that launches or terminates
instances; everything else asks it.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.broker.health import HealthMonitor, HealthVerdict
from repro.broker.policies import PlacementContext, SchedulingPolicy
from repro.broker.pool import ManagedService
from repro.broker.sessions import SessionTable, UserSession
from repro.cloud.errors import CloudError
from repro.cloud.instance import Instance
from repro.cloud.multicloud import MultiCloud, NodeTemplate
from repro.obs.hub import obs_of
from repro.obs.tracer import Span
from repro.sched.core import Dispatcher, PriorityClass
from repro.sched.ledger import CapacityLedger
from repro.services.registry import ServiceRecord, ServiceRegistry
from repro.services.transport import Network
from repro.sim import MetricsRegistry, Signal, Simulator


class LoadBalancer:
    """Pool manager for every :class:`ManagedService`.

    Session queueing runs on the scheduling substrate: one
    :class:`~repro.sched.core.Dispatcher` holds the per-service class
    queues (interactive > workflow > batch, FIFO within a class), and
    in a sharded plane this LB is one shard of N, reporting launches
    and retirements into a shared
    :class:`~repro.sched.ledger.CapacityLedger`.
    """

    def __init__(self, sim: Simulator, multicloud: MultiCloud, network: Network,
                 sessions: SessionTable, policy: SchedulingPolicy,
                 monitor: Optional[HealthMonitor] = None,
                 registry: Optional[ServiceRegistry] = None,
                 private_location: str = "private",
                 public_location: str = "public",
                 autoscale_interval: float = 15.0,
                 breakers=None,
                 shard_id: int = 0,
                 ledger: Optional[CapacityLedger] = None,
                 dispatcher: Optional[Dispatcher] = None,
                 strict_capacity: bool = False,
                 batch_headroom: int = 0,
                 queue_bounds: Optional[Dict[PriorityClass, int]] = None):
        self.sim = sim
        self.multicloud = multicloud
        self.network = network
        self.sessions = sessions
        self.policy = policy
        self.monitor = monitor if monitor is not None else HealthMonitor(sim)
        # explicit None check: an empty registry is falsy (it has __len__)
        self.registry = registry if registry is not None else ServiceRegistry()
        self.private_location = private_location
        self.public_location = public_location
        self.autoscale_interval = autoscale_interval
        #: shared BreakerRegistry; per-location launch breakers stop the
        #: LB hammering a provider whose control plane keeps refusing
        self.breakers = breakers
        #: which control-plane shard this LB is (0 when unsharded)
        self.shard_id = shard_id
        #: shared deployment-wide capacity/cloudburst book (optional)
        self.ledger = ledger
        #: hard per-replica session cap (sessions_per_replica) when True;
        #: the pre-refactor behaviour piles sessions without bound
        self.strict_capacity = strict_capacity
        #: free slots batch-class placements must leave for higher classes
        #: (strict mode only)
        self.batch_headroom = batch_headroom
        #: accept-queue bound per replica, as a multiple of its vCPUs;
        #: None disables back-pressure (the ablation baseline)
        self.queue_bound_factor: Optional[int] = 4
        self.metrics = MetricsRegistry(sim, namespace="lb")
        self.dispatcher = dispatcher if dispatcher is not None else Dispatcher(
            sim, shard_id=shard_id, metrics=self.metrics.sub("sched"),
            bounds=queue_bounds)
        self.events: List[Dict] = []
        self._services: Dict[str, ManagedService] = {}
        self._place_spans: Dict[str, Span] = {}  # session_id -> open span
        self._replacing: set = set()
        self._autoscaler_running = False
        self.cloudbursting = False
        self.monitor.on_verdict(self._on_verdict)

    # -- service management -----------------------------------------------------

    def manage(self, service: ManagedService,
               initial_replicas: Optional[int] = None) -> ManagedService:
        """Take ownership of ``service`` and launch its initial replicas."""
        if service.name in self._services:
            raise ValueError(f"service {service.name!r} already managed")
        self._services[service.name] = service
        self.dispatcher.register(service.name)
        count = (initial_replicas if initial_replicas is not None
                 else service.min_replicas)
        for _ in range(count):
            self.scale_up(service)
        if not self._autoscaler_running:
            self._autoscaler_running = True
            self.sim.spawn(self._autoscale_loop(), name="lb-autoscaler")
        return service

    def service(self, name: str) -> ManagedService:
        """Look up a managed service by name."""
        return self._services[name]

    def services(self) -> List[ManagedService]:
        """All managed services."""
        return list(self._services.values())

    def _service_of(self, instance: Instance) -> Optional[ManagedService]:
        for service in self._services.values():
            if instance in service.replicas:
                return service
        return None

    # -- placement ----------------------------------------------------------------

    def place_session(self, session: UserSession, service_name: str,
                      priority: PriorityClass = PriorityClass.INTERACTIVE
                      ) -> None:
        """Assign ``session`` to the least-loaded replica, or queue it.

        ``priority`` is the session's scheduling class; queued sessions
        wait in their class queue (interactive ahead of workflow ahead
        of batch) and drain in that order as capacity appears.  The
        session wait-time recorder is the QoS series the flash-crowd
        bench reports.
        """
        service = self._services[service_name]
        session.priority = priority
        tenant = getattr(session, "tenant", None)
        span: Optional[Span] = None
        if session.trace_context is not None:
            attributes = {"service": service_name,
                          "session": session.session_id,
                          "shard": self.shard_id,
                          "class": priority.name.lower()}
            if tenant is not None:
                attributes["tenant"] = tenant
            span = obs_of(self.sim).tracer.start_span(
                "lb.place", parent=session.trace_context, kind="placement",
                attributes=attributes)
        replica = self._candidate_replica(service, priority)
        if replica is not None:
            session.assign(replica)
            self.dispatcher.placed_now(service_name, priority, tenant=tenant)
            self.metrics.recorder("session.wait").record(session.wait_time or 0.0)
            if span is not None:
                span.set_attribute("instance", replica.instance_id)
                span.finish()
        else:
            accepted = self.dispatcher.enqueue(
                service_name, session, priority,
                item_id=session.session_id,
                trace_parent=session.trace_context,
                tenant=tenant)
            if not accepted:
                # the class queue is full: shed instead of queueing the
                # lowest-value work forever (bounded-queue back-pressure)
                self.metrics.counter("sched.shed").increment()
                self._log("shed", session=session.session_id,
                          service=service_name,
                          priority=priority.name.lower(),
                          tenant=tenant or "default")
                if span is not None:
                    span.finish(error="shed: class queue full")
                return
            # the placement span stays open across the queue wait; it
            # closes when a booted replica drains this session
            if span is not None:
                span.annotate("queued",
                              waiting=self.dispatcher.depth(service_name))
                self._place_spans[session.session_id] = span
            if service.projected_size() == 0:
                self.scale_up(service)

    def _candidate_replica(self, service: ManagedService,
                           priority: PriorityClass) -> Optional[Instance]:
        """The replica this placement may use right now, if any.

        Pre-refactor semantics (``strict_capacity`` off): any serving
        replica, least-loaded first.  In strict mode
        ``sessions_per_replica`` is a hard per-replica cap and batch
        placements must additionally leave ``batch_headroom`` free
        slots for interactive/workflow arrivals — how a sweep saturates
        the cluster without harming portal sessions.
        """
        if not self.strict_capacity:
            return service.least_loaded()
        candidates = service.healthy_serving() or service.serving()
        counts = {inst.instance_id: len(self.sessions.on_instance(inst))
                  for inst in candidates}
        open_slots = [inst for inst in candidates
                      if counts[inst.instance_id] < service.sessions_per_replica]
        if not open_slots:
            return None
        if priority == PriorityClass.BATCH:
            free = sum(service.sessions_per_replica - counts[inst.instance_id]
                       for inst in open_slots)
            if free <= self.batch_headroom:
                return None
        return min(open_slots, key=lambda inst: counts[inst.instance_id])

    def _finish_place_span(self, session: UserSession,
                           replica: Optional[Instance]) -> None:
        span = self._place_spans.pop(session.session_id, None)
        if span is None:
            return
        if replica is not None:
            span.set_attribute("instance", replica.instance_id)
            span.finish()
        else:
            span.finish(error="session ended while waiting")

    def _drain_waiting(self, service: ManagedService) -> None:
        while True:
            next_class = self.dispatcher.next_class(service.name)
            if next_class is None:
                return
            replica = self._candidate_replica(service, next_class)
            if replica is None:
                return
            entry = self.dispatcher.dequeue(service.name)
            if entry is None:
                return
            session, cls = entry
            if session.state.value == "ended":
                self._finish_place_span(session, None)
                self.dispatcher.finish_submit_span(
                    session.session_id, error="session ended while waiting")
                continue
            if session.state.value != "waiting":
                # already placed elsewhere (a geo failover re-placed it
                # in a surviving region while this entry sat queued);
                # assigning again would yank the user back
                self._finish_place_span(session, session.instance)
                self.dispatcher.finish_submit_span(
                    session.session_id, error="session placed elsewhere")
                continue
            session.assign(replica)
            self._finish_place_span(session, replica)
            self.dispatcher.finish_submit_span(
                session.session_id, instance=replica.instance_id)
            if session.trace_context is not None:
                obs_of(self.sim).tracer.start_span(
                    "sched.place", parent=session.trace_context, kind="sched",
                    attributes={"service": service.name,
                                "shard": self.shard_id,
                                "class": cls.name.lower(),
                                "instance": replica.instance_id}).finish()
            self.metrics.recorder("session.wait").record(session.wait_time or 0.0)

    # -- scaling ---------------------------------------------------------------------

    def scale_up(self, service: ManagedService) -> Optional[Instance]:
        """Launch one replica per the scheduling policy.

        Returns the PENDING instance, or ``None`` if every allowed
        location refused (the private-only policy at saturation — the
        paper's grid-quota analogue).
        """
        if service.projected_size() >= service.max_replicas:
            return None
        context = PlacementContext(image=service.image, purpose=service.purpose)
        instance: Optional[Instance] = None
        chosen_location: Optional[str] = None
        for location in self.policy.locations(context):
            breaker = (self.breakers.get(f"launch@{location}")
                       if self.breakers is not None else None)
            if breaker is not None and not breaker.allow():
                self.metrics.counter(f"launch.skipped.{location}").increment()
                self._log("launch.skipped", service=service.name,
                          location=location)
                continue
            if self.ledger is not None and \
                    not self.ledger.admit(location, service.flavor.vcpus,
                                          tenant=service.tenant):
                # the deployment-wide budget (all shards) is spent here
                self.metrics.counter(
                    f"launch.quota_refused.{location}").increment()
                self._log("launch.quota_refused", service=service.name,
                          location=location)
                continue
            try:
                instance = self.multicloud.compute(location).launch(
                    service.image, service.flavor)
                chosen_location = location
                if breaker is not None:
                    breaker.record_success()
                break
            except CloudError:
                if breaker is not None:
                    breaker.record_failure()
                continue
        if instance is None:
            self.metrics.counter("scaleup.refused").increment()
            self._log("scaleup.refused", service=service.name)
            return None
        service.pending_launches += 1
        if self.ledger is not None:
            self.ledger.commit(chosen_location, service.flavor.vcpus,
                               public=chosen_location == self.public_location,
                               tenant=service.tenant)
        self._update_burst_state(chosen_location)
        self.metrics.counter(f"launch.{chosen_location}").increment()
        self._log("launch", service=service.name, location=chosen_location,
                  instance=instance.instance_id)

        def on_ready():
            booted = yield instance.ready
            service.pending_launches -= 1
            if booted is None or not instance.is_serving:
                self._log("boot.failed", instance=instance.instance_id)
                self._ledger_release(instance, service)
                return
            # bounded accept queue: overload turns into fast 503s the
            # client retries elsewhere, not hour-long queueing
            if self.queue_bound_factor is not None:
                instance.max_queue = (self.queue_bound_factor
                                      * instance.flavor.vcpus)
            server = service.make_server(instance)
            service.replicas.append(instance)
            self.monitor.watch(instance)
            try:
                self.registry.register(ServiceRecord(
                    name=service.name, service_type="rest",
                    address=instance.address,
                    metadata={"location": chosen_location or ""}))
            except ValueError:
                pass
            self._log("replica.ready", service=service.name,
                      instance=instance.instance_id)
            self._drain_waiting(service)
            return server

        self.sim.spawn(on_ready(), name=f"lb.boot.{instance.instance_id}")
        return instance

    def scale_down(self, service: ManagedService) -> bool:
        """Retire one replica, preferring public (cost) then idle ones.

        Sessions on the victim are migrated to the remaining replicas
        before termination — the graceful migration REST statelessness
        buys.  Returns whether a replica was retired.
        """
        serving = service.serving()
        if len(serving) <= service.min_replicas:
            return False
        public = [inst for inst in serving
                  if self.multicloud.location_of(inst, default="unknown")
                  == self.public_location]
        candidates = public or serving
        # graceful drain: only retire replicas with no in-flight work, so
        # no caller ever loses a response to a scale-down
        idle = [inst for inst in candidates if inst.load() == 0]
        if not idle:
            return False
        victim = min(idle,
                     key=lambda inst: len(self.sessions.on_instance(inst)))
        remaining = [inst for inst in serving if inst is not victim]
        if not remaining:
            return False
        self._migrate_sessions(victim, service, reason="scale-down")
        self._retire(victim, service)
        self._log("scaledown", service=service.name, instance=victim.instance_id)
        self._update_burst_state(None)
        return True

    def _retire(self, instance: Instance, service: ManagedService) -> None:
        service.drop_replica(instance)
        self.monitor.unwatch(instance)
        self.registry.deregister(service.name, instance.address)
        self.network.unregister(instance.address)
        self._ledger_release(instance, service)
        if not instance.is_gone:
            self.multicloud.destroy_node(instance)

    def _ledger_release(self, instance: Instance,
                        service: ManagedService) -> None:
        if self.ledger is None:
            return
        location = self.multicloud.location_of(instance, default="unknown")
        self.ledger.release(location, service.flavor.vcpus,
                            public=location == self.public_location,
                            tenant=service.tenant)

    def _migrate_sessions(self, source: Instance, service: ManagedService,
                          reason: str) -> None:
        displaced: List[UserSession] = []
        for session in self.sessions.on_instance(source):
            target = min(
                (inst for inst in service.serving() if inst is not source),
                key=lambda inst: inst.load(), default=None)
            if target is None:
                session.unassign()
                displaced.append(session)
            else:
                session.assign(target)
            self.metrics.counter("migrations").increment()
            self._log("migrate", session=session.session_id, reason=reason)
        if displaced:
            # displaced sessions already waited their turn once: they
            # re-enter at the *head* of their class queue, in their
            # original order, ahead of any fresh arrivals
            for cls in PriorityClass:
                batch = [s for s in displaced
                         if (s.priority or PriorityClass.INTERACTIVE) == cls]
                if batch:
                    self.dispatcher.requeue_front(
                        service.name, batch, cls,
                        tenants=[getattr(s, "tenant", None) for s in batch])

    def drain(self, instance: Instance) -> Signal:
        """Gracefully retire one replica on operator request.

        The maintenance path: stop routing new sessions to the instance
        (it leaves the pool immediately), migrate its sessions, wait for
        in-flight work to finish, then terminate.  Returns a signal
        fired with True when the instance is gone, or False if it was
        not a managed replica.
        """
        done = self.sim.signal(f"drain.{instance.instance_id}")
        service = self._service_of(instance)
        if service is None:
            self.sim.schedule(0.0, done.fire, False)
            return done
        service.drop_replica(instance)
        self.monitor.unwatch(instance)
        self.registry.deregister(service.name, instance.address)
        self._migrate_sessions(instance, service, reason="drain")
        self._log("drain.start", instance=instance.instance_id)

        def drainer():
            while instance.load() > 0 and instance.is_serving:
                yield 5.0
            self.network.unregister(instance.address)
            if not instance.is_gone:
                self.multicloud.destroy_node(instance)
            self._log("drain.done", instance=instance.instance_id)
            self._update_burst_state(None)
            done.fire(True)

        self.sim.spawn(drainer(), name=f"drain.{instance.instance_id}")
        return done

    # -- failure handling --------------------------------------------------------------

    def _on_verdict(self, instance: Instance, verdict: HealthVerdict) -> None:
        if not verdict.is_fault:
            return  # OVERLOADED is handled by the autoscale loop
        if instance.instance_id in self._replacing:
            return
        service = self._service_of(instance)
        if service is None:
            return
        self._replacing.add(instance.instance_id)
        self.metrics.counter(f"fault.{verdict.value}").increment()
        self._log("fault.detected", instance=instance.instance_id,
                  verdict=verdict.value)
        # redirect users first, then replace capacity, then destroy
        self._migrate_sessions(instance, service, reason=f"fault:{verdict.value}")
        self._retire(instance, service)
        self.scale_up(service)
        self._log("fault.recovered", instance=instance.instance_id)

    # -- autoscaling --------------------------------------------------------------------

    def _autoscale_loop(self):
        while True:
            yield self.autoscale_interval
            for service in self._services.values():
                self._autoscale_service(service)

    def _autoscale_service(self, service: ManagedService) -> None:
        demand = (sum(len(self.sessions.on_instance(inst))
                      for inst in service.serving())
                  + self.dispatcher.depth(service.name))
        desired = max(service.min_replicas,
                      min(service.max_replicas,
                          math.ceil(demand / service.sessions_per_replica)))
        current = service.projected_size()
        if desired > current:
            for _ in range(desired - current):
                if self.scale_up(service) is None:
                    break
        elif desired < current - service.pending_launches:
            for _ in range(current - service.pending_launches - desired):
                if not self.scale_down(service):
                    break
        self._rebalance(service)
        # strict-capacity mode can leave queued work while replicas have
        # open slots (sessions ended, headroom freed) — drain it here;
        # in default mode a non-empty queue implies nothing is serving,
        # so this pass is a no-op and behaviour is unchanged
        self._drain_waiting(service)

    def _rebalance(self, service: ManagedService) -> None:
        """Even out session counts across serving replicas."""
        serving = service.serving()
        if len(serving) < 2:
            return
        counts = {inst.instance_id: len(self.sessions.on_instance(inst))
                  for inst in serving}
        while True:
            busiest = max(serving, key=lambda i: counts[i.instance_id])
            quietest = min(serving, key=lambda i: counts[i.instance_id])
            if counts[busiest.instance_id] - counts[quietest.instance_id] <= 1:
                break
            session = self.sessions.on_instance(busiest)[0]
            session.assign(quietest)
            counts[busiest.instance_id] -= 1
            counts[quietest.instance_id] += 1
            self.metrics.counter("rebalances").increment()

    # -- cloudburst bookkeeping -----------------------------------------------------------

    def _update_burst_state(self, just_launched_location: Optional[str]) -> None:
        public_nodes = [inst for service in self._services.values()
                        for inst in service.replicas
                        if self.multicloud.location_of(inst, default="unknown")
                        == self.public_location
                        and not inst.is_gone]
        bursting_now = bool(public_nodes) or (
            just_launched_location == self.public_location)
        if bursting_now and not self.cloudbursting:
            self.cloudbursting = True
            self.metrics.counter("cloudburst.activations").increment()
            self._log("cloudburst.enter")
        elif not bursting_now and self.cloudbursting:
            self.cloudbursting = False
            self.metrics.counter("cloudburst.reversals").increment()
            self._log("cloudburst.exit")

    def _log(self, kind: str, **fields) -> None:
        entry = {"t": self.sim.now, "event": kind}
        entry.update(fields)
        self.events.append(entry)
        # mirror every decision into the shared structured event log, so
        # LB activity lines up with traces and instance lifecycle events
        obs_of(self.sim).events.emit(f"lb.{kind}", **fields)

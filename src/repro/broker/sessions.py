"""User sessions and the session table.

A session binds a portal user to the instance currently serving them.
Assignment changes (initial placement, migration off a failed or drained
instance) are *pushed* to the user's channel — "RB [pushes] any session
updates to the user's browser, such as in the case of migrating the user
to a new cloud instance" — so the client always knows where to send its
next request without polling.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Dict, List, Optional

from repro.cloud.instance import Instance
from repro.sim import Simulator

_session_ids = itertools.count()


class SessionState(enum.Enum):
    """Lifecycle of a user session."""

    WAITING = "waiting"     # connected, no instance assigned yet
    ACTIVE = "active"       # pinned to a serving instance
    ENDED = "ended"


class UserSession:
    """One user's live attachment to the portal."""

    def __init__(self, sim: Simulator, user_name: str,
                 channel: Optional[Any] = None, purpose: str = "general",
                 tenant: Optional[str] = None):
        self._sim = sim
        self.session_id = f"sess-{next(_session_ids):06d}"
        self.user_name = user_name
        self.channel = channel      # anything with .push(payload)
        self.purpose = purpose      # e.g. the model the user wants to run
        # the principal this session bills to; None is the anonymous
        # single-tenant default (kept a plain string: the session layer
        # stays below the tenancy package)
        self.tenant = tenant
        self.state = SessionState.WAITING
        self.created_at = sim.now
        self.assigned_at: Optional[float] = None
        self.ended_at: Optional[float] = None
        self.instance: Optional[Instance] = None
        self.migrations: List[Dict[str, Any]] = []
        # distributed tracing: the RB opens a root span per session and
        # parks its context here; widgets propagate it on every request
        self.trace_context: Optional[Any] = None
        self.trace_span: Optional[Any] = None
        # scheduling class (a repro.sched PriorityClass), stamped by the
        # plane at submission; None means interactive — kept untyped so
        # the session layer stays below the scheduling substrate
        self.priority: Optional[Any] = None

    @property
    def wait_time(self) -> Optional[float]:
        """Seconds from creation to first assignment (None until then)."""
        if self.assigned_at is None:
            return None
        return self.assigned_at - self.created_at

    @property
    def instance_address(self) -> Optional[str]:
        """Address of the currently assigned instance."""
        return self.instance.address if self.instance is not None else None

    def assign(self, instance: Instance) -> None:
        """Pin the session to ``instance`` and push the update."""
        if self.state == SessionState.ENDED:
            raise ValueError(f"session {self.session_id} already ended")
        previous = self.instance
        self.instance = instance
        if self.assigned_at is None:
            self.assigned_at = self._sim.now
        if previous is not None and previous is not instance:
            self.migrations.append({
                "at": self._sim.now,
                "from": previous.address,
                "to": instance.address,
            })
        self.state = SessionState.ACTIVE
        self._push({
            "type": "session.assign",
            "sessionId": self.session_id,
            "instance": instance.address,
        })

    def unassign(self) -> None:
        """Detach the session from its instance, returning it to WAITING.

        Used when a replica is lost and no other replica can take the
        session yet; it re-enters the broker's waiting queue.
        """
        if self.state == SessionState.ENDED:
            return
        self.instance = None
        self.state = SessionState.WAITING
        self._push({"type": "session.wait", "sessionId": self.session_id})

    def end(self) -> None:
        """Terminate the session (user navigated away); idempotent."""
        if self.state == SessionState.ENDED:
            return
        self.state = SessionState.ENDED
        self.ended_at = self._sim.now
        self.instance = None
        if self.trace_span is not None and not self.trace_span.finished:
            self.trace_span.set_attribute("migrations", len(self.migrations))
            self.trace_span.finish()
        self._push({"type": "session.end", "sessionId": self.session_id})

    def _push(self, payload: Dict[str, Any]) -> None:
        if self.channel is not None:
            self.channel.push(payload)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<UserSession {self.session_id} {self.user_name} "
                f"{self.state.value} on {self.instance_address}>")


class SessionTable:
    """Registry of all sessions, live and ended."""

    def __init__(self, sim: Simulator):
        self._sim = sim
        self._sessions: Dict[str, UserSession] = {}

    def create(self, user_name: str, channel: Optional[Any] = None,
               purpose: str = "general",
               tenant: Optional[str] = None) -> UserSession:
        """Open a new session in WAITING state."""
        session = UserSession(self._sim, user_name, channel, purpose,
                              tenant=tenant)
        self._sessions[session.session_id] = session
        return session

    def get(self, session_id: str) -> UserSession:
        """Look a session up by id."""
        return self._sessions[session_id]

    def active(self) -> List[UserSession]:
        """Sessions currently pinned to an instance."""
        return [s for s in self._sessions.values()
                if s.state == SessionState.ACTIVE]

    def waiting(self) -> List[UserSession]:
        """Sessions not yet assigned."""
        return [s for s in self._sessions.values()
                if s.state == SessionState.WAITING]

    def on_instance(self, instance: Instance) -> List[UserSession]:
        """Active sessions pinned to ``instance``."""
        return [s for s in self.active() if s.instance is instance]

    def all(self) -> List[UserSession]:
        """Every session ever created."""
        return list(self._sessions.values())

    def live_count(self) -> int:
        """Active plus waiting sessions."""
        return len(self.active()) + len(self.waiting())

    def prune_ended(self, older_than_seconds: float = 0.0) -> int:
        """Housekeeping: forget sessions that ended before the cutoff.

        Returns how many records were dropped.  Live sessions are never
        pruned regardless of age.
        """
        cutoff = self._sim.now - older_than_seconds
        doomed = [sid for sid, s in self._sessions.items()
                  if s.state == SessionState.ENDED
                  and s.ended_at is not None and s.ended_at <= cutoff]
        for sid in doomed:
            del self._sessions[sid]
        return len(doomed)
